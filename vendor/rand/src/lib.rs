//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds fully offline, so the real `rand` crate cannot be
//! fetched from crates.io. This stand-in implements exactly the surface the
//! workspace uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`] — on top
//! of a SplitMix64-seeded xoshiro256** generator.
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is ChaCha12), but
//! every consumer in this workspace only relies on *reproducibility for a
//! given seed*, which this implementation guarantees: the output is a pure
//! function of the seed, identical across platforms and runs.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform sample in `[0, span)`; `span == 0` means the full `u64`
/// range. Rejection sampling keeps the draw exact for every span.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Largest multiple of `span` that fits in 2^64, minus one.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges that can be sampled from (the argument of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + uniform_below(rng, (self.end - self.start) as u64) as $t
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64; // span == u64-width range maps to 0 = full
                start + uniform_below(rng, span.wrapping_add(1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                start.wrapping_add(uniform_below(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from the uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
