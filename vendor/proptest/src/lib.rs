//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The workspace builds fully offline, so the real `proptest` crate cannot be
//! fetched. This stand-in supports the surface the workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(...)]`), integer
//! range strategies, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` assertions.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case reports
//! its case number and message and panics immediately. Generation is fully
//! deterministic — the RNG is seeded from the test function's name — so a
//! reported failure always reproduces by re-running the test.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic per-test RNG (seeded from the test name via FNV-1a).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A value generator (upstream proptest's `Strategy`, without shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tuples of strategies generate tuples of values (upstream proptest's
/// tuple composition, for the arities the workspace uses).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.start < self.size.end,
                "empty vec size range {}..{}",
                self.size.start,
                self.size.end
            );
            let len = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    /// Upstream proptest re-exports the crate as `prop` so that
    /// `prop::collection::vec(...)` works; mirror that.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(error) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            error
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = super::test_rng("range_strategies_stay_in_bounds");
        for _ in 0..256 {
            let v = (-10i64..=10).generate(&mut rng);
            assert!((-10..=10).contains(&v));
            let u = (0usize..5).generate(&mut rng);
            assert!(u < 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = super::test_rng("vec_strategy_respects_size_range");
        let strategy = prop::collection::vec(0i64..=255, 2..7);
        for _ in 0..128 {
            let v = strategy.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..=255).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_checks(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b >= a);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - 1, a);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_assertion_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn inner(v in 10i64..20) {
                prop_assert!(v < 0, "v = {} is not negative", v);
            }
        }
        inner();
    }
}
