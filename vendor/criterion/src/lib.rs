//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! The workspace builds fully offline, so the real `criterion` crate cannot be
//! fetched. This stand-in keeps the familiar surface — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`Throughput`], [`criterion_group!`], [`criterion_main!`] — and implements
//! a simple wall-clock measurement loop: per benchmark it warms up briefly,
//! then collects samples until either the sample budget or the measurement
//! time budget is exhausted, and reports min/mean/max per iteration plus
//! throughput (elements or bytes per second) when configured.
//!
//! Environment knobs:
//!
//! * `CRITERION_SAMPLE_SIZE` — override the per-benchmark sample budget;
//! * `CRITERION_MEASURE_MS` — override the per-benchmark time budget (ms).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost. The stand-in always runs one
/// setup per routine invocation, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream; one per call here.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Throughput annotation: scales the per-iteration time into a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per routine call.
    Elements(u64),
    /// Bytes processed per routine call.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_budget: usize,
    time_budget: Duration,
}

impl Bencher {
    fn new(sample_budget: usize, time_budget: Duration) -> Self {
        Self {
            samples: Vec::new(),
            sample_budget,
            time_budget,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.sample_budget && started.elapsed() < self.time_budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Measures `routine` with a fresh `setup` product per call; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.sample_budget && started.elapsed() < self.time_budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1_000_000.0 {
        format!("{:.2} M{unit}/s", per_second / 1_000_000.0)
    } else if per_second >= 1_000.0 {
        format!("{:.2} K{unit}/s", per_second / 1_000.0)
    } else {
        format!("{per_second:.2} {unit}/s")
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    measure_time: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let sample_size = env_usize("CRITERION_SAMPLE_SIZE").unwrap_or(sample_size);
    let measure_time = env_usize("CRITERION_MEASURE_MS")
        .map(|ms| Duration::from_millis(ms as u64))
        .unwrap_or(measure_time);
    let mut bencher = Bencher::new(sample_size.max(1), measure_time);
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{id:<48} no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let mut line = format!(
        "{id:<48} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        samples.len()
    );
    if let Some(throughput) = throughput {
        let seconds = mean.as_secs_f64();
        if seconds > 0.0 {
            let (count, unit) = match throughput {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let _ = write!(
                line,
                "  thrpt: {}",
                format_rate(count as f64 / seconds, unit)
            );
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measure_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(
            &id,
            self.sample_size,
            self.measure_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Ends the group (separator line).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measure_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measure_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, self.measure_time, None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measure_time: self.measure_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5, Duration::from_secs(1));
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut b = Bencher::new(3, Duration::from_secs(1));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn formatting_is_human_readable() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500.0 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(format_rate(2_500_000.0, "elem").starts_with("2.50 M"));
    }
}
