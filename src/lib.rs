//! # tmr-fpga
//!
//! Facade crate for the `tmr-fpga` workspace — a from-scratch reproduction of
//! *"On the Optimal Design of Triple Modular Redundancy Logic for SRAM-based
//! FPGAs"* (DATE 2005): a TMR transformation with configurable voter
//! partitioning, an island-style SRAM FPGA model, a synthesis and
//! place-and-route flow, and a bitstream fault-injection framework.
//!
//! The individual subsystems are re-exported as modules; [`flow`] provides
//! the staged pipeline API covering the full paper flow (word-level design →
//! TMR → LUT mapping → place-and-route → fault-injection campaign):
//!
//! * [`FlowBuilder`] captures one flow's inputs; the resulting [`Flow`]
//!   exposes lazy, cached stage artifacts (`synthesized` → `placed` →
//!   `routed` → `analyzed`) and campaign entry points;
//! * [`Sweep`] drives many flows over design variants — the paper's P1–P3
//!   voter partitions — with shared artifacts and one aggregate report;
//! * campaigns are configured with [`faultsim::CampaignBuilder`] and can
//!   stream incrementally with statistical early stop
//!   ([`faultsim::EarlyStop`]);
//! * every failure surfaces as the single source-chained [`enum@Error`].
//!
//! ```
//! use tmr_fpga::faultsim::CampaignBuilder;
//! use tmr_fpga::flow::FlowBuilder;
//! use tmr_fpga::tmr::TmrConfig;
//!
//! let device = tmr_fpga::arch::Device::small(8, 8);
//! let design = tmr_fpga::designs::counter(4);
//!
//! // Stage artifacts are computed on demand and memoized.
//! let flow = FlowBuilder::new(&device, &design)
//!     .tmr(TmrConfig::paper_p2())
//!     .seed(1)
//!     .build();
//! let routed = flow.routed().unwrap();
//! assert!(routed.bitstream().count_ones() > 0);
//!
//! // Campaigns reuse the cached golden trace; results are memoized too.
//! let campaign = CampaignBuilder::new().faults(60).cycles(8);
//! let result = flow.campaign(&campaign).unwrap();
//! assert_eq!(result.injected(), 60);
//! assert!(flow.cache().stats().hits > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tmr_analyze as analyze;
pub use tmr_arch as arch;
pub use tmr_core as tmr;
pub use tmr_designs as designs;
pub use tmr_faultsim as faultsim;
pub use tmr_netlist as netlist;
pub use tmr_pnr as pnr;
pub use tmr_sim as sim;
pub use tmr_store as store;
pub use tmr_synth as synth;
pub use tmr_trace as trace;

mod error;
pub mod flow;
pub mod fuzz;

pub use error::Error;
pub use flow::{Flow, FlowBuilder, RouteStats, Sweep, SweepReport};
pub use tmr_core::pipeline::{ArtifactCache, CacheStats};
pub use tmr_store::{DiskStats, PersistentCache, Store};
