//! # tmr-fpga
//!
//! Facade crate for the `tmr-fpga` workspace — a from-scratch reproduction of
//! *"On the Optimal Design of Triple Modular Redundancy Logic for SRAM-based
//! FPGAs"* (DATE 2005): a TMR transformation with configurable voter
//! partitioning, an island-style SRAM FPGA model, a synthesis and
//! place-and-route flow, and a bitstream fault-injection framework.
//!
//! The individual subsystems are re-exported as modules; [`flow`] provides
//! one-call helpers covering the full paper flow (word-level design → TMR →
//! LUT mapping → place-and-route → fault-injection campaign).
//!
//! ```
//! use tmr_fpga::flow;
//! use tmr_fpga::tmr::TmrConfig;
//!
//! let device = tmr_fpga::arch::Device::small(8, 8);
//! let design = tmr_fpga::designs::counter(4);
//! let tmr = tmr_fpga::tmr::apply_tmr(&design, &TmrConfig::paper_p2()).unwrap();
//! let routed = flow::implement(&device, &tmr, 1).unwrap();
//! assert!(routed.bitstream().count_ones() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tmr_analyze as analyze;
pub use tmr_arch as arch;
pub use tmr_core as tmr;
pub use tmr_designs as designs;
pub use tmr_faultsim as faultsim;
pub use tmr_netlist as netlist;
pub use tmr_pnr as pnr;
pub use tmr_sim as sim;
pub use tmr_synth as synth;

/// One-call helpers for the complete implementation flow.
pub mod flow {
    use std::error::Error;
    use std::fmt;
    use tmr_analyze::StaticAnalysis;
    use tmr_arch::Device;
    use tmr_faultsim::{CampaignEngine, CampaignOptions, CampaignResult};
    use tmr_netlist::Netlist;
    use tmr_pnr::{place_and_route, PnrError, RoutedDesign};
    use tmr_sim::SimError;
    use tmr_synth::{lower, optimize, techmap, Design, LowerError, TechmapError};

    /// Errors of the combined flow.
    #[derive(Debug)]
    pub enum FlowError {
        /// Word-level lowering failed.
        Lower(LowerError),
        /// Technology mapping failed.
        Techmap(TechmapError),
        /// Placement or routing failed.
        Pnr(PnrError),
    }

    impl fmt::Display for FlowError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                FlowError::Lower(e) => write!(f, "lowering failed: {e}"),
                FlowError::Techmap(e) => write!(f, "technology mapping failed: {e}"),
                FlowError::Pnr(e) => write!(f, "place-and-route failed: {e}"),
            }
        }
    }

    impl Error for FlowError {}

    impl From<LowerError> for FlowError {
        fn from(e: LowerError) -> Self {
            FlowError::Lower(e)
        }
    }
    impl From<TechmapError> for FlowError {
        fn from(e: TechmapError) -> Self {
            FlowError::Techmap(e)
        }
    }
    impl From<PnrError> for FlowError {
        fn from(e: PnrError) -> Self {
            FlowError::Pnr(e)
        }
    }

    /// Synthesises a word-level design to a technology-mapped LUT netlist
    /// (lowering → dead-logic elimination → LUT mapping + I/O insertion).
    ///
    /// # Errors
    ///
    /// Propagates lowering and mapping errors.
    pub fn synthesize(design: &Design) -> Result<Netlist, FlowError> {
        Ok(techmap(&optimize(&lower(design)?))?)
    }

    /// Runs the full implementation flow: synthesis, placement, routing and
    /// bitstream generation.
    ///
    /// # Errors
    ///
    /// Propagates synthesis and place-and-route errors.
    pub fn implement(
        device: &Device,
        design: &Design,
        seed: u64,
    ) -> Result<RoutedDesign, FlowError> {
        let netlist = synthesize(design)?;
        Ok(place_and_route(device, &netlist, seed)?)
    }

    /// Runs a fault-injection campaign sharded over worker threads (one per
    /// CPU core when `shards` is `None`). The result is bit-identical to the
    /// sequential [`tmr_faultsim::run_campaign`] for any shard count — see
    /// [`CampaignEngine`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist cannot be simulated (combinational
    /// loop), which cannot happen for designs produced by [`implement`].
    pub fn run_campaign_parallel(
        device: &Device,
        routed: &RoutedDesign,
        options: &CampaignOptions,
        shards: Option<usize>,
    ) -> Result<CampaignResult, SimError> {
        let mut engine = CampaignEngine::new(device, routed, options.clone());
        if let Some(shards) = shards {
            engine = engine.with_shards(shards);
        }
        engine.run()
    }

    /// Statically classifies every configuration bit of a routed design into
    /// a criticality [`Verdict`](tmr_analyze::Verdict) — benign,
    /// single-domain or TMR-defeating domain-crossing — with no simulation.
    /// The result can prune a dynamic campaign through
    /// [`tmr_analyze::PruneWith::prune_with`].
    pub fn analyze(device: &Device, routed: &RoutedDesign) -> StaticAnalysis {
        StaticAnalysis::run(device, routed)
    }
}
