//! The staged implementation pipeline: lazy, cached, sweepable.
//!
//! The paper's experiment is not one flow run but a *sweep*: the same FIR
//! design pushed through five TMR variants, each synthesized, placed, routed
//! and bombarded with fault-injection campaigns. This module models that as
//! first-class API instead of hand-wired glue:
//!
//! * [`FlowBuilder`] captures the inputs of one implementation flow (device,
//!   design, optional [`TmrConfig`], seed, shard count) and builds a
//!   [`Flow`];
//! * a [`Flow`] exposes **typed stage artifacts** — [`Synthesized`] →
//!   [`Placed`] → [`Routed`] → [`Analyzed`] — computed lazily and memoized in
//!   a shared [`ArtifactCache`] keyed by content fingerprints, so two flows
//!   over the same inputs share every stage;
//! * [`Flow::campaign`] runs fault-injection campaigns configured through
//!   [`CampaignBuilder`], reusing the cached golden simulation trace
//!   ([`GoldenRun`]) across campaigns over the same netlist — including
//!   campaigns under *different fault models*
//!   ([`tmr_faultsim::FaultModel`]: single-bit, geometric MBU clusters,
//!   accumulated upsets per scrub interval), each memoized under its own
//!   fingerprint — and [`Flow::campaign_session`] streams one incrementally
//!   (progress reporting, statistical early stop);
//! * a [`Sweep`] drives many flows over the variants of one base design —
//!   [`Sweep::paper`] gives the five paper variants — on a common
//!   (optionally auto-sized) device, producing a [`SweepReport`] that holds
//!   everything Tables 2, 3 and 4 need plus the cache effectiveness
//!   counters.
//!
//! The one-call helpers of the previous API ([`implement`],
//! [`run_campaign_parallel`], [`analyze`], [`synthesize`]) remain as thin
//! deprecated shims over the builder.

use crate::Error;
use std::sync::Arc;
use tmr_analyze::{CriticalityReport, StaticAnalysis};
use tmr_arch::{Bitstream, Device, DeviceParams};
use tmr_core::pipeline::{fingerprint, ArtifactCache, CacheKey, CacheStats, Fingerprint};
use tmr_core::{apply_tmr, estimate_resources, ResourceEstimate, TmrConfig};
use tmr_faultsim::{CampaignBuilder, CampaignResult, CampaignSession};
use tmr_netlist::Netlist;
use tmr_pnr::{place, route, BitReport, Placement, PlacerOptions, RoutedDesign, RouterOptions};
use tmr_sim::GoldenRun;
use tmr_synth::{lower, optimize, techmap, Design};

// ---------------------------------------------------------------------------
// Typed stage artifacts
// ---------------------------------------------------------------------------

/// The synthesized stage artifact: the technology-mapped LUT netlist of one
/// (possibly TMR-protected) design.
#[derive(Debug, Clone)]
pub struct Synthesized {
    netlist: Netlist,
    fingerprint: u64,
}

impl Synthesized {
    /// The mapped netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The placed stage artifact: a cell → site assignment on the target device.
#[derive(Debug, Clone)]
pub struct Placed {
    placement: Placement,
    fingerprint: u64,
}

impl Placed {
    /// The placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The routed stage artifact: the fully placed, routed and configured design.
#[derive(Debug, Clone)]
pub struct Routed {
    design: RoutedDesign,
    fingerprint: u64,
}

impl Routed {
    /// The routed-design database.
    pub fn design(&self) -> &RoutedDesign {
        &self.design
    }

    /// The configuration bitstream.
    pub fn bitstream(&self) -> &Bitstream {
        self.design.bitstream()
    }

    /// The mapped netlist the design was built from.
    pub fn netlist(&self) -> &Netlist {
        self.design.netlist()
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The analyzed stage artifact: the static criticality classification of
/// every configuration bit of the routed design.
#[derive(Debug, Clone)]
pub struct Analyzed {
    analysis: StaticAnalysis,
    fingerprint: u64,
}

impl Analyzed {
    /// The static analysis.
    pub fn analysis(&self) -> &StaticAnalysis {
        &self.analysis
    }

    /// Aggregates the analysis into a [`CriticalityReport`].
    pub fn report(&self) -> CriticalityReport {
        self.analysis.report()
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

// ---------------------------------------------------------------------------
// FlowBuilder / Flow
// ---------------------------------------------------------------------------

/// Builder for a single staged implementation [`Flow`].
///
/// ```
/// use tmr_fpga::arch::Device;
/// use tmr_fpga::flow::FlowBuilder;
/// use tmr_fpga::tmr::TmrConfig;
///
/// let device = Device::small(8, 8);
/// let design = tmr_fpga::designs::counter(4);
/// let flow = FlowBuilder::new(&device, &design)
///     .tmr(TmrConfig::paper_p2())
///     .seed(1)
///     .build();
/// let routed = flow.routed().unwrap();
/// assert!(routed.bitstream().count_ones() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FlowBuilder {
    device: Device,
    design: Design,
    tmr: Option<TmrConfig>,
    seed: u64,
    shards: Option<usize>,
    cache: Option<Arc<ArtifactCache>>,
}

impl FlowBuilder {
    /// Starts a flow of `design` onto `device` (both captured by clone).
    pub fn new(device: &Device, design: &Design) -> Self {
        Self {
            device: device.clone(),
            design: design.clone(),
            tmr: None,
            seed: 1,
            shards: None,
            cache: None,
        }
    }

    /// Protects the design with TMR before synthesis.
    #[must_use]
    pub fn tmr(mut self, config: TmrConfig) -> Self {
        self.tmr = Some(config);
        self
    }

    /// Placement seed (default 1).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker-shard count for campaigns run through this flow (default: one
    /// per CPU core). Results are bit-identical for any shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Shares an [`ArtifactCache`] with other flows (default: a fresh
    /// private cache). A sweep passes one cache to all of its flows.
    #[must_use]
    pub fn cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Flow {
        let identity = fingerprint(&[&self.design, &self.tmr]);
        let device_fp = fingerprint(&[self.device.params()]);
        Flow {
            device: Arc::new(self.device),
            design: self.design,
            tmr: self.tmr,
            seed: self.seed,
            shards: self.shards,
            cache: self.cache.unwrap_or_default(),
            identity,
            device_fp,
        }
    }
}

/// A lazily evaluated, memoized implementation flow over one design and one
/// device.
///
/// Every stage accessor computes its artifact on first use and caches it in
/// the flow's [`ArtifactCache`] under a content fingerprint of the stage
/// inputs; repeated calls — from this flow or any flow sharing the cache
/// with identical inputs — return the same `Arc` without recomputing.
#[derive(Debug, Clone)]
pub struct Flow {
    device: Arc<Device>,
    design: Design,
    tmr: Option<TmrConfig>,
    seed: u64,
    shards: Option<usize>,
    cache: Arc<ArtifactCache>,
    /// Fingerprint of `(design, tmr config)`: since every stage is a
    /// deterministic function, downstream keys derive from this instead of
    /// hashing the (much larger) intermediate artifacts.
    identity: u64,
    device_fp: u64,
}

impl Flow {
    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The word-level input design (before TMR).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The TMR configuration, if the flow protects the design.
    pub fn tmr_config(&self) -> Option<&TmrConfig> {
        self.tmr.as_ref()
    }

    /// The artifact cache backing this flow.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// The design entering synthesis: the TMR-transformed design when a
    /// config is set, the input design otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`TmrError`](tmr_core::TmrError) from the transformation.
    pub fn protected(&self) -> Result<Arc<Design>, Error> {
        stage_protected(&self.cache, self.identity, &self.design, self.tmr.as_ref())
    }

    /// Stage 1, [`Synthesized`]: lowering → dead-logic elimination → LUT
    /// mapping + I/O insertion.
    ///
    /// # Errors
    ///
    /// Propagates transformation, lowering and mapping errors.
    pub fn synthesized(&self) -> Result<Arc<Synthesized>, Error> {
        let protected = self.protected()?;
        stage_synthesized(&self.cache, self.identity, &protected)
    }

    /// Stage 2, [`Placed`]: seeded simulated-annealing placement.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors and placement failures (device too
    /// small, unplaceable cells).
    pub fn placed(&self) -> Result<Arc<Placed>, Error> {
        let fp = self.implementation_fp();
        let synthesized = self.synthesized()?;
        self.cache
            .get_or_try_insert(CacheKey::new("place", fp), || {
                let placement = place(
                    &self.device,
                    synthesized.netlist(),
                    &PlacerOptions {
                        seed: self.seed,
                        ..PlacerOptions::default()
                    },
                )?;
                Ok::<_, Error>(Placed {
                    placement,
                    fingerprint: fp,
                })
            })
    }

    /// Stage 3, [`Routed`]: negotiated-congestion routing plus bitstream
    /// generation.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors and routing failures (unroutable
    /// congestion, unreachable sinks).
    pub fn routed(&self) -> Result<Arc<Routed>, Error> {
        let fp = self.implementation_fp();
        let synthesized = self.synthesized()?;
        let placed = self.placed()?;
        self.cache
            .get_or_try_insert(CacheKey::new("route", fp), || {
                let routes = route(
                    &self.device,
                    synthesized.netlist(),
                    placed.placement(),
                    &RouterOptions::default(),
                )?;
                Ok::<_, Error>(Routed {
                    design: RoutedDesign::assemble(
                        &self.device,
                        synthesized.netlist(),
                        placed.placement().clone(),
                        routes,
                    ),
                    fingerprint: fp,
                })
            })
    }

    /// Stage 4, [`Analyzed`]: exhaustive static criticality classification
    /// of every configuration bit (no simulation).
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; the analysis itself is infallible.
    pub fn analyzed(&self) -> Result<Arc<Analyzed>, Error> {
        let fp = self.implementation_fp();
        let routed = self.routed()?;
        self.cache
            .get_or_try_insert(CacheKey::new("analyze", fp), || {
                Ok::<_, Error>(Analyzed {
                    analysis: StaticAnalysis::run(&self.device, routed.design()),
                    fingerprint: fp,
                })
            })
    }

    /// The golden (fault-free) reference run for campaigns of `cycles`
    /// cycles under stimulus `seed` — cached per netlist, shared by every
    /// campaign and session over this design, on any device.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; flow netlists are always simulable.
    pub fn golden(&self, cycles: usize, stimulus_seed: u64) -> Result<Arc<GoldenRun>, Error> {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.identity)
            .write_u64(cycles as u64)
            .write_u64(stimulus_seed);
        let synthesized = self.synthesized()?;
        self.cache
            .get_or_try_insert(CacheKey::new("golden", fp.finish()), || {
                GoldenRun::compute(synthesized.netlist(), cycles, stimulus_seed)
                    .map_err(Error::from)
            })
    }

    /// Runs (or returns the cached result of) a fault-injection campaign
    /// over the routed design. The golden trace comes from the shared cache;
    /// the flow's shard override applies; the result is memoized under the
    /// campaign configuration.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; flow netlists are always simulable.
    pub fn campaign(&self, campaign: &CampaignBuilder) -> Result<Arc<CampaignResult>, Error> {
        let routed = self.routed()?;
        let golden = self.golden(
            campaign.options().cycles(),
            campaign.options().stimulus_seed(),
        )?;
        // The key covers exactly what can change the outcomes: the
        // implemented design plus the campaign options (fault count, seeds,
        // the fault model — single-bit, MBU cluster shape or upsets per
        // scrub — and any static restriction), batch size and early-stop
        // rule (an early stop lands on a batch boundary). Shard count and
        // any attached golden run are deliberately absent — they never
        // change results, only how (fast) they are computed.
        let fp = fingerprint(&[
            &self.identity,
            &self.device_fp,
            &self.seed,
            campaign.options(),
            &campaign.batch_size_hint(),
            &campaign.early_stop_rule(),
        ]);
        self.cache
            .get_or_try_insert(CacheKey::new("campaign", fp), || {
                let mut configured = campaign.clone().golden(golden);
                if let Some(shards) = self.shards {
                    configured = configured.shards(shards);
                }
                configured
                    .run(&self.device, routed.design())
                    .map_err(Error::from)
            })
    }

    /// Builds a streaming [`CampaignSession`] over the routed design for
    /// incremental outcome batches, progress reporting and early stop. The
    /// caller keeps the [`Routed`] artifact alive for the session's
    /// lifetime:
    ///
    /// ```no_run
    /// # use tmr_fpga::flow::FlowBuilder;
    /// # use tmr_fpga::faultsim::CampaignBuilder;
    /// # let flow: tmr_fpga::flow::Flow = unimplemented!();
    /// let routed = flow.routed()?;
    /// let mut session = flow.campaign_session(&routed, &CampaignBuilder::new())?;
    /// while let Some(batch) = session.next_batch() {
    ///     eprintln!("+{} faults", batch.len());
    /// }
    /// println!("{}", session.into_result());
    /// # Ok::<(), tmr_fpga::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; flow netlists are always simulable.
    pub fn campaign_session<'f>(
        &'f self,
        routed: &'f Routed,
        campaign: &CampaignBuilder,
    ) -> Result<CampaignSession<'f>, Error> {
        let golden = self.golden(
            campaign.options().cycles(),
            campaign.options().stimulus_seed(),
        )?;
        let mut configured = campaign.clone().golden(golden);
        if let Some(shards) = self.shards {
            configured = configured.shards(shards);
        }
        configured
            .session(&self.device, routed.design())
            .map_err(Error::from)
    }

    /// Fingerprint of the implemented design: identity × device × seed.
    fn implementation_fp(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.identity)
            .write_u64(self.device_fp)
            .write_u64(self.seed);
        fp.finish()
    }
}

/// The cache-backed TMR-transformation stage, shared by [`Flow::protected`]
/// and the device-independent synthesis pre-pass of [`Sweep::flows`].
fn stage_protected(
    cache: &ArtifactCache,
    identity: u64,
    design: &Design,
    config: Option<&TmrConfig>,
) -> Result<Arc<Design>, Error> {
    cache.get_or_try_insert(CacheKey::new("tmr", identity), || match config {
        Some(config) => apply_tmr(design, config).map_err(Error::from),
        None => Ok(design.clone()),
    })
}

/// The cache-backed synthesis stage.
fn stage_synthesized(
    cache: &ArtifactCache,
    identity: u64,
    protected: &Design,
) -> Result<Arc<Synthesized>, Error> {
    cache.get_or_try_insert(CacheKey::new("synth", identity), || {
        let netlist = techmap(&optimize(&lower(protected)?))?;
        Ok::<_, Error>(Synthesized {
            netlist,
            fingerprint: identity,
        })
    })
}

// ---------------------------------------------------------------------------
// Device sizing
// ---------------------------------------------------------------------------

/// Chooses an evaluation device for a set of netlists: the given
/// architecture parameters if every netlist fits below `max_utilisation`
/// LUT/FF utilisation (and has enough IOBs), otherwise the same architecture
/// scaled up, four columns and rows at a time, to the smallest grid that
/// does.
pub fn device_for(mut params: DeviceParams, netlists: &[&Netlist], max_utilisation: f64) -> Device {
    let max_luts = netlists
        .iter()
        .map(|n| {
            let s = n.stats();
            s.luts + s.constants
        })
        .max()
        .unwrap_or(0);
    let max_ffs = netlists
        .iter()
        .map(|n| n.stats().flip_flops)
        .max()
        .unwrap_or(0);
    let max_iobs = netlists
        .iter()
        .map(|n| n.stats().io_buffers)
        .max()
        .unwrap_or(0);

    let fits = |params: &DeviceParams| {
        let tiles = usize::from(params.cols) * usize::from(params.rows);
        let luts = tiles * params.luts_per_tile();
        let ffs = tiles * params.ffs_per_tile();
        let perimeter = 2 * (usize::from(params.cols) + usize::from(params.rows)) - 4;
        let iobs = perimeter * usize::from(params.iobs_per_perimeter_tile);
        (max_luts as f64) < luts as f64 * max_utilisation
            && (max_ffs as f64) < ffs as f64 * max_utilisation
            && max_iobs <= iobs
    };

    while !fits(&params) {
        params.cols += 4;
        params.rows += 4;
    }
    Device::new(params)
}

// ---------------------------------------------------------------------------
// Sweep
// ---------------------------------------------------------------------------

/// The device-selection policy of a [`Sweep`].
#[derive(Debug, Clone)]
enum SweepDevice {
    /// Implement every variant on this device.
    Fixed(Box<Device>),
    /// Scale this architecture up until every variant fits below the given
    /// utilisation (see [`device_for`]).
    Auto {
        params: DeviceParams,
        max_utilisation: f64,
    },
}

/// A configuration sweep: many [`Flow`]s over the variants of one base
/// design, sharing a device and an artifact cache.
///
/// ```no_run
/// use tmr_fpga::designs::FirFilter;
/// use tmr_fpga::faultsim::CampaignBuilder;
/// use tmr_fpga::flow::Sweep;
///
/// let base = FirFilter::paper_filter().to_design();
/// let report = Sweep::paper(&base)
///     .campaign(CampaignBuilder::new().faults(4000).cycles(24))
///     .run()
///     .unwrap();
/// for variant in &report.variants {
///     let campaign = variant.campaign.as_ref().unwrap();
///     println!("{}: {:.2} % wrong answers", variant.name, campaign.wrong_answer_percent());
/// }
/// println!("cache: {}", report.cache);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    base: Design,
    variants: Vec<(String, Option<TmrConfig>)>,
    device: SweepDevice,
    seed: u64,
    shards: Option<usize>,
    campaign: Option<CampaignBuilder>,
    analyze: bool,
    cache: Arc<ArtifactCache>,
}

impl Sweep {
    /// Starts an empty sweep over `base` with an auto-sized XC2S200E-like
    /// device at 50 % maximum utilisation (our mapping has no carry chains,
    /// so designs are larger than the vendor tools'), seed 1, no campaign
    /// and no static analysis.
    pub fn new(base: &Design) -> Self {
        Self {
            base: base.clone(),
            variants: Vec::new(),
            device: SweepDevice::Auto {
                params: DeviceParams::xc2s200e_like(),
                max_utilisation: 0.50,
            },
            seed: 1,
            shards: None,
            campaign: None,
            analyze: false,
            cache: ArtifactCache::shared(),
        }
    }

    /// The paper's five-variant sweep, in Table 3 order: `standard` plus the
    /// four TMR presets (`tmr_p1`, `tmr_p2`, `tmr_p3`, `tmr_p3_nv`).
    pub fn paper(base: &Design) -> Self {
        let mut sweep = Self::new(base).variant("standard", None);
        for config in TmrConfig::paper_presets() {
            let name = format!("tmr_{}", config.label);
            sweep = sweep.variant(&name, Some(config));
        }
        sweep
    }

    /// Appends a named variant (`None` = the unprotected base design).
    #[must_use]
    pub fn variant(mut self, name: &str, config: Option<TmrConfig>) -> Self {
        self.variants.push((name.to_string(), config));
        self
    }

    /// Implements every variant on this fixed device instead of auto-sizing.
    #[must_use]
    pub fn on_device(mut self, device: &Device) -> Self {
        self.device = SweepDevice::Fixed(Box::new(device.clone()));
        self
    }

    /// Auto-sizes the device from these architecture parameters and maximum
    /// LUT/FF utilisation (the default policy uses
    /// [`DeviceParams::xc2s200e_like`] at 0.50).
    #[must_use]
    pub fn auto_device(mut self, params: DeviceParams, max_utilisation: f64) -> Self {
        self.device = SweepDevice::Auto {
            params,
            max_utilisation,
        };
        self
    }

    /// Placement seed shared by every variant (default 1).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Campaign worker-shard override shared by every variant.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Runs this fault-injection campaign on every variant.
    #[must_use]
    pub fn campaign(mut self, campaign: CampaignBuilder) -> Self {
        self.campaign = Some(campaign);
        self
    }

    /// Also runs the static criticality analysis on every variant.
    #[must_use]
    pub fn analyze(mut self, analyze: bool) -> Self {
        self.analyze = analyze;
        self
    }

    /// Shares an [`ArtifactCache`] with other sweeps/flows (default: a fresh
    /// cache per sweep). Repeated runs against a shared cache reuse every
    /// artifact.
    #[must_use]
    pub fn cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The cache backing this sweep.
    pub fn cache_handle(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// Synthesizes every variant (filling the cache), resolves the device,
    /// and returns the per-variant flows without implementing them.
    ///
    /// # Errors
    ///
    /// Propagates transformation and synthesis errors.
    pub fn flows(&self) -> Result<(Device, Vec<(String, Flow)>), Error> {
        // Synthesis is device-independent: run it first for every variant so
        // auto-sizing can see the netlists. The per-variant flows below then
        // hit the cache for their transformation and synthesis stages.
        let mut synthesized = Vec::new();
        for (name, config) in &self.variants {
            let identity = fingerprint(&[&self.base, config]);
            let protected = stage_protected(&self.cache, identity, &self.base, config.as_ref())?;
            synthesized.push((
                name.clone(),
                stage_synthesized(&self.cache, identity, &protected)?,
            ));
        }

        let device = match &self.device {
            SweepDevice::Fixed(device) => (**device).clone(),
            SweepDevice::Auto {
                params,
                max_utilisation,
            } => {
                let netlists: Vec<&Netlist> =
                    synthesized.iter().map(|(_, s)| s.netlist()).collect();
                device_for(*params, &netlists, *max_utilisation)
            }
        };

        let flows = self
            .variants
            .iter()
            .map(|(name, config)| {
                let mut builder = FlowBuilder::new(&device, &self.base).seed(self.seed);
                if let Some(config) = config {
                    builder = builder.tmr(config.clone());
                }
                if let Some(shards) = self.shards {
                    builder = builder.shards(shards);
                }
                (name.clone(), builder.cache(self.cache.clone()).build())
            })
            .collect();
        Ok((device, flows))
    }

    /// Runs the sweep: implements every variant, runs the configured
    /// campaign and analysis on each, and reports.
    ///
    /// # Errors
    ///
    /// Propagates any stage error of any variant.
    pub fn run(&self) -> Result<SweepReport, Error> {
        let (device, flows) = self.flows()?;
        let mut variants = Vec::with_capacity(flows.len());
        for (name, flow) in flows {
            let routed = flow.routed()?;
            let resources = estimate_resources(routed.netlist());
            let bits = routed.design().bit_report(&device);
            let campaign = match &self.campaign {
                Some(campaign) => Some(flow.campaign(campaign)?),
                None => None,
            };
            let analysis = if self.analyze {
                Some(flow.analyzed()?)
            } else {
                None
            };
            variants.push(VariantReport {
                name,
                config: flow.tmr_config().cloned(),
                routed,
                resources,
                bits,
                campaign,
                analysis,
            });
        }
        Ok(SweepReport {
            device,
            variants,
            cache: self.cache.stats(),
        })
    }
}

/// One fully implemented sweep variant plus its reports.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// Variant name (`standard`, `tmr_p1`, …).
    pub name: String,
    /// The TMR configuration (`None` for the unprotected variant).
    pub config: Option<TmrConfig>,
    /// The routed implementation.
    pub routed: Arc<Routed>,
    /// Area / timing estimate (Table 2 left columns).
    pub resources: ResourceEstimate,
    /// Design-related configuration bit counts (Table 2 right columns).
    pub bits: BitReport,
    /// The campaign result, when the sweep configured one (Tables 3/4).
    pub campaign: Option<Arc<CampaignResult>>,
    /// The static criticality analysis, when the sweep enabled it.
    pub analysis: Option<Arc<Analyzed>>,
}

/// The output of [`Sweep::run`]: the shared device, every variant's
/// artifacts and the cache-effectiveness counters.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The device every variant was implemented on.
    pub device: Device,
    /// Per-variant implementations and results, in sweep order.
    pub variants: Vec<VariantReport>,
    /// Artifact-cache counters at the end of the run (hits > 0 whenever the
    /// sweep shared work across variants or runs).
    pub cache: CacheStats,
}

impl SweepReport {
    /// Looks a variant up by name.
    pub fn variant(&self, name: &str) -> Option<&VariantReport> {
        self.variants.iter().find(|v| v.name == name)
    }

    /// Iterates over the variants that ran a campaign.
    pub fn campaigns(&self) -> impl Iterator<Item = (&str, &CampaignResult)> {
        self.variants
            .iter()
            .filter_map(|v| Some((v.name.as_str(), v.campaign.as_deref()?)))
    }
}

// ---------------------------------------------------------------------------
// Deprecated one-call helpers (the previous API surface)
// ---------------------------------------------------------------------------

/// Errors of the combined flow.
#[deprecated(since = "0.2.0", note = "use `tmr_fpga::Error`")]
pub type FlowError = Error;

/// Synthesises a word-level design to a technology-mapped LUT netlist
/// (lowering → dead-logic elimination → LUT mapping + I/O insertion).
///
/// # Errors
///
/// Propagates lowering and mapping errors.
#[deprecated(
    since = "0.2.0",
    note = "use `FlowBuilder::build` + `Flow::synthesized`"
)]
pub fn synthesize(design: &Design) -> Result<Netlist, Error> {
    Ok(techmap(&optimize(&lower(design)?))?)
}

/// Runs the full implementation flow: synthesis, placement, routing and
/// bitstream generation.
///
/// # Errors
///
/// Propagates synthesis and place-and-route errors.
#[deprecated(since = "0.2.0", note = "use `FlowBuilder::build` + `Flow::routed`")]
pub fn implement(device: &Device, design: &Design, seed: u64) -> Result<RoutedDesign, Error> {
    let flow = FlowBuilder::new(device, design).seed(seed).build();
    Ok(flow.routed()?.design().clone())
}

/// Runs a fault-injection campaign sharded over worker threads (one per
/// CPU core when `shards` is `None`). The result is bit-identical to the
/// sequential path for any shard count.
///
/// # Errors
///
/// Returns [`SimError`](tmr_sim::SimError) if the netlist cannot be
/// simulated (combinational loop), which cannot happen for designs produced
/// by [`Flow::routed`].
#[deprecated(since = "0.2.0", note = "use `CampaignBuilder` + `Flow::campaign`")]
pub fn run_campaign_parallel(
    device: &Device,
    routed: &RoutedDesign,
    options: &tmr_faultsim::CampaignOptions,
    shards: Option<usize>,
) -> Result<CampaignResult, tmr_sim::SimError> {
    let mut campaign = CampaignBuilder::from_options(options.clone());
    if let Some(shards) = shards {
        campaign = campaign.shards(shards);
    }
    campaign.run(device, routed)
}

/// Statically classifies every configuration bit of a routed design into
/// a criticality [`Verdict`](tmr_analyze::Verdict) — benign,
/// single-domain or TMR-defeating domain-crossing — with no simulation.
#[deprecated(since = "0.2.0", note = "use `Flow::analyzed`")]
pub fn analyze(device: &Device, routed: &RoutedDesign) -> StaticAnalysis {
    StaticAnalysis::run(device, routed)
}
