//! The typed stage artifacts of the implementation pipeline and the
//! cache-backed stage functions shared by [`Flow`](crate::flow::Flow) and
//! [`Sweep`](crate::flow::Sweep).

use crate::Error;
use std::sync::Arc;
use tmr_analyze::{CriticalityReport, StaticAnalysis};
use tmr_arch::Bitstream;
use tmr_core::pipeline::CacheKey;
use tmr_core::{apply_tmr, TmrConfig};
use tmr_netlist::Netlist;
use tmr_pnr::{Placement, RouteTelemetry, RoutedDesign};
use tmr_sim::CompiledNetlist;
use tmr_store::PersistentCache;
use tmr_synth::{lower, optimize, techmap, Design};

/// The synthesized stage artifact: the technology-mapped LUT netlist of one
/// (possibly TMR-protected) design.
#[derive(Debug, Clone)]
pub struct Synthesized {
    pub(crate) netlist: Netlist,
    pub(crate) fingerprint: u64,
}

impl Synthesized {
    /// The mapped netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The placed stage artifact: a cell → site assignment on the target device.
#[derive(Debug, Clone)]
pub struct Placed {
    pub(crate) placement: Placement,
    pub(crate) fingerprint: u64,
}

impl Placed {
    /// The placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The routed stage artifact: the fully placed, routed and configured design.
#[derive(Debug, Clone)]
pub struct Routed {
    pub(crate) design: RoutedDesign,
    pub(crate) fingerprint: u64,
    /// Negotiation telemetry of the routing run that produced the design;
    /// `None` when the artifact was decoded from the disk store (the design
    /// was not routed by this process).
    pub(crate) telemetry: Option<RouteTelemetry>,
}

impl Routed {
    /// The routed-design database.
    pub fn design(&self) -> &RoutedDesign {
        &self.design
    }

    /// The configuration bitstream.
    pub fn bitstream(&self) -> &Bitstream {
        self.design.bitstream()
    }

    /// The mapped netlist the design was built from.
    pub fn netlist(&self) -> &Netlist {
        self.design.netlist()
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Per-iteration telemetry of the routing run that produced this
    /// artifact (iteration count, rip-ups, expanded nodes, wall time).
    /// `None` when the routed design was served from the disk store.
    pub fn route_telemetry(&self) -> Option<&RouteTelemetry> {
        self.telemetry.as_ref()
    }
}

/// The compiled-simulator stage artifact: the netlist levelized into the
/// flat bit-parallel instruction stream every fault-injection campaign
/// evaluates on ([`tmr_sim::CompiledNetlist`]).
///
/// The stage sits between [`Routed`] and the campaigns: it depends only on
/// the synthesized netlist (levelization is placement-independent), is
/// cached under the same identity fingerprint as synthesis, and is injected
/// into every campaign and streaming session the flow builds — so sweeping
/// three fault models over one design levelizes exactly once.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub(crate) compiled: Arc<CompiledNetlist>,
    pub(crate) fingerprint: u64,
}

impl Compiled {
    /// The compiled instruction stream, shareable across campaigns.
    pub fn netlist(&self) -> &Arc<CompiledNetlist> {
        &self.compiled
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The analyzed stage artifact: the static criticality classification of
/// every configuration bit of the routed design.
#[derive(Debug, Clone)]
pub struct Analyzed {
    pub(crate) analysis: StaticAnalysis,
    pub(crate) fingerprint: u64,
}

impl Analyzed {
    /// The static analysis.
    pub fn analysis(&self) -> &StaticAnalysis {
        &self.analysis
    }

    /// Aggregates the analysis into a [`CriticalityReport`].
    pub fn report(&self) -> CriticalityReport {
        self.analysis.report()
    }

    /// Content fingerprint of the stage inputs (stable across processes).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The cache-backed TMR-transformation stage, shared by
/// [`Flow::protected`](crate::flow::Flow::protected) and the
/// device-independent synthesis pre-pass of
/// [`Sweep::flows`](crate::flow::Sweep::flows). Memory-only: word-level
/// designs are cheap to recompute and feed the (persisted) synthesis stage.
pub(crate) fn stage_protected(
    cache: &PersistentCache,
    identity: u64,
    design: &Design,
    config: Option<&TmrConfig>,
) -> Result<Arc<Design>, Error> {
    cache
        .mem()
        .get_or_try_insert(CacheKey::new("tmr", identity), || {
            let protected = match config {
                Some(config) => apply_tmr(design, config)?,
                None => design.clone(),
            };
            if tmr_trace::enabled() {
                tmr_trace::attr_current("nodes", protected.node_count());
            }
            Ok::<_, Error>(protected)
        })
}

/// The cache-backed synthesis stage, persisted to disk as the mapped
/// [`Netlist`]. `protected` is only invoked on a full (memory **and** disk)
/// miss, so warm re-runs skip the TMR transformation entirely.
pub(crate) fn stage_synthesized(
    cache: &PersistentCache,
    identity: u64,
    protected: impl FnOnce() -> Result<Arc<Design>, Error>,
) -> Result<Arc<Synthesized>, Error> {
    cache.get_or_try_insert_persisted(
        CacheKey::new("synth", identity),
        |netlist: Netlist| {
            if tmr_trace::enabled() {
                tmr_trace::attr_current("cells", netlist.cell_count());
                tmr_trace::attr_current("nets", netlist.net_count());
            }
            Ok(Synthesized {
                netlist,
                fingerprint: identity,
            })
        },
        || {
            let protected = protected()?;
            let netlist = techmap(&optimize(&lower(&protected)?))?;
            if tmr_trace::enabled() {
                tmr_trace::attr_current("cells", netlist.cell_count());
                tmr_trace::attr_current("nets", netlist.net_count());
            }
            let artifact = Synthesized {
                netlist: netlist.clone(),
                fingerprint: identity,
            };
            Ok::<_, Error>((artifact, netlist))
        },
    )
}

/// The cache-backed simulator-compilation stage. The persisted payload is
/// the *source* netlist ([`CompiledNetlist`] does not retain it); decoding
/// replays the (fast, deterministic) compilation, which still skips the
/// whole synthesis pipeline on a warm disk.
pub(crate) fn stage_compiled(
    cache: &PersistentCache,
    identity: u64,
    synthesized: impl FnOnce() -> Result<Arc<Synthesized>, Error>,
) -> Result<Arc<Compiled>, Error> {
    let compile = |netlist: &Netlist| {
        let compiled = CompiledNetlist::compile(netlist)?;
        if tmr_trace::enabled() {
            tmr_trace::attr_current("ops", compiled.op_count());
            tmr_trace::attr_current("levels", compiled.level_count());
        }
        Ok::<_, Error>(Compiled {
            compiled: Arc::new(compiled),
            fingerprint: identity,
        })
    };
    cache.get_or_try_insert_persisted(
        CacheKey::new("compiled", identity),
        |netlist: Netlist| compile(&netlist),
        || {
            let synthesized = synthesized()?;
            let artifact = compile(synthesized.netlist())?;
            Ok((artifact, synthesized.netlist().clone()))
        },
    )
}
