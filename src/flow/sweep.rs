//! Device auto-sizing and configuration [`Sweep`]s over design variants.

use super::builder::{Flow, FlowBuilder};
use super::stages::{stage_protected, stage_synthesized};
use super::{Analyzed, Routed};
use crate::Error;
use std::path::PathBuf;
use std::sync::Arc;
use tmr_arch::{Device, DeviceParams};
use tmr_core::pipeline::{fingerprint, ArtifactCache, CacheStats};
use tmr_core::{estimate_resources, ResourceEstimate, TmrConfig};
use tmr_faultsim::{CampaignBuilder, CampaignResult};
use tmr_netlist::Netlist;
use tmr_pnr::BitReport;
use tmr_store::{DiskStats, PersistentCache, Store};
use tmr_synth::Design;

/// Chooses an evaluation device for a set of netlists: the given
/// architecture parameters if every netlist fits below `max_utilisation`
/// LUT/FF utilisation (and has enough IOBs), otherwise the same architecture
/// scaled up, four columns and rows at a time, to the smallest grid that
/// does.
///
/// Grid *capacity* alone does not make a device usable: the channel width,
/// pin candidates and switch-box connectivity of the preset must also cover
/// the netlists' routing demand, or place-and-route fails on a grid the
/// utilisation check accepted. Those constants are calibrated per design
/// family (the paper presets for the FIR case study), so this function
/// derives floors for them from the netlists themselves — pin traffic of a
/// utilised tile, the widest net fanout — and raises any preset value below
/// its floor. Presets already above the floors (all named `DeviceParams`
/// constructors) are returned bit-identical.
pub fn device_for(mut params: DeviceParams, netlists: &[&Netlist], max_utilisation: f64) -> Device {
    let max_luts = netlists
        .iter()
        .map(|n| {
            let s = n.stats();
            s.luts + s.constants
        })
        .max()
        .unwrap_or(0);
    let max_ffs = netlists
        .iter()
        .map(|n| n.stats().flip_flops)
        .max()
        .unwrap_or(0);
    let max_iobs = netlists
        .iter()
        .map(|n| n.stats().io_buffers)
        .max()
        .unwrap_or(0);
    let max_fanout = netlists
        .iter()
        .flat_map(|n| n.nets().map(|(_, net)| net.sinks.len()))
        .max()
        .unwrap_or(0);

    // Routability floors. A tile's channel carries the pin traffic of its
    // own sites — every LUT input/output and FF data pin enters or leaves
    // on a track — plus through traffic, which grows with the widest net's
    // fanout (a high-fanout net crosses many channels on its way to its
    // sinks). Pin candidates and switch-box hops below 3 leave the
    // PathFinder negotiation too few alternatives to resolve congestion on
    // any grid size, so they get absolute floors.
    let pin_traffic = params.luts_per_tile() * 6 + params.ffs_per_tile() * 2;
    let tracks_floor = pin_traffic
        .max(max_fanout.div_ceil(2))
        .min(u16::MAX as usize) as u16;
    params.tracks = params.tracks.max(tracks_floor);
    params.out_pin_candidates = params.out_pin_candidates.max(6).min(params.tracks);
    params.in_pin_candidates = params.in_pin_candidates.max(4).min(params.tracks);
    params.sb_same_tile = params.sb_same_tile.max(3);
    params.sb_neighbor = params.sb_neighbor.max(3);

    let fits = |params: &DeviceParams| {
        let tiles = usize::from(params.cols) * usize::from(params.rows);
        let luts = tiles * params.luts_per_tile();
        let ffs = tiles * params.ffs_per_tile();
        let perimeter = 2 * (usize::from(params.cols) + usize::from(params.rows)) - 4;
        let iobs = perimeter * usize::from(params.iobs_per_perimeter_tile);
        (max_luts as f64) < luts as f64 * max_utilisation
            && (max_ffs as f64) < ffs as f64 * max_utilisation
            && max_iobs <= iobs
    };

    while !fits(&params) {
        params.cols += 4;
        params.rows += 4;
    }
    Device::new(params)
}

/// The device-selection policy of a [`Sweep`].
#[derive(Debug, Clone)]
enum SweepDevice {
    /// Implement every variant on this device.
    Fixed(Box<Device>),
    /// Scale this architecture up until every variant fits below the given
    /// utilisation (see [`device_for`]).
    Auto {
        params: DeviceParams,
        max_utilisation: f64,
    },
}

/// A configuration sweep: many [`Flow`]s over the variants of one base
/// design, sharing a device and an artifact cache.
///
/// ```no_run
/// use tmr_fpga::designs::FirFilter;
/// use tmr_fpga::faultsim::CampaignBuilder;
/// use tmr_fpga::flow::Sweep;
///
/// let base = FirFilter::paper_filter().to_design();
/// let report = Sweep::paper(&base)
///     .campaign(CampaignBuilder::new().faults(4000).cycles(24))
///     .run()
///     .unwrap();
/// for variant in &report.variants {
///     let campaign = variant.campaign.as_ref().unwrap();
///     println!("{}: {:.2} % wrong answers", variant.name, campaign.wrong_answer_percent());
/// }
/// println!("cache: {}", report.cache);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    base: Design,
    variants: Vec<(String, Option<TmrConfig>)>,
    device: SweepDevice,
    seed: u64,
    shards: Option<usize>,
    campaign: Option<CampaignBuilder>,
    analyze: bool,
    cache: Arc<ArtifactCache>,
    store: Option<Arc<Store>>,
    cache_dir: Option<PathBuf>,
}

impl Sweep {
    /// Starts an empty sweep over `base` with an auto-sized XC2S200E-like
    /// device at 50 % maximum utilisation (our mapping has no carry chains,
    /// so designs are larger than the vendor tools'), seed 1, no campaign
    /// and no static analysis.
    pub fn new(base: &Design) -> Self {
        Self {
            base: base.clone(),
            variants: Vec::new(),
            device: SweepDevice::Auto {
                params: DeviceParams::xc2s200e_like(),
                max_utilisation: 0.50,
            },
            seed: 1,
            shards: None,
            campaign: None,
            analyze: false,
            cache: ArtifactCache::shared(),
            store: None,
            cache_dir: None,
        }
    }

    /// The paper's five-variant sweep, in Table 3 order: `standard` plus the
    /// four TMR presets (`tmr_p1`, `tmr_p2`, `tmr_p3`, `tmr_p3_nv`).
    pub fn paper(base: &Design) -> Self {
        let mut sweep = Self::new(base).variant("standard", None);
        for config in TmrConfig::paper_presets() {
            let name = format!("tmr_{}", config.label);
            sweep = sweep.variant(&name, Some(config));
        }
        sweep
    }

    /// Appends a named variant (`None` = the unprotected base design).
    #[must_use]
    pub fn variant(mut self, name: &str, config: Option<TmrConfig>) -> Self {
        self.variants.push((name.to_string(), config));
        self
    }

    /// Implements every variant on this fixed device instead of auto-sizing.
    #[must_use]
    pub fn on_device(mut self, device: &Device) -> Self {
        self.device = SweepDevice::Fixed(Box::new(device.clone()));
        self
    }

    /// Auto-sizes the device from these architecture parameters and maximum
    /// LUT/FF utilisation (the default policy uses
    /// [`DeviceParams::xc2s200e_like`] at 0.50).
    #[must_use]
    pub fn auto_device(mut self, params: DeviceParams, max_utilisation: f64) -> Self {
        self.device = SweepDevice::Auto {
            params,
            max_utilisation,
        };
        self
    }

    /// Placement seed shared by every variant (default 1).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Campaign worker-shard override shared by every variant.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Runs this fault-injection campaign on every variant.
    #[must_use]
    pub fn campaign(mut self, campaign: CampaignBuilder) -> Self {
        self.campaign = Some(campaign);
        self
    }

    /// Also runs the static criticality analysis on every variant.
    #[must_use]
    pub fn analyze(mut self, analyze: bool) -> Self {
        self.analyze = analyze;
        self
    }

    /// Shares an [`ArtifactCache`] with other sweeps/flows (default: a fresh
    /// cache per sweep). Repeated runs against a shared cache reuse every
    /// artifact.
    #[must_use]
    pub fn cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The cache backing this sweep.
    pub fn cache_handle(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// Backs every flow of the sweep with a disk [`Store`] rooted at `dir`,
    /// so artifacts survive the process; see [`FlowBuilder::cache_dir`]. An
    /// explicit [`store`](Self::store) takes precedence.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Shares one already-open disk [`Store`] across every flow of the
    /// sweep (and with other sweeps holding the same handle).
    #[must_use]
    pub fn store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Resolves the disk layer once per run, so all variants share one
    /// store and its counters aggregate: explicit store → `cache_dir` →
    /// `TMR_CACHE_DIR` → none.
    fn resolve_store(&self) -> Option<Arc<Store>> {
        if let Some(store) = &self.store {
            return Some(store.clone());
        }
        if let Some(dir) = &self.cache_dir {
            return match Store::open(dir) {
                Ok(store) => Some(Arc::new(store)),
                Err(err) => {
                    eprintln!(
                        "tmr-fpga: cannot open cache dir {}: {err}; continuing without disk cache",
                        dir.display()
                    );
                    None
                }
            };
        }
        Store::from_env()
    }

    /// Synthesizes every variant (filling the cache), resolves the device,
    /// and returns the per-variant flows without implementing them.
    ///
    /// # Errors
    ///
    /// Propagates transformation and synthesis errors.
    pub fn flows(&self) -> Result<(Device, Vec<(String, Flow)>), Error> {
        // Synthesis is device-independent: run it first for every variant so
        // auto-sizing can see the netlists. The per-variant flows below then
        // hit the cache for their transformation and synthesis stages.
        let disk = self.resolve_store();
        let cache = PersistentCache::new(self.cache.clone(), disk.clone());
        let mut synthesized = Vec::new();
        for (name, config) in &self.variants {
            let identity = fingerprint(&[&self.base, config]);
            synthesized.push((
                name.clone(),
                stage_synthesized(&cache, identity, || {
                    stage_protected(&cache, identity, &self.base, config.as_ref())
                })?,
            ));
        }

        let device = match &self.device {
            SweepDevice::Fixed(device) => (**device).clone(),
            SweepDevice::Auto {
                params,
                max_utilisation,
            } => {
                let netlists: Vec<&Netlist> =
                    synthesized.iter().map(|(_, s)| s.netlist()).collect();
                device_for(*params, &netlists, *max_utilisation)
            }
        };

        let flows = self
            .variants
            .iter()
            .map(|(name, config)| {
                let mut builder = FlowBuilder::new(&device, &self.base).seed(self.seed);
                if let Some(config) = config {
                    builder = builder.tmr(config.clone());
                }
                if let Some(shards) = self.shards {
                    builder = builder.shards(shards);
                }
                if let Some(store) = &disk {
                    builder = builder.store(store.clone());
                }
                (name.clone(), builder.cache(self.cache.clone()).build())
            })
            .collect();
        Ok((device, flows))
    }

    /// Runs the sweep: implements every variant, runs the configured
    /// campaign and analysis on each, and reports.
    ///
    /// The variants are implemented on parallel `std::thread::scope` flow
    /// threads — each variant's place-and-route is independent of the
    /// others' — and the results are merged back in variant order, so the
    /// report (and any error) is identical to a sequential run.
    ///
    /// # Errors
    ///
    /// Propagates any stage error of any variant; when several variants
    /// fail, the error of the earliest one in sweep order is returned.
    pub fn run(&self) -> Result<SweepReport, Error> {
        let (device, flows) = self.flows()?;
        let flows_store = flows.first().and_then(|(_, flow)| flow.store().cloned());
        let trace_parent = tmr_trace::current_span();
        let results: Vec<Result<VariantReport, Error>> = std::thread::scope(|scope| {
            let handles: Vec<_> = flows
                .into_iter()
                .map(|(name, flow)| {
                    let device = &device;
                    let campaign = self.campaign.as_ref();
                    let analyze = self.analyze;
                    scope.spawn(move || {
                        let _task = tmr_trace::enabled()
                            .then(|| tmr_trace::task(format!("variant-{name}"), trace_parent));
                        implement_variant(name, &flow, device, campaign, analyze)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("variant flow thread panicked"))
                .collect()
        });
        let mut variants = Vec::with_capacity(results.len());
        for result in results {
            variants.push(result?);
        }
        let disk = flows_store.as_ref();
        Ok(SweepReport {
            device,
            variants,
            cache: self.cache.stats(),
            stage_cache: self.cache.stage_stats(),
            disk: disk.map(|store| store.stats()),
            disk_stage: disk.map(|store| store.stage_stats()).unwrap_or_default(),
        })
    }
}

/// Implements one sweep variant end to end: route, resource estimate, bit
/// report, plus the optional campaign and static analysis. Runs on its own
/// flow thread in [`Sweep::run`]; every stage memoizes into the sweep's
/// shared (thread-safe) caches.
fn implement_variant(
    name: String,
    flow: &Flow,
    device: &Device,
    campaign: Option<&CampaignBuilder>,
    analyze: bool,
) -> Result<VariantReport, Error> {
    let routed = flow.routed()?;
    let resources = estimate_resources(routed.netlist());
    let bits = routed.design().bit_report(device);
    let campaign = match campaign {
        Some(campaign) => Some(flow.campaign(campaign)?),
        None => None,
    };
    let analysis = if analyze {
        Some(flow.analyzed()?)
    } else {
        None
    };
    Ok(VariantReport {
        name,
        config: flow.tmr_config().cloned(),
        routed,
        resources,
        bits,
        campaign,
        analysis,
    })
}

/// Aggregate routing-negotiation statistics of one sweep run (see
/// [`SweepReport::route_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Variants whose routing ran in this process (and thus carry
    /// telemetry).
    pub routed: usize,
    /// PathFinder negotiation iterations summed over those variants.
    pub iterations: usize,
    /// A* queue pops summed over those variants.
    pub nodes_expanded: u64,
    /// Routing wall time summed over those variants.
    pub elapsed: std::time::Duration,
}

/// One fully implemented sweep variant plus its reports.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// Variant name (`standard`, `tmr_p1`, …).
    pub name: String,
    /// The TMR configuration (`None` for the unprotected variant).
    pub config: Option<TmrConfig>,
    /// The routed implementation.
    pub routed: Arc<Routed>,
    /// Area / timing estimate (Table 2 left columns).
    pub resources: ResourceEstimate,
    /// Design-related configuration bit counts (Table 2 right columns).
    pub bits: BitReport,
    /// The campaign result, when the sweep configured one (Tables 3/4).
    pub campaign: Option<Arc<CampaignResult>>,
    /// The static criticality analysis, when the sweep enabled it.
    pub analysis: Option<Arc<Analyzed>>,
}

/// The output of [`Sweep::run`]: the shared device, every variant's
/// artifacts and the cache-effectiveness counters.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The device every variant was implemented on.
    pub device: Device,
    /// Per-variant implementations and results, in sweep order.
    pub variants: Vec<VariantReport>,
    /// Artifact-cache counters at the end of the run (hits > 0 whenever the
    /// sweep shared work across variants or runs).
    pub cache: CacheStats,
    /// Per-stage cache counters (`tmr`, `synth`, `compiled`, `campaign`, …),
    /// sorted by stage name — the table binaries log these so reuse of the
    /// compiled-simulator stage is visible in every run.
    pub stage_cache: Vec<(&'static str, CacheStats)>,
    /// Aggregate disk-store counters, when the sweep ran over a disk cache
    /// (`TMR_CACHE_DIR`, [`Sweep::cache_dir`] or [`Sweep::store`]); `None`
    /// for memory-only sweeps.
    pub disk: Option<DiskStats>,
    /// Per-stage disk-store counters, sorted by stage name; empty for
    /// memory-only sweeps.
    pub disk_stage: Vec<(&'static str, DiskStats)>,
}

impl SweepReport {
    /// Looks a variant up by name.
    pub fn variant(&self, name: &str) -> Option<&VariantReport> {
        self.variants.iter().find(|v| v.name == name)
    }

    /// Iterates over the variants that ran a campaign.
    pub fn campaigns(&self) -> impl Iterator<Item = (&str, &CampaignResult)> {
        self.variants
            .iter()
            .filter_map(|v| Some((v.name.as_str(), v.campaign.as_deref()?)))
    }

    /// The cache counters of one stage (`"compiled"`, `"synth"`, …).
    pub fn stage_stats(&self, stage: &str) -> Option<CacheStats> {
        self.stage_cache
            .iter()
            .find(|(name, _)| *name == stage)
            .map(|&(_, stats)| stats)
    }

    /// The disk-store counters of one stage; `None` for memory-only sweeps
    /// or stages the store never saw.
    pub fn disk_stage_stats(&self, stage: &str) -> Option<DiskStats> {
        self.disk_stage
            .iter()
            .find(|(name, _)| *name == stage)
            .map(|&(_, stats)| stats)
    }

    /// The routing-negotiation counters summed over every variant this
    /// process actually routed (variants served from the disk store carry no
    /// telemetry and contribute nothing — their `routed` count stays 0).
    pub fn route_stats(&self) -> RouteStats {
        let mut stats = RouteStats::default();
        for variant in &self.variants {
            let Some(telemetry) = variant.routed.route_telemetry() else {
                continue;
            };
            stats.routed += 1;
            stats.iterations += telemetry.iteration_count();
            stats.nodes_expanded += telemetry.total_nodes_expanded();
            stats.elapsed += telemetry.total_elapsed();
        }
        stats
    }

    /// The simulator observability counters merged over every campaign of
    /// the sweep (all zero when no variant ran a campaign, or on the
    /// interpreter backend). Campaign results served from the artifact cache
    /// contribute the counters recorded when they were first computed.
    pub fn sim_stats(&self) -> tmr_faultsim::SimStats {
        let mut stats = tmr_faultsim::SimStats::default();
        for (_, campaign) in self.campaigns() {
            stats.merge(&campaign.stats);
        }
        stats
    }
}
