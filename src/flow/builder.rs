//! [`FlowBuilder`] and the lazily evaluated, memoized [`Flow`].

use super::stages::{stage_compiled, stage_protected, stage_synthesized};
use super::{Analyzed, Compiled, Placed, Routed, Synthesized};
use crate::Error;
use std::path::PathBuf;
use std::sync::Arc;
use tmr_analyze::StaticAnalysis;
use tmr_arch::Device;
use tmr_core::pipeline::{fingerprint, ArtifactCache, CacheKey, Fingerprint};
use tmr_core::TmrConfig;
use tmr_faultsim::{CampaignBuilder, CampaignResult, CampaignSession, SimBackend};
use tmr_pnr::{place, route_with_telemetry, PlacerOptions, RoutedDesign, RouterOptions};
use tmr_sim::GoldenRun;
use tmr_store::{PersistentCache, Store};
use tmr_synth::Design;

/// Builder for a single staged implementation [`Flow`].
///
/// ```
/// use tmr_fpga::arch::Device;
/// use tmr_fpga::flow::FlowBuilder;
/// use tmr_fpga::tmr::TmrConfig;
///
/// let device = Device::small(8, 8);
/// let design = tmr_fpga::designs::counter(4);
/// let flow = FlowBuilder::new(&device, &design)
///     .tmr(TmrConfig::paper_p2())
///     .seed(1)
///     .build();
/// let routed = flow.routed().unwrap();
/// assert!(routed.bitstream().count_ones() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FlowBuilder {
    device: Device,
    design: Design,
    tmr: Option<TmrConfig>,
    seed: u64,
    shards: Option<usize>,
    cache: Option<Arc<ArtifactCache>>,
    store: Option<Arc<Store>>,
    cache_dir: Option<PathBuf>,
}

impl FlowBuilder {
    /// Starts a flow of `design` onto `device` (both captured by clone).
    pub fn new(device: &Device, design: &Design) -> Self {
        Self {
            device: device.clone(),
            design: design.clone(),
            tmr: None,
            seed: 1,
            shards: None,
            cache: None,
            store: None,
            cache_dir: None,
        }
    }

    /// Protects the design with TMR before synthesis.
    #[must_use]
    pub fn tmr(mut self, config: TmrConfig) -> Self {
        self.tmr = Some(config);
        self
    }

    /// Placement seed (default 1).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker-shard count for campaigns run through this flow (default: one
    /// per CPU core). Results are bit-identical for any shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Shares an [`ArtifactCache`] with other flows (default: a fresh
    /// private cache). A sweep passes one cache to all of its flows.
    #[must_use]
    pub fn cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Backs the flow's cache with a disk [`Store`] rooted at `dir`, so
    /// stage artifacts survive the process and warm-start later runs. The
    /// directory is created on [`build`](Self::build); if it cannot be
    /// opened the flow falls back to memory-only caching (with a warning on
    /// stderr). An explicit [`store`](Self::store) takes precedence.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Shares an already-open disk [`Store`] with other flows (takes
    /// precedence over [`cache_dir`](Self::cache_dir) and the
    /// `TMR_CACHE_DIR` environment variable). A sweep passes one store to
    /// all of its flows so the disk counters aggregate.
    #[must_use]
    pub fn store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Installs `config` as the process-global trace configuration (the
    /// tracer is a process singleton — see [`crate::trace::configure`] — so
    /// this affects every instrumented layer, not just this flow). Stage
    /// artifacts and campaign results are bit-identical with tracing on,
    /// off, or at any sink.
    #[must_use]
    pub fn trace(self, config: tmr_trace::TraceConfig) -> Self {
        tmr_trace::configure(config);
        self
    }

    /// Finishes the builder.
    ///
    /// Disk-store resolution, in decreasing precedence: an explicit
    /// [`store`](Self::store), a [`cache_dir`](Self::cache_dir), the
    /// `TMR_CACHE_DIR` environment variable, none (memory-only).
    pub fn build(self) -> Flow {
        let identity = fingerprint(&[&self.design, &self.tmr]);
        let device_fp = fingerprint(&[self.device.params()]);
        let disk = match (self.store, self.cache_dir) {
            (Some(store), _) => Some(store),
            (None, Some(dir)) => match Store::open(&dir) {
                Ok(store) => Some(Arc::new(store)),
                Err(err) => {
                    eprintln!(
                        "tmr-fpga: cannot open cache dir {}: {err}; continuing without disk cache",
                        dir.display()
                    );
                    None
                }
            },
            (None, None) => Store::from_env(),
        };
        Flow {
            device: Arc::new(self.device),
            design: self.design,
            tmr: self.tmr,
            seed: self.seed,
            shards: self.shards,
            cache: PersistentCache::new(self.cache.unwrap_or_default(), disk),
            identity,
            device_fp,
        }
    }
}

/// A lazily evaluated, memoized implementation flow over one design and one
/// device.
///
/// Every stage accessor computes its artifact on first use and caches it in
/// the flow's [`ArtifactCache`] under a content fingerprint of the stage
/// inputs; repeated calls — from this flow or any flow sharing the cache
/// with identical inputs — return the same `Arc` without recomputing.
#[derive(Debug, Clone)]
pub struct Flow {
    device: Arc<Device>,
    design: Design,
    tmr: Option<TmrConfig>,
    seed: u64,
    shards: Option<usize>,
    cache: PersistentCache,
    /// Fingerprint of `(design, tmr config)`: since every stage is a
    /// deterministic function, downstream keys derive from this instead of
    /// hashing the (much larger) intermediate artifacts.
    identity: u64,
    device_fp: u64,
}

impl Flow {
    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The word-level input design (before TMR).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The TMR configuration, if the flow protects the design.
    pub fn tmr_config(&self) -> Option<&TmrConfig> {
        self.tmr.as_ref()
    }

    /// The in-memory artifact cache backing this flow.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        self.cache.mem()
    }

    /// The two-level (memory over optional disk) cache backing this flow.
    pub fn persistent_cache(&self) -> &PersistentCache {
        &self.cache
    }

    /// The disk store behind the cache, when one is attached (via
    /// [`FlowBuilder::cache_dir`], [`FlowBuilder::store`] or
    /// `TMR_CACHE_DIR`).
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.cache.disk()
    }

    /// The design entering synthesis: the TMR-transformed design when a
    /// config is set, the input design otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`TmrError`](tmr_core::TmrError) from the transformation.
    pub fn protected(&self) -> Result<Arc<Design>, Error> {
        stage_protected(&self.cache, self.identity, &self.design, self.tmr.as_ref())
    }

    /// Stage 1, [`Synthesized`]: lowering → dead-logic elimination → LUT
    /// mapping + I/O insertion. Persisted to disk when a store is attached;
    /// a warm disk skips the TMR transformation too.
    ///
    /// # Errors
    ///
    /// Propagates transformation, lowering and mapping errors.
    pub fn synthesized(&self) -> Result<Arc<Synthesized>, Error> {
        stage_synthesized(&self.cache, self.identity, || self.protected())
    }

    /// Stage 2, [`Placed`]: seeded simulated-annealing placement.
    /// Memory-only — a warm disk serves [`routed`](Self::routed) directly
    /// and never needs the placement.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors and placement failures (device too
    /// small, unplaceable cells).
    pub fn placed(&self) -> Result<Arc<Placed>, Error> {
        let fp = self.implementation_fp();
        self.cache
            .mem()
            .get_or_try_insert(CacheKey::new("place", fp), || {
                let synthesized = self.synthesized()?;
                let placement = place(
                    &self.device,
                    synthesized.netlist(),
                    &PlacerOptions {
                        seed: self.seed,
                        ..PlacerOptions::default()
                    },
                )?;
                if tmr_trace::enabled() {
                    tmr_trace::attr_current("cells", placement.iter().count());
                    tmr_trace::attr_current("wirelength", placement.wirelength());
                }
                Ok::<_, Error>(Placed {
                    placement,
                    fingerprint: fp,
                })
            })
    }

    /// Stage 3, [`Routed`]: negotiated-congestion routing plus bitstream
    /// generation. Persisted to disk as the full [`RoutedDesign`]; a warm
    /// disk serves it without synthesizing, placing or routing anything.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors and routing failures (unroutable
    /// congestion, unreachable sinks).
    pub fn routed(&self) -> Result<Arc<Routed>, Error> {
        let fp = self.implementation_fp();
        self.cache.get_or_try_insert_persisted(
            CacheKey::new("route", fp),
            |design: RoutedDesign| {
                if tmr_trace::enabled() {
                    tmr_trace::attr_current("config_bits", design.bitstream().len());
                    tmr_trace::attr_current("bits_set", design.bitstream().count_ones());
                }
                Ok(Routed {
                    design,
                    fingerprint: fp,
                    telemetry: None,
                })
            },
            || {
                let synthesized = self.synthesized()?;
                let placed = self.placed()?;
                let (routes, telemetry) = route_with_telemetry(
                    &self.device,
                    synthesized.netlist(),
                    placed.placement(),
                    &RouterOptions::default(),
                );
                let routes = routes?;
                if tmr_trace::enabled() {
                    tmr_trace::attr_current("route_iterations", telemetry.iteration_count());
                    tmr_trace::attr_current(
                        "route_nodes_expanded",
                        telemetry.total_nodes_expanded() as usize,
                    );
                }
                let design = RoutedDesign::assemble(
                    &self.device,
                    synthesized.netlist(),
                    placed.placement().clone(),
                    routes,
                );
                if tmr_trace::enabled() {
                    tmr_trace::attr_current("config_bits", design.bitstream().len());
                    tmr_trace::attr_current("bits_set", design.bitstream().count_ones());
                }
                let artifact = Routed {
                    design: design.clone(),
                    fingerprint: fp,
                    telemetry: Some(telemetry),
                };
                Ok::<_, Error>((artifact, design))
            },
        )
    }

    /// The [`Compiled`] simulator stage: the synthesized netlist levelized
    /// into the flat 64-lane bit-parallel instruction stream campaigns
    /// evaluate on. Cached per design identity (compilation is
    /// placement-independent) and injected into every campaign this flow
    /// runs, so repeated campaigns — including different fault models —
    /// levelize exactly once.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; flow netlists are always compilable.
    pub fn compiled(&self) -> Result<Arc<Compiled>, Error> {
        stage_compiled(&self.cache, self.identity, || self.synthesized())
    }

    /// Stage 4, [`Analyzed`]: exhaustive static criticality classification
    /// of every configuration bit (no simulation).
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; the analysis itself is infallible.
    pub fn analyzed(&self) -> Result<Arc<Analyzed>, Error> {
        let fp = self.implementation_fp();
        self.cache
            .mem()
            .get_or_try_insert(CacheKey::new("analyze", fp), || {
                let routed = self.routed()?;
                let analysis = StaticAnalysis::run(&self.device, routed.design());
                if tmr_trace::enabled() {
                    tmr_trace::attr_current("bits", analysis.bit_count());
                }
                Ok::<_, Error>(Analyzed {
                    analysis,
                    fingerprint: fp,
                })
            })
    }

    /// The golden (fault-free) reference run for campaigns of `cycles`
    /// cycles under stimulus `seed` — cached per netlist (persisted to disk
    /// when a store is attached), shared by every campaign and session over
    /// this design, on any device.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; flow netlists are always simulable.
    pub fn golden(&self, cycles: usize, stimulus_seed: u64) -> Result<Arc<GoldenRun>, Error> {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.identity)
            .write_u64(cycles as u64)
            .write_u64(stimulus_seed);
        self.cache
            .get_or_try_insert_self(CacheKey::new("golden", fp.finish()), || {
                if tmr_trace::enabled() {
                    tmr_trace::attr_current("cycles", cycles);
                }
                let synthesized = self.synthesized()?;
                GoldenRun::compute(synthesized.netlist(), cycles, stimulus_seed)
                    .map_err(Error::from)
            })
    }

    /// Runs (or returns the cached result of) a fault-injection campaign
    /// over the routed design. The golden trace and the compiled simulator
    /// come from the shared cache; the flow's shard override applies; the
    /// result is memoized under the campaign configuration.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; flow netlists are always simulable.
    pub fn campaign(&self, campaign: &CampaignBuilder) -> Result<Arc<CampaignResult>, Error> {
        let fp = self.campaign_fingerprint(campaign);
        self.cache
            .get_or_try_insert_self(CacheKey::new("campaign", fp), || {
                let routed = self.routed()?;
                let golden = self.golden(
                    campaign.options().cycles(),
                    campaign.options().stimulus_seed(),
                )?;
                let compiled = self.compiled_for(campaign)?;
                let mut configured = campaign.clone().golden(golden);
                if let Some(compiled) = &compiled {
                    configured = configured.compiled(compiled.netlist().clone());
                }
                if let Some(shards) = self.shards {
                    configured = configured.shards(shards);
                }
                let result = configured
                    .run(&self.device, routed.design())
                    .map_err(Error::from)?;
                if tmr_trace::enabled() {
                    tmr_trace::attr_current("injected", result.injected());
                    tmr_trace::attr_current("wrong_answers", result.wrong_answers());
                }
                Ok(result)
            })
    }

    /// The cache fingerprint of [`campaign`](Self::campaign) for this
    /// configuration — the key the result is memoized and persisted under.
    ///
    /// The fingerprint covers exactly what can change the outcomes: the
    /// implemented design (identity × device × seed) plus the campaign
    /// options (fault count, seeds, the fault model — single-bit, MBU
    /// cluster shape or upsets per scrub — and any static restriction),
    /// batch size and early-stop rule (an early stop lands on a batch
    /// boundary). Shard count, the simulation backend and any attached
    /// golden run or compiled netlist are deliberately absent — they never
    /// change results, only how (fast) they are computed.
    ///
    /// The campaign daemon (`tmr-serve`) keys its resumable outcome
    /// prefixes under the same fingerprint (stage `campaign.partial`).
    pub fn campaign_fingerprint(&self, campaign: &CampaignBuilder) -> u64 {
        fingerprint(&[
            &self.identity,
            &self.device_fp,
            &self.seed,
            campaign.options(),
            &campaign.batch_size_hint(),
            &campaign.early_stop_rule(),
        ])
    }

    /// Builds a streaming [`CampaignSession`] over the routed design for
    /// incremental outcome batches, progress reporting and early stop. The
    /// caller keeps the [`Routed`] artifact alive for the session's
    /// lifetime:
    ///
    /// ```no_run
    /// # use tmr_fpga::flow::FlowBuilder;
    /// # use tmr_fpga::faultsim::CampaignBuilder;
    /// # let flow: tmr_fpga::flow::Flow = unimplemented!();
    /// let routed = flow.routed()?;
    /// let mut session = flow.campaign_session(&routed, &CampaignBuilder::new())?;
    /// while let Some(batch) = session.next_batch() {
    ///     eprintln!("+{} faults", batch.len());
    /// }
    /// println!("{}", session.into_result());
    /// # Ok::<(), tmr_fpga::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; flow netlists are always simulable.
    pub fn campaign_session<'f>(
        &'f self,
        routed: &'f Routed,
        campaign: &CampaignBuilder,
    ) -> Result<CampaignSession<'f>, Error> {
        let golden = self.golden(
            campaign.options().cycles(),
            campaign.options().stimulus_seed(),
        )?;
        let compiled = self.compiled_for(campaign)?;
        let mut configured = campaign.clone().golden(golden);
        if let Some(compiled) = &compiled {
            configured = configured.compiled(compiled.netlist().clone());
        }
        if let Some(shards) = self.shards {
            configured = configured.shards(shards);
        }
        configured
            .session(&self.device, routed.design())
            .map_err(Error::from)
    }

    /// The cached [`Compiled`] stage when the campaign will run on the
    /// compiled backend, `None` for interpreter-only runs (`TMR_SIM=interp`
    /// or an explicit [`SimBackend::Interpreter`]) — those must neither pay
    /// the compilation nor distort the `compiled` stage cache counters.
    fn compiled_for(&self, campaign: &CampaignBuilder) -> Result<Option<Arc<Compiled>>, Error> {
        match campaign.backend_hint().unwrap_or_else(SimBackend::from_env) {
            SimBackend::Interpreter => Ok(None),
            SimBackend::Compiled | SimBackend::CompiledFull => Ok(Some(self.compiled()?)),
        }
    }

    /// Fingerprint of the implemented design: identity × device × seed.
    fn implementation_fp(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.identity)
            .write_u64(self.device_fp)
            .write_u64(self.seed);
        fp.finish()
    }
}
