//! The staged implementation pipeline: lazy, cached, sweepable.
//!
//! The paper's experiment is not one flow run but a *sweep*: the same FIR
//! design pushed through five TMR variants, each synthesized, placed, routed
//! and bombarded with fault-injection campaigns. This module models that as
//! first-class API instead of hand-wired glue:
//!
//! * [`FlowBuilder`] captures the inputs of one implementation flow (device,
//!   design, optional [`TmrConfig`](tmr_core::TmrConfig), seed, shard count)
//!   and builds a [`Flow`];
//! * a [`Flow`] exposes **typed stage artifacts** — [`Synthesized`] →
//!   [`Placed`] → [`Routed`] (plus the placement-independent [`Compiled`]
//!   simulator stage and the exhaustive [`Analyzed`] criticality stage) —
//!   computed lazily and memoized in a shared
//!   [`ArtifactCache`](tmr_core::pipeline::ArtifactCache) keyed by content
//!   fingerprints, so two flows over the same inputs share every stage;
//! * [`Flow::campaign`] runs fault-injection campaigns configured through
//!   [`CampaignBuilder`](tmr_faultsim::CampaignBuilder), reusing the cached
//!   golden run ([`tmr_sim::GoldenRun`]) **and** the cached compiled
//!   bit-parallel simulator ([`Compiled`]) across campaigns over the same
//!   netlist — including campaigns under different fault models
//!   ([`tmr_faultsim::FaultModel`]), each memoized under its own
//!   fingerprint — and [`Flow::campaign_session`] streams one incrementally
//!   (progress reporting, statistical early stop);
//! * a [`Sweep`] drives many flows over the variants of one base design —
//!   [`Sweep::paper`] gives the five paper variants — on a common
//!   (optionally auto-sized) device, producing a [`SweepReport`] that holds
//!   everything Tables 2, 3 and 4 need plus the cache effectiveness
//!   counters, aggregate and per stage.
//!
//! The deprecated one-call helpers of the pre-0.2 API (`implement`,
//! `synthesize`, `run_campaign_parallel`, `analyze`, `FlowError`) have been
//! removed; the README's migration table maps each onto its builder
//! replacement.

mod builder;
mod stages;
mod sweep;

pub use builder::{Flow, FlowBuilder};
pub use stages::{Analyzed, Compiled, Placed, Routed, Synthesized};
pub use sweep::{device_for, RouteStats, Sweep, SweepReport, VariantReport};
