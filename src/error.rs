//! The unified error surface of the facade.
//!
//! Every stage of the staged pipeline — TMR transformation, synthesis,
//! place-and-route, simulation — has its own precise error enum in its own
//! crate. At the facade boundary those are folded into one
//! [`enum@Error`] so that consumers driving the whole flow handle a single
//! type with proper [`std::error::Error::source`] chains, instead of three
//! ad-hoc per-layer enums.

use std::error::Error as StdError;
use std::fmt;
use tmr_core::TmrError;
use tmr_pnr::PnrError;
use tmr_sim::SimError;
use tmr_synth::{LowerError, TechmapError};

/// Any error of the combined implementation-and-campaign flow.
///
/// The enum is `#[non_exhaustive]`: new pipeline stages may add variants
/// without a breaking change, so downstream `match`es need a wildcard arm.
/// The inner per-layer error is available both through the variant payload
/// and through [`std::error::Error::source`].
#[non_exhaustive]
#[derive(Debug)]
pub enum Error {
    /// The TMR transformation rejected the design.
    Tmr(TmrError),
    /// Word-level lowering failed.
    Lower(LowerError),
    /// Technology mapping failed.
    Techmap(TechmapError),
    /// Placement or routing failed.
    Pnr(PnrError),
    /// The netlist cannot be simulated (combinational loop) — impossible for
    /// netlists produced by this workspace's synthesis flow.
    Sim(SimError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tmr(_) => write!(f, "TMR transformation failed"),
            Error::Lower(_) => write!(f, "lowering failed"),
            Error::Techmap(_) => write!(f, "technology mapping failed"),
            Error::Pnr(_) => write!(f, "place-and-route failed"),
            Error::Sim(_) => write!(f, "simulation failed"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Tmr(e) => Some(e),
            Error::Lower(e) => Some(e),
            Error::Techmap(e) => Some(e),
            Error::Pnr(e) => Some(e),
            Error::Sim(e) => Some(e),
        }
    }
}

impl From<TmrError> for Error {
    fn from(e: TmrError) -> Self {
        Error::Tmr(e)
    }
}
impl From<LowerError> for Error {
    fn from(e: LowerError) -> Self {
        Error::Lower(e)
    }
}
impl From<TechmapError> for Error {
    fn from(e: TechmapError) -> Self {
        Error::Techmap(e)
    }
}
impl From<PnrError> for Error {
    fn from(e: PnrError) -> Self {
        Error::Pnr(e)
    }
}
impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain_to_the_layer_error() {
        let error = Error::from(SimError::CombinationalLoop { cells: 3 });
        assert_eq!(error.to_string(), "simulation failed");
        let source = error.source().expect("source chain");
        assert!(source.to_string().contains("combinational loop"));
        fn assert_error<E: StdError + Send + Sync + 'static>() {}
        assert_error::<Error>();
    }
}
