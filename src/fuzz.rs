//! Differential fuzzing of the whole flow.
//!
//! Per seed, [`run_seed`] drives generator → TMR transform → auto-sized
//! device → place/route → fault-injection campaigns, and cross-checks the
//! three independent oracles the workspace already maintains:
//!
//! | oracle | checked against | failure variant |
//! |---|---|---|
//! | compiled engine (event-driven **and** always-full) | interpreting simulator, byte-equality of [`CampaignResult`] | [`OracleFailure::CompiledDivergence`] |
//! | static `tmr-analyze` verdicts | dynamic campaign outcomes (wrong answers must be statically observable, dynamic domain crossings must be statically crossing) and pruning transparency | [`OracleFailure::StaticUnsound`] / [`OracleFailure::PruneDivergence`] |
//! | sharded campaign merge | the sequential run, byte-equality | [`OracleFailure::ShardMergeDivergence`] |
//!
//! Any stage failure — including a routability failure of the auto-sized
//! device, which the sizing policy must prevent for every valid generated
//! design — is itself a finding ([`OracleFailure::Flow`]).
//!
//! Failures are minimized with [`shrink_case`] (delta-debugging the
//! word-level design while the same failure kind reproduces) and stored as
//! self-contained [`RegressionCase`] text files under
//! `tests/fuzz_regressions/`, which `tests/fuzz_flow.rs` replays forever
//! after.

use crate::flow::{device_for, FlowBuilder};
use crate::Error;
use std::fmt;
use std::sync::Arc;
use tmr_analyze::{PruneWith, StaticAnalysis, Verdict};
use tmr_arch::{Device, DeviceParams, MbuPattern};
use tmr_core::TmrConfig;
use tmr_designs::spec::{shrink, DesignSpec};
use tmr_designs::{generate, GeneratorConfig, SpecError};
use tmr_faultsim::{CampaignBuilder, CampaignResult, FaultModel, SimBackend};
use tmr_synth::Design;

/// Budget and coverage knobs of one fuzzing check.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOptions {
    /// Faults sampled per campaign.
    pub faults: usize,
    /// Simulated cycles per fault.
    pub cycles: usize,
    /// Worker shards of the sharded run checked against the sequential one.
    pub shards: usize,
    /// Maximum LUT/FF utilisation target handed to the device auto-sizer.
    pub max_utilisation: f64,
    /// Base architecture handed to the device auto-sizer. The auto-sizer
    /// owns routability: whatever lean preset lands here, every valid
    /// generated design must implement without a routing failure.
    pub params: DeviceParams,
}

impl Default for FuzzOptions {
    /// A budget tuned so one seed (route + 3 fault models × 5 campaigns)
    /// completes in well under a second on the generator's default sizes.
    fn default() -> Self {
        Self {
            faults: 120,
            cycles: 8,
            shards: 4,
            max_utilisation: 0.5,
            params: DeviceParams::small(6, 6),
        }
    }
}

/// The base architecture a seed is fuzzed on: seeds rotate through the
/// well-provisioned `small` preset and three progressively leaner channel /
/// pin configurations, so any contiguous range of four seeds also exercises
/// the auto-sizer's routability compensation ([`crate::flow::device_for`]
/// must derive the missing headroom from the netlists).
pub fn arch_for_seed(seed: u64) -> DeviceParams {
    let mut params = DeviceParams::small(6, 6);
    match seed % 4 {
        0 => {}
        1 => {
            params.tracks = 16;
            params.out_pin_candidates = 6;
            params.in_pin_candidates = 4;
        }
        2 => {
            params.tracks = 12;
            params.out_pin_candidates = 4;
            params.in_pin_candidates = 3;
            params.sb_neighbor = 2;
        }
        _ => {
            params.tracks = 8;
            params.out_pin_candidates = 4;
            params.in_pin_candidates = 2;
            params.sb_same_tile = 2;
            params.sb_neighbor = 2;
        }
    }
    params
}

/// The three fault-model families every seed is checked under.
pub fn fault_models() -> [FaultModel; 3] {
    [
        FaultModel::SingleBit,
        FaultModel::Mbu {
            pattern: MbuPattern::Tile2x2,
        },
        FaultModel::Accumulate {
            upsets_per_scrub: 2,
        },
    ]
}

/// The TMR variant a seed is fuzzed under: seeds rotate through the
/// unprotected design and the four paper presets, so any contiguous range of
/// five seeds covers every variant.
pub fn variant_for_seed(seed: u64) -> (String, Option<TmrConfig>) {
    match seed % 5 {
        0 => ("standard".to_string(), None),
        1 => ("p1".to_string(), Some(TmrConfig::paper_p1())),
        2 => ("p2".to_string(), Some(TmrConfig::paper_p2())),
        3 => ("p3".to_string(), Some(TmrConfig::paper_p3())),
        _ => ("p3_nv".to_string(), Some(TmrConfig::paper_p3_nv())),
    }
}

/// Resolves a variant name (`standard`, `p1`, `p2`, `p3`, `p3_nv`) to its
/// TMR configuration.
pub fn variant_config(name: &str) -> Option<Option<TmrConfig>> {
    match name {
        "standard" => Some(None),
        "p1" => Some(Some(TmrConfig::paper_p1())),
        "p2" => Some(Some(TmrConfig::paper_p2())),
        "p3" => Some(Some(TmrConfig::paper_p3())),
        "p3_nv" => Some(Some(TmrConfig::paper_p3_nv())),
        _ => None,
    }
}

/// One oracle violation (or stage failure) found by the fuzzer.
#[derive(Debug, Clone)]
pub enum OracleFailure {
    /// A pipeline stage failed outright — synthesis, placement, routing
    /// (the auto-sizing contract makes routability failures findings, not
    /// infrastructure noise) or simulator compilation.
    Flow(String),
    /// A compiled backend diverged from the interpreting oracle.
    CompiledDivergence {
        /// The fault model under which the backends diverged.
        model: FaultModel,
        /// `compiled` (event-driven) or `compiled-full`.
        backend: &'static str,
        /// First differing outcome / aggregate diff.
        detail: String,
    },
    /// The sharded campaign merge diverged from the sequential run.
    ShardMergeDivergence {
        /// The fault model under which the merge diverged.
        model: FaultModel,
        /// Shard count of the diverging run.
        shards: usize,
        /// First differing outcome / aggregate diff.
        detail: String,
    },
    /// A dynamic outcome contradicted the static analysis: a wrong answer
    /// from a statically-unobservable fault, or a dynamic domain crossing
    /// on a bit the analyzer did not flag as crossing.
    StaticUnsound {
        /// The fault model of the contradicting campaign.
        model: FaultModel,
        /// The contradiction.
        detail: String,
    },
    /// Statically pruned campaign outcomes differ from the unpruned run.
    PruneDivergence {
        /// The fault model under which pruning changed outcomes.
        model: FaultModel,
        /// First differing outcome / aggregate diff.
        detail: String,
    },
}

impl OracleFailure {
    /// A stable machine-readable tag of the failure kind — the invariant a
    /// shrink preserves and a regression case records.
    pub fn kind(&self) -> &'static str {
        match self {
            OracleFailure::Flow(_) => "flow",
            OracleFailure::CompiledDivergence { .. } => "compiled-divergence",
            OracleFailure::ShardMergeDivergence { .. } => "shard-merge-divergence",
            OracleFailure::StaticUnsound { .. } => "static-unsound",
            OracleFailure::PruneDivergence { .. } => "prune-divergence",
        }
    }
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFailure::Flow(detail) => write!(f, "flow failure: {detail}"),
            OracleFailure::CompiledDivergence {
                model,
                backend,
                detail,
            } => write!(
                f,
                "{backend} diverged from interpreter under {model}: {detail}"
            ),
            OracleFailure::ShardMergeDivergence {
                model,
                shards,
                detail,
            } => write!(
                f,
                "sharded ({shards}) merge diverged from sequential under {model}: {detail}"
            ),
            OracleFailure::StaticUnsound { model, detail } => {
                write!(f, "static analysis unsound under {model}: {detail}")
            }
            OracleFailure::PruneDivergence { model, detail } => {
                write!(f, "pruned campaign diverged under {model}: {detail}")
            }
        }
    }
}

/// The outcome of fuzzing one seed.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The fuzzed seed.
    pub seed: u64,
    /// The sampled generator configuration.
    pub config: GeneratorConfig,
    /// The TMR variant fuzzed under (`standard`, `p1`, …).
    pub variant: String,
    /// Mapped LUT count of the implemented netlist (0 when the flow failed
    /// before synthesis).
    pub luts: usize,
    /// Grid of the auto-sized device.
    pub grid: (u16, u16),
    /// Every oracle violation found (empty = the seed passed).
    pub failures: Vec<OracleFailure>,
}

impl SeedReport {
    /// `true` when every oracle held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for SeedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {:>5} variant {:<8} {:>4} luts on {}x{}: ",
            self.seed, self.variant, self.luts, self.grid.0, self.grid.1
        )?;
        if self.passed() {
            write!(f, "ok")
        } else {
            write!(
                f,
                "{} FAILURE(S): {}",
                self.failures.len(),
                self.failures[0]
            )
        }
    }
}

/// Fuzzes one seed: generates the design (knobs sampled from the same
/// seed), implements it under [`variant_for_seed`] on the
/// [`arch_for_seed`] base architecture (overriding `options.params`), and
/// checks every oracle under all three fault models. The placement and
/// sampling seeds are tied to the fuzz seed, so each seed also explores a
/// different PnR and fault sample point.
pub fn run_seed(seed: u64, options: &FuzzOptions) -> SeedReport {
    let config = GeneratorConfig::sampled(seed);
    let design = generate(seed, &config);
    let (variant, tmr) = variant_for_seed(seed);
    let mut options = options.clone();
    options.params = arch_for_seed(seed);
    let mut report = SeedReport {
        seed,
        config,
        variant,
        luts: 0,
        grid: (0, 0),
        failures: Vec::new(),
    };
    let failures = check_design(
        &design,
        tmr.as_ref(),
        seed,
        seed,
        &options,
        Some(&mut report),
    );
    report.failures = failures;
    report
}

/// Implements `design` under `tmr` on an auto-sized device and runs every
/// oracle under all three fault models. Returns every violation found
/// (empty when the design passes). `pnr_seed` seeds placement and
/// `sampling_seed` the fault sampler, so reruns are exact.
pub fn check_design(
    design: &Design,
    tmr: Option<&TmrConfig>,
    pnr_seed: u64,
    sampling_seed: u64,
    options: &FuzzOptions,
    report: Option<&mut SeedReport>,
) -> Vec<OracleFailure> {
    let mut failures = Vec::new();

    let implemented = implement(design, tmr, pnr_seed, options);
    let (device, routed, analysis) = match implemented {
        Ok(parts) => parts,
        Err(error) => {
            failures.push(OracleFailure::Flow(error.to_string()));
            return failures;
        }
    };
    if let Some(report) = report {
        report.luts = routed.netlist().stats().luts;
        report.grid = (device.cols(), device.rows());
    }

    for model in fault_models() {
        let base = CampaignBuilder::new()
            .faults(options.faults)
            .cycles(options.cycles)
            .fault_model(model)
            .sampling_seed(sampling_seed)
            .sequential();
        let run = |builder: CampaignBuilder| -> Result<CampaignResult, Error> {
            Ok(builder.run(&device, routed.design())?)
        };

        let oracle = match run(base.clone().backend(SimBackend::Interpreter)) {
            Ok(result) => result,
            Err(error) => {
                failures.push(OracleFailure::Flow(error.to_string()));
                continue;
            }
        };

        // Oracle 1: compiled backends are byte-identical to the interpreter.
        for (backend, name) in [
            (SimBackend::Compiled, "compiled"),
            (SimBackend::CompiledFull, "compiled-full"),
        ] {
            match run(base.clone().backend(backend)) {
                Ok(result) => {
                    if result != oracle {
                        failures.push(OracleFailure::CompiledDivergence {
                            model,
                            backend: name,
                            detail: diff_results(&result, &oracle),
                        });
                    }
                }
                Err(error) => failures.push(OracleFailure::Flow(error.to_string())),
            }
        }

        // Oracle 3: the sharded merge is byte-identical to the sequential
        // run (compiled backend, where batching interacts with sharding).
        match run(base
            .clone()
            .backend(SimBackend::Compiled)
            .shards(options.shards))
        {
            Ok(result) => {
                if result != oracle {
                    failures.push(OracleFailure::ShardMergeDivergence {
                        model,
                        shards: options.shards,
                        detail: diff_results(&result, &oracle),
                    });
                }
            }
            Err(error) => failures.push(OracleFailure::Flow(error.to_string())),
        }

        // Oracle 2a: every dynamic wrong answer comes from a fault the
        // static analysis keeps observable.
        for outcome in oracle.outcomes.iter().filter(|o| o.wrong_answer) {
            if !analysis.fault_possibly_observable(&outcome.bits) {
                failures.push(OracleFailure::StaticUnsound {
                    model,
                    detail: format!(
                        "bits {:?} caused a wrong answer but are statically {}",
                        outcome.bits,
                        analysis.verdict_for_fault(&outcome.bits)
                    ),
                });
            }
        }

        // Oracle 2b: dynamic domain crossings are statically crossing —
        // for every model, judging multi-bit clusters as a whole.
        for outcome in oracle.outcomes.iter().filter(|o| o.crosses_domains) {
            let verdict = analysis.verdict_for_fault(&outcome.bits);
            if !matches!(verdict, Verdict::DomainCrossing { .. }) {
                failures.push(OracleFailure::StaticUnsound {
                    model,
                    detail: format!(
                        "bits {:?} cross domains dynamically but are {verdict} statically",
                        outcome.bits
                    ),
                });
            }
        }

        // Oracle 2c: pruning with the static analysis never changes any
        // outcome and never simulates more.
        match run(base
            .clone()
            .prune_with(&analysis)
            .backend(SimBackend::Interpreter))
        {
            Ok(pruned) => {
                if pruned.outcomes != oracle.outcomes {
                    failures.push(OracleFailure::PruneDivergence {
                        model,
                        detail: diff_results(&pruned, &oracle),
                    });
                } else if pruned.simulated > oracle.simulated {
                    failures.push(OracleFailure::PruneDivergence {
                        model,
                        detail: format!(
                            "pruned run simulated more faults ({} vs {})",
                            pruned.simulated, oracle.simulated
                        ),
                    });
                }
            }
            Err(error) => failures.push(OracleFailure::Flow(error.to_string())),
        }
    }

    failures
}

/// Synthesizes, auto-sizes, places, routes and statically analyzes one
/// design variant.
fn implement(
    design: &Design,
    tmr: Option<&TmrConfig>,
    pnr_seed: u64,
    options: &FuzzOptions,
) -> Result<(Device, Arc<crate::flow::Routed>, Arc<StaticAnalysis>), Error> {
    // Synthesize once on a throwaway flow to size the device, then rebuild
    // the real flow against the chosen device. The artifact cache makes the
    // second synthesis a lookup, not a recompute.
    let probe = Device::new(options.params);
    let mut builder = FlowBuilder::new(&probe, design).seed(pnr_seed);
    if let Some(tmr) = tmr {
        builder = builder.tmr(tmr.clone());
    }
    let probe_flow = builder.build();
    let synthesized = probe_flow.synthesized()?;
    let device = device_for(
        options.params,
        &[synthesized.netlist()],
        options.max_utilisation,
    );

    let mut builder = FlowBuilder::new(&device, design)
        .seed(pnr_seed)
        .cache(probe_flow.cache().clone());
    if let Some(tmr) = tmr {
        builder = builder.tmr(tmr.clone());
    }
    let flow = builder.build();
    let routed = flow.routed()?;
    let analyzed = flow.analyzed()?;
    let analysis = Arc::new(analyzed.analysis().clone());
    Ok((device, routed, analysis))
}

/// Summarizes the first difference between two campaign results.
fn diff_results(got: &CampaignResult, expected: &CampaignResult) -> String {
    if got.fault_list_size != expected.fault_list_size {
        return format!(
            "fault list size {} vs {}",
            got.fault_list_size, expected.fault_list_size
        );
    }
    if got.simulated != expected.simulated {
        return format!("simulated {} vs {}", got.simulated, expected.simulated);
    }
    if got.outcomes.len() != expected.outcomes.len() {
        return format!(
            "outcome count {} vs {}",
            got.outcomes.len(),
            expected.outcomes.len()
        );
    }
    for (index, (a, b)) in got
        .outcomes
        .iter()
        .zip(expected.outcomes.iter())
        .enumerate()
    {
        if a != b {
            return format!("outcome {index}: got {a:?}, expected {b:?}");
        }
    }
    "results compare unequal but no field differs (equality contract drift)".to_string()
}

/// A self-contained, replayable fuzzing failure: everything needed to rerun
/// the oracles on the exact design, variant and seeds, in a line-oriented
/// text form (see `tests/fuzz_regressions/`).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionCase {
    /// Free-form provenance notes (emitted as `#` comments).
    pub comment: Vec<String>,
    /// Variant name (`standard`, `p1`, `p2`, `p3`, `p3_nv`).
    pub variant: String,
    /// The failure kind ([`OracleFailure::kind`]) this case reproduced when
    /// it was recorded — the invariant shrinking preserved.
    pub kind: String,
    /// Faults per campaign.
    pub faults: usize,
    /// Cycles per fault.
    pub cycles: usize,
    /// Shards of the sharded-merge oracle.
    pub shards: usize,
    /// Placement seed.
    pub pnr_seed: u64,
    /// Fault-sampling seed.
    pub sampling_seed: u64,
    /// Base architecture handed to the auto-sizer when the failure was
    /// recorded (lean presets reproduce auto-sizing failures).
    pub params: DeviceParams,
    /// The (shrunken) word-level design.
    pub spec: DesignSpec,
}

impl RegressionCase {
    /// Builds the case capturing one failing seed.
    pub fn from_seed(seed: u64, failure_kind: &str, options: &FuzzOptions) -> Self {
        let config = GeneratorConfig::sampled(seed);
        let design = generate(seed, &config);
        let (variant, _) = variant_for_seed(seed);
        Self {
            comment: vec![format!("found by tmr-fuzz seed {seed} ({})", failure_kind)],
            variant,
            kind: failure_kind.to_string(),
            faults: options.faults,
            cycles: options.cycles,
            shards: options.shards,
            pnr_seed: seed,
            sampling_seed: seed,
            params: arch_for_seed(seed),
            spec: DesignSpec::from_design(&design)
                .expect("generated designs have unique signal names"),
        }
    }

    /// The fuzzing budget this case replays under.
    pub fn options(&self) -> FuzzOptions {
        FuzzOptions {
            faults: self.faults,
            cycles: self.cycles,
            shards: self.shards,
            params: self.params,
            ..FuzzOptions::default()
        }
    }

    /// Replays the case: rebuilds the design and runs every oracle.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the design cannot be rebuilt or the
    /// variant name is unknown.
    pub fn check(&self) -> Result<Vec<OracleFailure>, SpecError> {
        let design = self.spec.to_design()?;
        let tmr = variant_config(&self.variant)
            .ok_or_else(|| SpecError::Unsupported(format!("unknown variant `{}`", self.variant)))?;
        Ok(check_design(
            &design,
            tmr.as_ref(),
            self.pnr_seed,
            self.sampling_seed,
            &self.options(),
            None,
        ))
    }

    /// Parses the text form.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] with the offending line.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut comment = Vec::new();
        let mut variant = String::from("standard");
        let mut kind = String::from("flow");
        let mut faults = 120usize;
        let mut cycles = 8usize;
        let mut shards = 4usize;
        let mut pnr_seed = 1u64;
        let mut sampling_seed = 1u64;
        let mut params = DeviceParams::small(6, 6);
        let mut spec_start = None;
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let trimmed = raw.trim();
            let error = |message: &str| SpecError::Parse {
                line,
                message: message.to_string(),
            };
            if trimmed.starts_with("design ") {
                spec_start = Some(index);
                break;
            }
            if trimmed.is_empty() {
                continue;
            }
            if let Some(note) = trimmed.strip_prefix('#') {
                comment.push(note.trim().to_string());
                continue;
            }
            let (key, value) = trimmed
                .split_once(' ')
                .ok_or_else(|| error("expected `key value`"))?;
            match key {
                "variant" => variant = value.trim().to_string(),
                "kind" => kind = value.trim().to_string(),
                "faults" => faults = value.trim().parse().map_err(|_| error("bad faults"))?,
                "cycles" => cycles = value.trim().parse().map_err(|_| error("bad cycles"))?,
                "shards" => shards = value.trim().parse().map_err(|_| error("bad shards"))?,
                "pnr_seed" => pnr_seed = value.trim().parse().map_err(|_| error("bad pnr_seed"))?,
                "sampling_seed" => {
                    sampling_seed = value
                        .trim()
                        .parse()
                        .map_err(|_| error("bad sampling_seed"))?
                }
                "arch" => {
                    let fields: Vec<u32> = value
                        .split_whitespace()
                        .map(|f| f.parse())
                        .collect::<Result<_, _>>()
                        .map_err(|_| error("bad arch field"))?;
                    let [cols, rows, slices, tracks, out, inp, sb_same, sb_neighbor, iobs, frame] =
                        fields.as_slice()
                    else {
                        return Err(error("arch needs 10 fields"));
                    };
                    params = DeviceParams {
                        cols: *cols as u16,
                        rows: *rows as u16,
                        slices_per_tile: *slices as u8,
                        tracks: *tracks as u16,
                        out_pin_candidates: *out as u16,
                        in_pin_candidates: *inp as u16,
                        sb_same_tile: *sb_same as u16,
                        sb_neighbor: *sb_neighbor as u16,
                        iobs_per_perimeter_tile: *iobs as u8,
                        frame_bits: *frame,
                    };
                }
                _ => return Err(error("unknown header key")),
            }
        }
        let start = spec_start.ok_or(SpecError::Parse {
            line: text.lines().count(),
            message: "missing `design` section".to_string(),
        })?;
        let spec_text: String = text.lines().skip(start).collect::<Vec<_>>().join("\n");
        Ok(Self {
            comment,
            variant,
            kind,
            faults,
            cycles,
            shards,
            pnr_seed,
            sampling_seed,
            params,
            spec: DesignSpec::parse(&spec_text)?,
        })
    }
}

impl fmt::Display for RegressionCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for note in &self.comment {
            writeln!(f, "# {note}")?;
        }
        writeln!(f, "variant {}", self.variant)?;
        writeln!(f, "kind {}", self.kind)?;
        writeln!(f, "faults {}", self.faults)?;
        writeln!(f, "cycles {}", self.cycles)?;
        writeln!(f, "shards {}", self.shards)?;
        writeln!(f, "pnr_seed {}", self.pnr_seed)?;
        writeln!(f, "sampling_seed {}", self.sampling_seed)?;
        let p = &self.params;
        writeln!(
            f,
            "arch {} {} {} {} {} {} {} {} {} {}",
            p.cols,
            p.rows,
            p.slices_per_tile,
            p.tracks,
            p.out_pin_candidates,
            p.in_pin_candidates,
            p.sb_same_tile,
            p.sb_neighbor,
            p.iobs_per_perimeter_tile,
            p.frame_bits
        )?;
        writeln!(f)?;
        write!(f, "{}", self.spec)
    }
}

/// Delta-debugs a failing case down to a minimal design that still fails
/// with the same [`OracleFailure::kind`]. Every candidate re-runs the full
/// flow and all oracles, so shrinking a case costs one flow per attempted
/// reduction; the returned case carries the shrunken design and the same
/// replay parameters.
pub fn shrink_case(case: &RegressionCase) -> RegressionCase {
    let target = case.kind.clone();
    let tmr = variant_config(&case.variant).flatten();
    let options = case.options();
    let reproduces = |spec: &DesignSpec| -> bool {
        let Ok(design) = spec.to_design() else {
            return false;
        };
        check_design(
            &design,
            tmr.as_ref(),
            case.pnr_seed,
            case.sampling_seed,
            &options,
            None,
        )
        .iter()
        .any(|failure| failure.kind() == target)
    };
    let spec = shrink(&case.spec, reproduces);
    let mut shrunk = case.clone();
    shrunk.comment.push(format!(
        "shrunk from {} to {} rows",
        case.spec.rows.len(),
        spec.rows.len()
    ));
    shrunk.spec = spec;
    shrunk
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_case_text_round_trips() {
        let options = FuzzOptions::default();
        let case = RegressionCase::from_seed(3, "compiled-divergence", &options);
        let text = case.to_string();
        let parsed = RegressionCase::parse(&text).expect("case parses");
        assert_eq!(case, parsed);
    }

    #[test]
    fn variant_rotation_covers_all_presets() {
        let names: Vec<String> = (0..5).map(|s| variant_for_seed(s).0).collect();
        assert_eq!(names, ["standard", "p1", "p2", "p3", "p3_nv"]);
        for name in names {
            assert!(variant_config(&name).is_some());
        }
        assert!(variant_config("bogus").is_none());
    }
}
