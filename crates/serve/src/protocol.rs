//! The NDJSON wire protocol of the campaign service: requests, job
//! specifications and streamed events.
//!
//! Every request and every event is one JSON object per line. Requests are
//! tagged by a `"cmd"` field, events by an `"event"` field; unknown fields
//! are ignored so the protocol can grow. The shared dependency-free JSON
//! module of `tmr-core` ([`tmr_core::json`]) does all parsing and
//! serialization, and its [`validate`](tmr_core::json::validate) function is
//! what `tmr-submit --validate` checks received lines with.

use tmr_core::json::Json;
use tmr_core::TmrConfig;
use tmr_fpga::arch::{Device, MbuPattern};
use tmr_fpga::faultsim::{CampaignBuilder, EarlyStop, FaultModel};
use tmr_fpga::synth::Design;

/// A job specification: which design variant to implement and what campaign
/// to bombard it with. All fields beyond `design` have service defaults, so
/// `{"cmd":"submit","spec":{"design":"counter:4"}}` is a complete request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Design registry entry: `fir`, `fir:paper`, `counter:<width>`,
    /// `accumulator:<width>` or `moving_sum:<taps>,<in_width>,<sum_width>`.
    pub design: String,
    /// TMR variant: `standard` (unprotected), `p1`, `p2`, `p3` or `p3_nv`.
    pub variant: String,
    /// Fault budget: how many faults the campaign injects (before any early
    /// stop).
    pub faults: usize,
    /// Clock cycles of stimulus per fault.
    pub cycles: usize,
    /// Fault model: `single`, `mbu:2-in-frame`, `mbu:2-across-frames`,
    /// `mbu:2x2` or `accumulate:<upsets-per-scrub>`.
    pub model: String,
    /// Faults per scheduling turn: the job yields its worker to other jobs
    /// at every multiple of this many faults, and its resumable prefix is
    /// persisted at the same boundaries.
    pub batch: usize,
    /// Placement seed.
    pub seed: u64,
    /// Stimulus seed (`None` = the campaign default).
    pub stimulus_seed: Option<u64>,
    /// Fault-sampling seed (`None` = the campaign default).
    pub sampling_seed: Option<u64>,
    /// Early-stop rule: halt once the 95 % Agresti–Coull confidence
    /// interval of the wrong-answer rate is within ± this half-width.
    pub ci: Option<f64>,
    /// Device grid `(cols, rows)`; `None` auto-sizes an XC2S200E-like
    /// architecture to the synthesized netlist.
    pub device: Option<(u16, u16)>,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            design: String::new(),
            variant: "standard".to_string(),
            faults: 200,
            cycles: 8,
            model: "single".to_string(),
            batch: 64,
            seed: 1,
            stimulus_seed: None,
            sampling_seed: None,
            ci: None,
            device: None,
        }
    }
}

impl JobSpec {
    /// A spec for `design` with every other field at its default.
    pub fn new(design: impl Into<String>) -> Self {
        Self {
            design: design.into(),
            ..Self::default()
        }
    }

    /// Parses a spec from its JSON object form. Missing fields take their
    /// defaults; the mandatory `design` field and all present fields must be
    /// well-formed.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let mut spec = Self::new(
            json.get("design")
                .and_then(Json::as_str)
                .ok_or("spec.design: required string")?,
        );
        if let Some(value) = json.get("variant") {
            spec.variant = value
                .as_str()
                .ok_or("spec.variant: expected string")?
                .to_string();
        }
        if let Some(value) = json.get("faults") {
            spec.faults = value.as_u64().ok_or("spec.faults: expected integer")? as usize;
        }
        if let Some(value) = json.get("cycles") {
            spec.cycles = value.as_u64().ok_or("spec.cycles: expected integer")? as usize;
        }
        if let Some(value) = json.get("model") {
            spec.model = value
                .as_str()
                .ok_or("spec.model: expected string")?
                .to_string();
        }
        if let Some(value) = json.get("batch") {
            spec.batch = (value.as_u64().ok_or("spec.batch: expected integer")? as usize).max(1);
        }
        if let Some(value) = json.get("seed") {
            spec.seed = value.as_u64().ok_or("spec.seed: expected integer")?;
        }
        if let Some(value) = json.get("stimulus_seed") {
            spec.stimulus_seed = Some(
                value
                    .as_u64()
                    .ok_or("spec.stimulus_seed: expected integer")?,
            );
        }
        if let Some(value) = json.get("sampling_seed") {
            spec.sampling_seed = Some(
                value
                    .as_u64()
                    .ok_or("spec.sampling_seed: expected integer")?,
            );
        }
        if let Some(value) = json.get("ci") {
            spec.ci = Some(value.as_f64().ok_or("spec.ci: expected number")?);
        }
        if let Some(value) = json.get("device") {
            let cols = value
                .get("cols")
                .and_then(Json::as_u64)
                .ok_or("spec.device.cols: expected integer")?;
            let rows = value
                .get("rows")
                .and_then(Json::as_u64)
                .ok_or("spec.device.rows: expected integer")?;
            spec.device = Some((cols as u16, rows as u16));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec to its JSON object form (defaults included, so a
    /// round-trip is field-exact).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("design", Json::str(&self.design)),
            ("variant", Json::str(&self.variant)),
            ("faults", Json::from(self.faults)),
            ("cycles", Json::from(self.cycles)),
            ("model", Json::str(&self.model)),
            ("batch", Json::from(self.batch)),
            ("seed", Json::from(self.seed)),
        ];
        if let Some(seed) = self.stimulus_seed {
            pairs.push(("stimulus_seed", Json::from(seed)));
        }
        if let Some(seed) = self.sampling_seed {
            pairs.push(("sampling_seed", Json::from(seed)));
        }
        if let Some(ci) = self.ci {
            pairs.push(("ci", Json::from(ci)));
        }
        if let Some((cols, rows)) = self.device {
            pairs.push((
                "device",
                Json::object([
                    ("cols", Json::from(u64::from(cols))),
                    ("rows", Json::from(u64::from(rows))),
                ]),
            ));
        }
        Json::object(pairs)
    }

    /// Checks that the design, variant and model fields resolve.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        self.design_instance()?;
        self.tmr_config()?;
        self.fault_model()?;
        if self.faults == 0 {
            return Err("spec.faults: must be at least 1".to_string());
        }
        if self.cycles == 0 {
            return Err("spec.cycles: must be at least 1".to_string());
        }
        Ok(())
    }

    /// Instantiates the design named by `design` from the registry.
    ///
    /// # Errors
    ///
    /// Returns a message listing the known designs on an unknown name.
    pub fn design_instance(&self) -> Result<Design, String> {
        let (head, args) = match self.design.split_once(':') {
            Some((head, args)) => (head, Some(args)),
            None => (self.design.as_str(), None),
        };
        let width = |args: Option<&str>| -> Result<u8, String> {
            args.ok_or_else(|| format!("spec.design: {head} needs a width, e.g. {head}:4"))?
                .parse::<u8>()
                .map_err(|_| format!("spec.design: bad {head} width"))
        };
        match head {
            "fir" => match args {
                None => Ok(tmr_fpga::designs::FirFilter::small_filter().to_design()),
                Some("paper") => Ok(tmr_fpga::designs::FirFilter::paper_filter().to_design()),
                Some(other) => Err(format!("spec.design: unknown fir variant {other:?}")),
            },
            "counter" => Ok(tmr_fpga::designs::counter(width(args)?)),
            "accumulator" => Ok(tmr_fpga::designs::accumulator(width(args)?)),
            "moving_sum" => {
                let args = args.ok_or("spec.design: moving_sum needs taps,in_width,sum_width")?;
                let parts: Vec<&str> = args.split(',').collect();
                let [taps, input, sum] = parts.as_slice() else {
                    return Err("spec.design: moving_sum needs taps,in_width,sum_width".to_string());
                };
                let taps = taps
                    .parse::<usize>()
                    .map_err(|_| "spec.design: bad moving_sum taps")?;
                let input = input
                    .parse::<u8>()
                    .map_err(|_| "spec.design: bad moving_sum input width")?;
                let sum = sum
                    .parse::<u8>()
                    .map_err(|_| "spec.design: bad moving_sum sum width")?;
                Ok(tmr_fpga::designs::moving_sum(taps, input, sum))
            }
            other => Err(format!(
                "spec.design: unknown design {other:?} (known: fir, fir:paper, counter:<w>, \
                 accumulator:<w>, moving_sum:<taps>,<in>,<sum>)"
            )),
        }
    }

    /// Resolves the TMR variant (`None` = the unprotected design).
    ///
    /// # Errors
    ///
    /// Returns a message listing the known variants on an unknown name.
    pub fn tmr_config(&self) -> Result<Option<TmrConfig>, String> {
        match self.variant.as_str() {
            "standard" => Ok(None),
            "p1" => Ok(Some(TmrConfig::paper_p1())),
            "p2" => Ok(Some(TmrConfig::paper_p2())),
            "p3" => Ok(Some(TmrConfig::paper_p3())),
            "p3_nv" => Ok(Some(TmrConfig::paper_p3_nv())),
            other => Err(format!(
                "spec.variant: unknown variant {other:?} (known: standard, p1, p2, p3, p3_nv)"
            )),
        }
    }

    /// Resolves the fault model string.
    ///
    /// # Errors
    ///
    /// Returns a message listing the known models on an unknown name.
    pub fn fault_model(&self) -> Result<FaultModel, String> {
        match self.model.split_once(':') {
            None if self.model == "single" => Ok(FaultModel::SingleBit),
            Some(("mbu", pattern)) => {
                let pattern = match pattern {
                    "1" => MbuPattern::Single,
                    "2-in-frame" => MbuPattern::PairInFrame,
                    "2-across-frames" => MbuPattern::PairAcrossFrames,
                    "2x2" => MbuPattern::Tile2x2,
                    other => {
                        return Err(format!(
                            "spec.model: unknown MBU pattern {other:?} (known: 1, 2-in-frame, \
                             2-across-frames, 2x2)"
                        ))
                    }
                };
                Ok(FaultModel::Mbu { pattern })
            }
            Some(("accumulate", upsets)) => {
                let upsets_per_scrub = upsets
                    .parse::<usize>()
                    .map_err(|_| "spec.model: bad accumulate upset count")?;
                Ok(FaultModel::Accumulate { upsets_per_scrub })
            }
            _ => Err(format!(
                "spec.model: unknown model {:?} (known: single, mbu:<pattern>, accumulate:<k>)",
                self.model
            )),
        }
    }

    /// The explicit device, when the spec pins one.
    pub fn device_instance(&self) -> Option<Device> {
        self.device.map(|(cols, rows)| Device::small(cols, rows))
    }

    /// Builds the campaign configuration of this spec (batch size included,
    /// so the campaign fingerprint — and with it the store key of the
    /// result and the resumable prefix — is fully determined).
    ///
    /// # Errors
    ///
    /// Propagates fault-model resolution errors.
    pub fn campaign(&self) -> Result<CampaignBuilder, String> {
        let mut campaign = CampaignBuilder::new()
            .faults(self.faults)
            .cycles(self.cycles)
            .fault_model(self.fault_model()?)
            .batch_size(self.batch);
        if let Some(seed) = self.stimulus_seed {
            campaign = campaign.stimulus_seed(seed);
        }
        if let Some(seed) = self.sampling_seed {
            campaign = campaign.sampling_seed(seed);
        }
        if let Some(ci) = self.ci {
            campaign = campaign.early_stop(EarlyStop::at_half_width(ci));
        }
        Ok(campaign)
    }
}

/// A client request: one NDJSON line, tagged by `"cmd"`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job. The client may pick the id; the daemon assigns one
    /// otherwise.
    Submit {
        /// Client-chosen job id.
        id: Option<String>,
        /// What to run.
        spec: JobSpec,
    },
    /// Park a queued/running job after its current batch.
    Pause {
        /// The job to pause.
        id: String,
    },
    /// Re-queue a paused job; it continues from its persisted prefix.
    Resume {
        /// The job to resume.
        id: String,
    },
    /// Report the state of every job of this service.
    Status,
    /// Stop the daemon: running batches finish, prefixes are persisted, the
    /// process exits. Interrupted jobs resume on the next daemon start.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let json = tmr_core::json::parse(line)?;
        let cmd = json
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request: missing \"cmd\" field")?;
        match cmd {
            "submit" => {
                let id = json
                    .get("id")
                    .map(|id| {
                        id.as_str()
                            .map(str::to_string)
                            .ok_or("request.id: expected string")
                    })
                    .transpose()?;
                let spec = json.get("spec").ok_or("submit: missing \"spec\" object")?;
                Ok(Request::Submit {
                    id,
                    spec: JobSpec::from_json(spec)?,
                })
            }
            "pause" | "resume" => {
                let id = json
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("request: missing \"id\" field")?
                    .to_string();
                Ok(if cmd == "pause" {
                    Request::Pause { id }
                } else {
                    Request::Resume { id }
                })
            }
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("request: unknown cmd {other:?}")),
        }
    }

    /// Serializes the request to its one-line JSON form.
    pub fn render(&self) -> String {
        let json = match self {
            Request::Submit { id, spec } => {
                let mut pairs = vec![("cmd", Json::str("submit"))];
                if let Some(id) = id {
                    pairs.push(("id", Json::str(id)));
                }
                pairs.push(("spec", spec.to_json()));
                Json::object(pairs)
            }
            Request::Pause { id } => {
                Json::object([("cmd", Json::str("pause")), ("id", Json::str(id))])
            }
            Request::Resume { id } => {
                Json::object([("cmd", Json::str("resume")), ("id", Json::str(id))])
            }
            Request::Status => Json::object([("cmd", Json::str("status"))]),
            Request::Shutdown => Json::object([("cmd", Json::str("shutdown"))]),
        };
        json.render()
    }
}

/// Where a completed result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultSource {
    /// Freshly simulated (possibly after resuming a persisted prefix).
    Run,
    /// Served from the in-process result table — zero simulations.
    Memory,
    /// Served from the disk store — zero simulations.
    Store,
}

impl ResultSource {
    fn as_str(self) -> &'static str {
        match self {
            ResultSource::Run => "run",
            ResultSource::Memory => "memory",
            ResultSource::Store => "store",
        }
    }
}

/// One job's row in a [`Event::Status`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: String,
    /// Lifecycle state (`queued`, `running`, `paused`, `done`, `failed`).
    pub state: String,
    /// Faults injected so far.
    pub injected: usize,
    /// The fault budget.
    pub planned: usize,
    /// Wrong answers so far.
    pub wrong_answers: usize,
    /// Scheduling turns taken so far.
    pub batches: usize,
}

/// A streamed daemon event: one NDJSON line, tagged by `"event"`.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The submit parsed and validated; the job is queued.
    Accepted {
        /// The job id (daemon-assigned when the submit had none).
        id: String,
    },
    /// A worker picked the job up for its first turn.
    Started {
        /// The job id.
        id: String,
        /// The campaign fingerprint — the store key of the result and of
        /// the resumable prefix.
        fingerprint: u64,
        /// The fault budget.
        planned: usize,
        /// Prefix length recovered from the store (0 = fresh start).
        resumed: usize,
    },
    /// One scheduling turn (one batch) finished.
    Progress {
        /// The job id.
        id: String,
        /// Faults injected so far.
        injected: usize,
        /// The fault budget.
        planned: usize,
        /// Wrong answers so far.
        wrong_answers: usize,
        /// Simulations actually run so far.
        simulated: usize,
        /// Agresti–Coull 95 % CI half-width of the wrong-answer rate.
        ci: f64,
        /// Scheduling turns taken so far.
        batches: usize,
    },
    /// The job was paused and parked.
    Paused {
        /// The job id.
        id: String,
        /// Faults injected when it parked.
        injected: usize,
    },
    /// The job finished.
    Result {
        /// The job id.
        id: String,
        /// The design name of the simulated netlist.
        design: String,
        /// Faults injected.
        injected: usize,
        /// Wrong answers observed.
        wrong_answers: usize,
        /// Wrong answers as a percentage of injections.
        rate_percent: f64,
        /// Simulations actually run.
        simulated: usize,
        /// Whether the early-stop rule fired before the budget.
        stopped_early: bool,
        /// Where the result came from.
        served_from: ResultSource,
        /// Scheduling turns this service spent on the job (0 when served
        /// from memory or store).
        batches: usize,
    },
    /// The job (or a request) failed.
    Error {
        /// The job id, when the error belongs to one.
        id: Option<String>,
        /// What went wrong.
        message: String,
    },
    /// A [`Request::Status`] report.
    Status {
        /// Every job of the service, in submission order.
        jobs: Vec<JobStatus>,
    },
    /// The daemon is shutting down.
    Shutdown,
}

impl Event {
    /// The job this event belongs to (`None` for service-level events).
    pub fn job_id(&self) -> Option<&str> {
        match self {
            Event::Accepted { id }
            | Event::Started { id, .. }
            | Event::Progress { id, .. }
            | Event::Paused { id, .. }
            | Event::Result { id, .. } => Some(id),
            Event::Error { id, .. } => id.as_deref(),
            Event::Status { .. } | Event::Shutdown => None,
        }
    }

    /// Serializes the event to its one-line JSON form.
    pub fn render(&self) -> String {
        let json = match self {
            Event::Accepted { id } => {
                Json::object([("event", Json::str("accepted")), ("id", Json::str(id))])
            }
            Event::Started {
                id,
                fingerprint,
                planned,
                resumed,
            } => Json::object([
                ("event", Json::str("started")),
                ("id", Json::str(id)),
                ("fingerprint", Json::str(format!("{fingerprint:016x}"))),
                ("planned", Json::from(*planned)),
                ("resumed", Json::from(*resumed)),
            ]),
            Event::Progress {
                id,
                injected,
                planned,
                wrong_answers,
                simulated,
                ci,
                batches,
            } => Json::object([
                ("event", Json::str("progress")),
                ("id", Json::str(id)),
                ("injected", Json::from(*injected)),
                ("planned", Json::from(*planned)),
                ("wrong_answers", Json::from(*wrong_answers)),
                ("simulated", Json::from(*simulated)),
                ("ci", Json::from(*ci)),
                ("batches", Json::from(*batches)),
            ]),
            Event::Paused { id, injected } => Json::object([
                ("event", Json::str("paused")),
                ("id", Json::str(id)),
                ("injected", Json::from(*injected)),
            ]),
            Event::Result {
                id,
                design,
                injected,
                wrong_answers,
                rate_percent,
                simulated,
                stopped_early,
                served_from,
                batches,
            } => Json::object([
                ("event", Json::str("result")),
                ("id", Json::str(id)),
                ("design", Json::str(design)),
                ("injected", Json::from(*injected)),
                ("wrong_answers", Json::from(*wrong_answers)),
                ("rate_percent", Json::from(*rate_percent)),
                ("simulated", Json::from(*simulated)),
                ("stopped_early", Json::from(*stopped_early)),
                ("served_from", Json::str(served_from.as_str())),
                ("batches", Json::from(*batches)),
            ]),
            Event::Error { id, message } => Json::object([
                ("event", Json::str("error")),
                ("id", id.as_deref().map(Json::str).unwrap_or(Json::Null)),
                ("message", Json::str(message)),
            ]),
            Event::Status { jobs } => Json::object([
                ("event", Json::str("status")),
                (
                    "jobs",
                    Json::array(jobs.iter().map(|job| {
                        Json::object([
                            ("id", Json::str(&job.id)),
                            ("state", Json::str(&job.state)),
                            ("injected", Json::from(job.injected)),
                            ("planned", Json::from(job.planned)),
                            ("wrong_answers", Json::from(job.wrong_answers)),
                            ("batches", Json::from(job.batches)),
                        ])
                    })),
                ),
            ]),
            Event::Shutdown => Json::object([("event", Json::str("shutdown"))]),
        };
        json.render()
    }

    /// Parses one event line (the client half of the protocol).
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let json = tmr_core::json::parse(line)?;
        let tag = json
            .get("event")
            .and_then(Json::as_str)
            .ok_or("event: missing \"event\" field")?;
        let id = |field: &str| -> Result<String, String> {
            json.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event: missing {field:?} field"))
        };
        let num = |field: &str| -> Result<usize, String> {
            json.get(field)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("event: missing {field:?} field"))
        };
        let float = |field: &str| -> Result<f64, String> {
            json.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event: missing {field:?} field"))
        };
        match tag {
            "accepted" => Ok(Event::Accepted { id: id("id")? }),
            "started" => Ok(Event::Started {
                id: id("id")?,
                fingerprint: u64::from_str_radix(&id("fingerprint")?, 16)
                    .map_err(|_| "event.fingerprint: expected hex")?,
                planned: num("planned")?,
                resumed: num("resumed")?,
            }),
            "progress" => Ok(Event::Progress {
                id: id("id")?,
                injected: num("injected")?,
                planned: num("planned")?,
                wrong_answers: num("wrong_answers")?,
                simulated: num("simulated")?,
                ci: float("ci")?,
                batches: num("batches")?,
            }),
            "paused" => Ok(Event::Paused {
                id: id("id")?,
                injected: num("injected")?,
            }),
            "result" => Ok(Event::Result {
                id: id("id")?,
                design: id("design")?,
                injected: num("injected")?,
                wrong_answers: num("wrong_answers")?,
                rate_percent: float("rate_percent")?,
                simulated: num("simulated")?,
                stopped_early: json
                    .get("stopped_early")
                    .and_then(Json::as_bool)
                    .ok_or("event: missing \"stopped_early\" field")?,
                served_from: match id("served_from")?.as_str() {
                    "run" => ResultSource::Run,
                    "memory" => ResultSource::Memory,
                    "store" => ResultSource::Store,
                    other => return Err(format!("event.served_from: unknown source {other:?}")),
                },
                batches: num("batches")?,
            }),
            "error" => Ok(Event::Error {
                id: json.get("id").and_then(Json::as_str).map(str::to_string),
                message: id("message")?,
            }),
            "status" => {
                let jobs = json
                    .get("jobs")
                    .and_then(Json::as_array)
                    .ok_or("event: missing \"jobs\" array")?;
                let jobs = jobs
                    .iter()
                    .map(|job| {
                        Ok(JobStatus {
                            id: job
                                .get("id")
                                .and_then(Json::as_str)
                                .ok_or("status job: missing id")?
                                .to_string(),
                            state: job
                                .get("state")
                                .and_then(Json::as_str)
                                .ok_or("status job: missing state")?
                                .to_string(),
                            injected: job.get("injected").and_then(Json::as_u64).unwrap_or(0)
                                as usize,
                            planned: job.get("planned").and_then(Json::as_u64).unwrap_or(0)
                                as usize,
                            wrong_answers: job
                                .get("wrong_answers")
                                .and_then(Json::as_u64)
                                .unwrap_or(0) as usize,
                            batches: job.get("batches").and_then(Json::as_u64).unwrap_or(0)
                                as usize,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Event::Status { jobs })
            }
            "shutdown" => Ok(Event::Shutdown),
            other => Err(format!("event: unknown event {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Submit {
                id: Some("job-1".to_string()),
                spec: JobSpec {
                    design: "counter:4".to_string(),
                    variant: "p2".to_string(),
                    faults: 120,
                    cycles: 8,
                    model: "mbu:2x2".to_string(),
                    batch: 32,
                    seed: 3,
                    stimulus_seed: Some(11),
                    sampling_seed: Some(5),
                    ci: Some(0.02),
                    device: Some((8, 8)),
                },
            },
            Request::Submit {
                id: None,
                spec: JobSpec::new("fir"),
            },
            Request::Pause {
                id: "a".to_string(),
            },
            Request::Resume {
                id: "a".to_string(),
            },
            Request::Status,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.render();
            tmr_core::json::validate(&line).unwrap();
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn events_round_trip() {
        let events = [
            Event::Accepted {
                id: "j".to_string(),
            },
            Event::Started {
                id: "j".to_string(),
                fingerprint: 0xdead_beef,
                planned: 200,
                resumed: 64,
            },
            Event::Progress {
                id: "j".to_string(),
                injected: 64,
                planned: 200,
                wrong_answers: 3,
                simulated: 40,
                ci: 0.25,
                batches: 1,
            },
            Event::Paused {
                id: "j".to_string(),
                injected: 64,
            },
            Event::Result {
                id: "j".to_string(),
                design: "counter4_tmr".to_string(),
                injected: 200,
                wrong_answers: 3,
                rate_percent: 1.5,
                simulated: 129,
                stopped_early: false,
                served_from: ResultSource::Store,
                batches: 4,
            },
            Event::Error {
                id: None,
                message: "bad request".to_string(),
            },
            Event::Status {
                jobs: vec![JobStatus {
                    id: "j".to_string(),
                    state: "running".to_string(),
                    injected: 64,
                    planned: 200,
                    wrong_answers: 3,
                    batches: 1,
                }],
            },
            Event::Shutdown,
        ];
        for event in events {
            let line = event.render();
            tmr_core::json::validate(&line).unwrap();
            assert_eq!(Event::parse(&line).unwrap(), event, "{line}");
        }
    }

    #[test]
    fn defaults_fill_missing_spec_fields() {
        let spec = JobSpec::from_json(&tmr_core::json::parse(r#"{"design":"counter:4"}"#).unwrap())
            .unwrap();
        assert_eq!(spec, JobSpec::new("counter:4"));
        assert_eq!(spec.variant, "standard");
        assert_eq!(spec.faults, 200);
        assert!(spec.ci.is_none());
    }

    #[test]
    fn bad_specs_are_rejected_with_field_names() {
        let parse = |line: &str| JobSpec::from_json(&tmr_core::json::parse(line).unwrap());
        assert!(parse("{}").unwrap_err().contains("design"));
        assert!(parse(r#"{"design":"warp_core"}"#)
            .unwrap_err()
            .contains("unknown design"));
        assert!(parse(r#"{"design":"counter:4","variant":"p9"}"#)
            .unwrap_err()
            .contains("unknown variant"));
        assert!(parse(r#"{"design":"counter:4","model":"mbu:9x9"}"#)
            .unwrap_err()
            .contains("MBU pattern"));
        assert!(parse(r#"{"design":"counter:4","faults":0}"#)
            .unwrap_err()
            .contains("faults"));
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"cmd":"warp"}"#).is_err());
    }

    #[test]
    fn specs_resolve_registry_entries() {
        assert_eq!(
            JobSpec::new("counter:4").design_instance().unwrap().name(),
            tmr_fpga::designs::counter(4).name()
        );
        assert!(JobSpec::new("moving_sum:3,4,6").design_instance().is_ok());
        assert!(JobSpec::new("fir:paper").design_instance().is_ok());
        let mut spec = JobSpec::new("counter:4");
        spec.model = "accumulate:3".to_string();
        assert_eq!(
            spec.fault_model().unwrap(),
            FaultModel::Accumulate {
                upsets_per_scrub: 3
            }
        );
        spec.variant = "p3_nv".to_string();
        assert_eq!(spec.tmr_config().unwrap().unwrap().label, "p3_nv");
    }
}
