//! NDJSON transport loops wrapping [`CampaignService`]: a stdin/stdout mode
//! for pipelines and tests, and a Unix-domain-socket mode for the
//! `tmr-campaignd` daemon.
//!
//! One request or event per line, JSON-encoded (see [`crate::protocol`]).
//! In socket mode each connection sees only the events of the jobs it
//! submitted, plus its own status/error/shutdown replies; the daemon
//! pre-assigns `conn<N>-job<M>` ids when the client does not pick one, so
//! routing is established *before* the job can emit anything.

use crate::protocol::{Event, Request};
use crate::service::{CampaignService, ServiceConfig};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Serves requests from stdin, events to stdout, until a `shutdown` request
/// or end of input. On end of input the service first drains every queued
/// job (so piping a batch of submits runs them all to completion); an
/// explicit `shutdown` stops after the in-flight batches, leaving resumable
/// prefixes in the store.
pub fn serve_stdio(config: ServiceConfig) {
    let (service, events) = CampaignService::new(config);
    let (out_tx, out_rx) = mpsc::channel::<Event>();
    let forward_tx = out_tx.clone();
    let forwarder = std::thread::spawn(move || {
        for event in events {
            if forward_tx.send(event).is_err() {
                break;
            }
        }
    });
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for event in out_rx {
            let mut handle = stdout.lock();
            let _ = writeln!(handle, "{}", event.render());
            let _ = handle.flush();
        }
    });

    let stdin = std::io::stdin();
    let mut shutdown_requested = false;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Request::parse(line) {
            Ok(Request::Submit { id, spec }) => {
                // Success and failure both surface as events.
                let _ = service.submit(id, spec);
            }
            Ok(Request::Pause { id }) => {
                if let Err(message) = service.pause(&id) {
                    let _ = out_tx.send(Event::Error {
                        id: Some(id),
                        message,
                    });
                }
            }
            Ok(Request::Resume { id }) => {
                if let Err(message) = service.resume(&id) {
                    let _ = out_tx.send(Event::Error {
                        id: Some(id),
                        message,
                    });
                }
            }
            Ok(Request::Status) => {
                let _ = out_tx.send(Event::Status {
                    jobs: service.status(),
                });
            }
            Ok(Request::Shutdown) => {
                shutdown_requested = true;
                break;
            }
            Err(message) => {
                let _ = out_tx.send(Event::Error { id: None, message });
            }
        }
    }
    if !shutdown_requested {
        service.wait_idle();
    }
    service.shutdown();
    let _ = forwarder.join();
    let _ = out_tx.send(Event::Shutdown);
    drop(out_tx);
    let _ = writer.join();
}

/// Binds `path` (replacing any stale socket file) and serves connections
/// until one of them requests `shutdown`. Each connection gets its own
/// reader thread; events are routed back over the connection that submitted
/// the job.
///
/// # Errors
///
/// Returns the I/O error if the socket cannot be bound.
pub fn serve_unix(path: &Path, config: ServiceConfig) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;

    let (service, events) = CampaignService::new(config);
    let service = Arc::new(service);
    let shutdown = Arc::new(AtomicBool::new(false));
    let routes: Arc<Mutex<HashMap<String, Sender<Event>>>> = Arc::new(Mutex::new(HashMap::new()));
    let writers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    // Router: each job's events go to the connection that submitted it; a
    // terminal event (result or error) retires the route.
    let router = {
        let routes = routes.clone();
        std::thread::spawn(move || {
            for event in events {
                let Some(id) = event.job_id().map(str::to_string) else {
                    continue;
                };
                let terminal = matches!(event, Event::Result { .. } | Event::Error { .. });
                let mut routes = routes.lock().unwrap();
                if let Some(sender) = routes.get(&id) {
                    let _ = sender.send(event);
                }
                if terminal {
                    routes.remove(&id);
                }
            }
        })
    };

    let mut connections = Vec::new();
    let conn_counter = AtomicUsize::new(0);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = conn_counter.fetch_add(1, Ordering::SeqCst) + 1;
                let service = service.clone();
                let routes = routes.clone();
                let writers = writers.clone();
                let shutdown = shutdown.clone();
                connections.push(std::thread::spawn(move || {
                    handle_connection(stream, conn, &service, &routes, &writers, &shutdown);
                }));
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }

    // Shut down: reader threads exit via their read timeouts; dropping the
    // routes releases the writer threads, which drain any queued events
    // before closing their streams; dropping the service parks the workers
    // after their in-flight batches (prefixes stay persisted).
    for connection in connections {
        let _ = connection.join();
    }
    routes.lock().unwrap().clear();
    for writer in std::mem::take(&mut *writers.lock().unwrap()) {
        let _ = writer.join();
    }
    drop(service);
    let _ = router.join();
    drop(listener);
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn handle_connection(
    stream: UnixStream,
    conn: usize,
    service: &CampaignService,
    routes: &Mutex<HashMap<String, Sender<Event>>>,
    writers: &Mutex<Vec<JoinHandle<()>>>,
    shutdown: &AtomicBool,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Poll the shutdown flag between reads instead of blocking forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));

    let (event_tx, event_rx) = mpsc::channel::<Event>();
    let writer = std::thread::spawn(move || {
        let mut stream = write_half;
        for event in event_rx {
            if writeln!(stream, "{}", event.render()).is_err() {
                break;
            }
            let _ = stream.flush();
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);
    });
    writers.lock().unwrap().push(writer);

    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    let mut submitted = 0usize;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let request = line.trim().to_string();
                line.clear();
                if request.is_empty() {
                    continue;
                }
                match Request::parse(&request) {
                    Ok(Request::Submit { id, spec }) => {
                        submitted += 1;
                        let id = id.unwrap_or_else(|| format!("conn{conn}-job{submitted}"));
                        // Register the route first so no event can be missed;
                        // never steal an id already routed elsewhere.
                        match routes.lock().unwrap().entry(id.clone()) {
                            Entry::Occupied(_) => {
                                let _ = event_tx.send(Event::Error {
                                    id: Some(id),
                                    message: "duplicate job id".to_string(),
                                });
                                continue;
                            }
                            Entry::Vacant(route) => {
                                route.insert(event_tx.clone());
                            }
                        }
                        // A rejected submit emits an error event, which the
                        // router forwards here and retires.
                        let _ = service.submit(Some(id), spec);
                    }
                    Ok(Request::Pause { id }) => {
                        if let Err(message) = service.pause(&id) {
                            let _ = event_tx.send(Event::Error {
                                id: Some(id),
                                message,
                            });
                        }
                    }
                    Ok(Request::Resume { id }) => {
                        if let Err(message) = service.resume(&id) {
                            let _ = event_tx.send(Event::Error {
                                id: Some(id),
                                message,
                            });
                        }
                    }
                    Ok(Request::Status) => {
                        let _ = event_tx.send(Event::Status {
                            jobs: service.status(),
                        });
                    }
                    Ok(Request::Shutdown) => {
                        let _ = event_tx.send(Event::Shutdown);
                        shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                    Err(message) => {
                        let _ = event_tx.send(Event::Error { id: None, message });
                    }
                }
            }
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}
