//! The campaign service: a job table, a shared worker pool and the
//! store-backed resume/dedup logic.
//!
//! ## Scheduling
//!
//! Jobs take *turns*: a worker pops the next job off a FIFO run queue, runs
//! exactly **one batch** of its campaign (the spec's `batch` size), persists
//! the accumulated outcome prefix, emits a progress event and requeues the
//! job. With more jobs than workers this round-robins fairly — every queued
//! job advances by one batch per cycle — and concurrent jobs make
//! interleaved progress by construction.
//!
//! ## Resumability
//!
//! A turn rebuilds the job's
//! [`CampaignSession`](tmr_fpga::faultsim::CampaignSession) from its flow
//! artifacts (all memoized, so only the first turn pays) and seeds it with
//! the persisted prefix via `with_prefix`. Because session outcomes are
//! bit-identical to the matching prefix of an uninterrupted run (the
//! exact-prefix guarantee), a job interrupted by a crash or shutdown and
//! resumed in a fresh process produces a **byte-identical**
//! [`CampaignResult`]. Prefixes live in the store under stage
//! `campaign.partial`, keyed by the same campaign fingerprint as the final
//! result; completed results are stored under stage `campaign`, so a
//! re-submitted job — or a [`Flow::campaign`](tmr_fpga::flow::Flow) call
//! over the same configuration — is served without a single simulation.

use crate::protocol::{Event, JobSpec, JobStatus, ResultSource};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use tmr_core::pipeline::{ArtifactCache, CacheKey};
use tmr_fpga::arch::{Device, DeviceParams};
use tmr_fpga::faultsim::CampaignResult;
use tmr_fpga::flow::{device_for, Flow, FlowBuilder};
use tmr_fpga::store::CampaignPrefix;
use tmr_fpga::Store;

/// Identifies one submitted job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobId(pub String);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker turn.
    Queued,
    /// A worker is running one of its batches right now.
    Running,
    /// Parked by [`CampaignService::pause`]; resume to continue.
    Paused,
    /// Finished; the result was emitted and stored.
    Done,
    /// Failed; the error was emitted.
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// Configuration of a [`CampaignService`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Worker threads (0 = default of 2).
    pub workers: usize,
    /// The disk store backing resumable prefixes, result dedup and all
    /// stage artifacts. `None` = memory-only: jobs still interleave and
    /// pause/resume, but nothing survives the process.
    pub store: Option<Arc<Store>>,
}

struct Job {
    id: String,
    spec: JobSpec,
    state: JobState,
    pause_requested: bool,
    batches: usize,
    injected: usize,
    planned: usize,
    wrong_answers: usize,
    /// In-memory copy of the persisted prefix (the only copy when no store
    /// is attached).
    prefix: Option<CampaignPrefix>,
    started_emitted: bool,
}

#[derive(Default)]
struct State {
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    active: usize,
    shutdown: bool,
}

struct Inner {
    mem: Arc<ArtifactCache>,
    store: Option<Arc<Store>>,
    completed: Mutex<HashMap<u64, Arc<CampaignResult>>>,
    events: Mutex<Sender<Event>>,
    state: Mutex<State>,
    wake: Condvar,
    idle: Condvar,
}

/// The in-process campaign service driving a pool of worker threads. The
/// daemon binaries wrap it in the NDJSON protocol; tests and embedders use
/// it directly.
pub struct CampaignService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

enum Turn {
    Requeue,
    Finished(JobState),
}

impl CampaignService {
    /// Starts the worker pool and returns the service plus the stream of
    /// [`Event`]s it emits.
    pub fn new(config: ServiceConfig) -> (Self, Receiver<Event>) {
        let (sender, receiver) = mpsc::channel();
        let inner = Arc::new(Inner {
            mem: ArtifactCache::shared(),
            store: config.store,
            completed: Mutex::new(HashMap::new()),
            events: Mutex::new(sender),
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = if config.workers == 0 {
            2
        } else {
            config.workers
        };
        let workers = (0..workers)
            .map(|n| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("tmr-serve-worker-{n}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a worker thread")
            })
            .collect();
        (Self { inner, workers }, receiver)
    }

    /// The disk store backing the service, if one is attached.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.inner.store.as_ref()
    }

    /// Validates and enqueues a job. Emits [`Event::Accepted`] on success
    /// and [`Event::Error`] on failure.
    ///
    /// # Errors
    ///
    /// Returns the validation or duplicate-id message (also emitted).
    pub fn submit(&self, id: Option<String>, spec: JobSpec) -> Result<JobId, String> {
        let result = self.try_submit(id.clone(), spec);
        if let Err(message) = &result {
            self.inner.emit(Event::Error {
                id,
                message: message.clone(),
            });
        }
        result
    }

    fn try_submit(&self, id: Option<String>, spec: JobSpec) -> Result<JobId, String> {
        spec.validate()?;
        let mut state = self.inner.state.lock().unwrap();
        if state.shutdown {
            return Err("service is shutting down".to_string());
        }
        let id = id.unwrap_or_else(|| format!("job-{}", state.jobs.len() + 1));
        if state.jobs.iter().any(|job| job.id == id) {
            return Err(format!("duplicate job id {id:?}"));
        }
        let planned = spec.faults;
        state.jobs.push(Job {
            id: id.clone(),
            spec,
            state: JobState::Queued,
            pause_requested: false,
            batches: 0,
            injected: 0,
            planned,
            wrong_answers: 0,
            prefix: None,
            started_emitted: false,
        });
        let index = state.jobs.len() - 1;
        state.queue.push_back(index);
        drop(state);
        self.inner.wake.notify_one();
        self.inner.emit(Event::Accepted { id: id.clone() });
        Ok(JobId(id))
    }

    /// Parks a queued or running job after its current batch (its prefix
    /// stays persisted). Emits [`Event::Paused`] once parked.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown ids and terminal jobs.
    pub fn pause(&self, id: &str) -> Result<(), String> {
        let mut state = self.inner.state.lock().unwrap();
        let index = find_job(&state.jobs, id)?;
        match state.jobs[index].state {
            JobState::Queued => {
                state.queue.retain(|&queued| queued != index);
                let job = &mut state.jobs[index];
                job.state = JobState::Paused;
                let event = Event::Paused {
                    id: job.id.clone(),
                    injected: job.injected,
                };
                drop(state);
                self.inner.idle.notify_all();
                self.inner.emit(event);
                Ok(())
            }
            JobState::Running => {
                state.jobs[index].pause_requested = true;
                Ok(())
            }
            JobState::Paused => Ok(()),
            JobState::Done | JobState::Failed => Err(format!("job {id:?} already finished")),
        }
    }

    /// Re-queues a paused job; its next turn continues from the persisted
    /// prefix.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown ids and finished jobs.
    pub fn resume(&self, id: &str) -> Result<(), String> {
        let mut state = self.inner.state.lock().unwrap();
        let index = find_job(&state.jobs, id)?;
        let job = &mut state.jobs[index];
        match job.state {
            JobState::Paused => {
                job.state = JobState::Queued;
                job.pause_requested = false;
                state.queue.push_back(index);
                drop(state);
                self.inner.wake.notify_one();
                Ok(())
            }
            JobState::Queued | JobState::Running => Ok(()),
            JobState::Done | JobState::Failed => Err(format!("job {id:?} already finished")),
        }
    }

    /// A snapshot of every job, in submission order.
    pub fn status(&self) -> Vec<JobStatus> {
        let state = self.inner.state.lock().unwrap();
        state
            .jobs
            .iter()
            .map(|job| JobStatus {
                id: job.id.clone(),
                state: job.state.as_str().to_string(),
                injected: job.injected,
                planned: job.planned,
                wrong_answers: job.wrong_answers,
                batches: job.batches,
            })
            .collect()
    }

    /// Blocks until no job is queued or running (all are done, failed or
    /// paused).
    pub fn wait_idle(&self) {
        let mut state = self.inner.state.lock().unwrap();
        while !(state.queue.is_empty() && state.active == 0) {
            state = self.inner.idle.wait(state).unwrap();
        }
    }

    /// Stops the workers after their current turns and joins them. Unfinished
    /// jobs keep their persisted prefixes and resume byte-identically when
    /// re-submitted to a new service over the same store.
    pub fn shutdown(self) {
        // Drop runs the actual shutdown.
    }
}

impl Drop for CampaignService {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.shutdown = true;
        }
        self.inner.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Inner {
    fn emit(&self, event: Event) {
        // A dropped receiver just means nobody is listening any more.
        let _ = self.events.lock().unwrap().send(event);
    }
}

fn find_job(jobs: &[Job], id: &str) -> Result<usize, String> {
    jobs.iter()
        .position(|job| job.id == id)
        .ok_or_else(|| format!("unknown job id {id:?}"))
}

fn worker_loop(inner: &Inner) {
    loop {
        let index = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(index) = state.queue.pop_front() {
                    state.jobs[index].state = JobState::Running;
                    state.active += 1;
                    break index;
                }
                state = inner.wake.wait(state).unwrap();
            }
        };
        let turn = run_turn(inner, index);
        let mut state = inner.state.lock().unwrap();
        state.active -= 1;
        let job = &mut state.jobs[index];
        let mut paused_event = None;
        match turn {
            Ok(Turn::Requeue) => {
                if job.pause_requested {
                    job.state = JobState::Paused;
                    paused_event = Some(Event::Paused {
                        id: job.id.clone(),
                        injected: job.injected,
                    });
                } else {
                    job.state = JobState::Queued;
                    state.queue.push_back(index);
                    inner.wake.notify_one();
                }
            }
            Ok(Turn::Finished(final_state)) => job.state = final_state,
            Err(message) => {
                let id = job.id.clone();
                job.state = JobState::Failed;
                drop(state);
                inner.emit(Event::Error {
                    id: Some(id),
                    message,
                });
                inner.idle.notify_all();
                continue;
            }
        }
        drop(state);
        if let Some(event) = paused_event {
            inner.emit(event);
        }
        inner.idle.notify_all();
    }
}

/// One scheduling turn of one job: rebuild the flow (memoized), probe the
/// stores, run one batch, persist the prefix.
fn run_turn(inner: &Inner, index: usize) -> Result<Turn, String> {
    let (id, spec, prefix, batches) = {
        let state = inner.state.lock().unwrap();
        let job = &state.jobs[index];
        (
            job.id.clone(),
            job.spec.clone(),
            job.prefix.clone(),
            job.batches,
        )
    };
    let _job_span = tmr_trace::span("serve.job");
    tmr_trace::attr_current("id", id.as_str());
    tmr_trace::attr_current("turn", batches);

    let flow = build_flow(inner, &spec).map_err(|err| err.to_string())?;
    let campaign = spec.campaign()?;
    let fingerprint = flow.campaign_fingerprint(&campaign);
    let result_key = CacheKey::new("campaign", fingerprint);
    let prefix_key = CacheKey::new("campaign.partial", fingerprint);

    // First turn: a finished result in the in-process table or the store
    // answers the whole job with zero simulations.
    if batches == 0 && prefix.is_none() {
        let memory_hit = inner.completed.lock().unwrap().get(&fingerprint).cloned();
        let (hit, source) = match memory_hit {
            Some(result) => (Some(result), ResultSource::Memory),
            None => match inner
                .store
                .as_ref()
                .and_then(|store| store.load_as::<CampaignResult>(result_key))
            {
                Some(result) => (Some(Arc::new(result)), ResultSource::Store),
                None => (None, ResultSource::Run),
            },
        };
        if let Some(result) = hit {
            inner
                .completed
                .lock()
                .unwrap()
                .insert(fingerprint, result.clone());
            emit_started(inner, index, &id, fingerprint, spec.faults, 0);
            finish(inner, index, &id, &result, source, 0, false);
            return Ok(Turn::Finished(JobState::Done));
        }
    }

    // Recover the prefix: the job table keeps the freshest copy; the store
    // covers resumption across processes.
    let prefix = prefix.or_else(|| {
        inner
            .store
            .as_ref()
            .and_then(|store| store.load_as::<CampaignPrefix>(prefix_key))
    });
    let resumed = prefix.as_ref().map_or(0, |p| p.outcomes.len());
    emit_started(inner, index, &id, fingerprint, spec.faults, resumed);

    let routed = flow.routed().map_err(|err| err.to_string())?;
    let mut session = flow
        .campaign_session(&routed, &campaign)
        .map_err(|err| err.to_string())?;
    if let Some(prefix) = prefix {
        session = session.with_prefix(prefix.outcomes, prefix.simulated, prefix.stats);
    }

    let batch = {
        let _batch_span = tmr_trace::span("serve.batch");
        tmr_trace::attr_current("id", id.as_str());
        let batch = session.next_batch().map(<[_]>::len);
        tmr_trace::attr_current("faults", batch.unwrap_or(0));
        batch
    };
    let progress = session.progress();
    let ci = session.ci_half_width();
    let stopped_early = session.stopped_early();
    let done = batch.is_none() || progress.injected >= progress.planned;
    let turns = batches + 1;

    {
        let mut state = inner.state.lock().unwrap();
        let job = &mut state.jobs[index];
        job.batches = turns;
        job.injected = progress.injected;
        job.planned = progress.planned;
        job.wrong_answers = progress.wrong_answers;
    }

    if done {
        let result = Arc::new(session.into_result());
        if let Some(store) = &inner.store {
            store.save_value(result_key, result.as_ref());
            store.remove(prefix_key);
        }
        inner
            .completed
            .lock()
            .unwrap()
            .insert(fingerprint, result.clone());
        finish(
            inner,
            index,
            &id,
            &result,
            ResultSource::Run,
            turns,
            stopped_early,
        );
        return Ok(Turn::Finished(JobState::Done));
    }

    // Persist the prefix at the batch boundary: the exact-prefix guarantee
    // makes any later resume byte-identical.
    let so_far = session.into_result();
    let prefix = CampaignPrefix {
        outcomes: so_far.outcomes,
        simulated: so_far.simulated,
        stats: so_far.stats,
    };
    if let Some(store) = &inner.store {
        store.save_value(prefix_key, &prefix);
    }
    {
        let mut state = inner.state.lock().unwrap();
        state.jobs[index].prefix = Some(prefix);
    }
    inner.emit(Event::Progress {
        id,
        injected: progress.injected,
        planned: progress.planned,
        wrong_answers: progress.wrong_answers,
        simulated: progress.simulated,
        ci,
        batches: turns,
    });
    Ok(Turn::Requeue)
}

fn emit_started(
    inner: &Inner,
    index: usize,
    id: &str,
    fingerprint: u64,
    planned: usize,
    resumed: usize,
) {
    let first = {
        let mut state = inner.state.lock().unwrap();
        let job = &mut state.jobs[index];
        !std::mem::replace(&mut job.started_emitted, true)
    };
    if first {
        inner.emit(Event::Started {
            id: id.to_string(),
            fingerprint,
            planned,
            resumed,
        });
    }
}

fn finish(
    inner: &Inner,
    index: usize,
    id: &str,
    result: &CampaignResult,
    served_from: ResultSource,
    batches: usize,
    stopped_early: bool,
) {
    {
        let mut state = inner.state.lock().unwrap();
        let job = &mut state.jobs[index];
        job.injected = result.injected();
        job.planned = result.injected();
        job.wrong_answers = result.wrong_answers();
        job.batches = batches;
    }
    inner.emit(Event::Result {
        id: id.to_string(),
        design: result.design.clone(),
        injected: result.injected(),
        wrong_answers: result.wrong_answers(),
        rate_percent: result.wrong_answer_percent(),
        simulated: result.simulated,
        stopped_early,
        served_from,
        batches,
    });
}

/// Builds the job's flow: shared memory cache, shared store, single-shard
/// batches (fairness comes from turn scheduling, not intra-batch threads).
/// Auto-sizes the device from the synthesized netlist when the spec pins
/// none — the synthesis stage is keyed by design identity only, so the
/// probe work is shared with the real flow.
fn build_flow(inner: &Inner, spec: &JobSpec) -> Result<Flow, tmr_fpga::Error> {
    let design = spec
        .design_instance()
        .expect("spec validated at submission");
    let tmr = spec.tmr_config().expect("spec validated at submission");
    let device = match spec.device_instance() {
        Some(device) => device,
        None => {
            let params = DeviceParams::xc2s200e_like();
            let probe = configure(
                FlowBuilder::new(&Device::new(params), &design),
                inner,
                spec,
                tmr.clone(),
            )
            .build();
            let synthesized = probe.synthesized()?;
            device_for(params, &[synthesized.netlist()], 0.50)
        }
    };
    Ok(configure(FlowBuilder::new(&device, &design), inner, spec, tmr).build())
}

fn configure(
    builder: FlowBuilder,
    inner: &Inner,
    spec: &JobSpec,
    tmr: Option<tmr_core::TmrConfig>,
) -> FlowBuilder {
    let mut builder = builder.seed(spec.seed).shards(1).cache(inner.mem.clone());
    if let Some(config) = tmr {
        builder = builder.tmr(config);
    }
    if let Some(store) = &inner.store {
        builder = builder.store(store.clone());
    }
    builder
}
