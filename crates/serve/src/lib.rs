//! # tmr-serve
//!
//! Campaign service for the `tmr-fpga` workspace: a concurrent,
//! **resumable** fault-injection job runner with an NDJSON wire protocol.
//!
//! * [`protocol`] — the wire format: [`JobSpec`] (design variant, TMR
//!   config, fault model, budget, early-stop CI), [`Request`]s and the
//!   [`Event`] stream.
//! * [`service`] — [`CampaignService`]: a job table multiplexed over a
//!   shared worker pool. Jobs advance **one batch per turn** (round-robin
//!   fairness), persist their outcome prefix to the [`tmr_fpga::Store`]
//!   after every batch, and therefore survive pause, shutdown and crashes
//!   with byte-identical results. Completed campaigns dedup against the
//!   store: re-submitting an identical job performs zero simulations.
//! * [`daemon`] — [`serve_stdio`] / [`serve_unix`] transport loops; the
//!   `tmr-campaignd` and `tmr-submit` binaries in `tmr-bench` wrap them.
//!
//! ```no_run
//! use tmr_serve::{CampaignService, JobSpec, ServiceConfig};
//!
//! let (service, events) = CampaignService::new(ServiceConfig::default());
//! service.submit(None, JobSpec::new("counter:4")).unwrap();
//! service.wait_idle();
//! for event in events.try_iter() {
//!     println!("{}", event.render());
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemon;
pub mod protocol;
pub mod service;

pub use daemon::{serve_stdio, serve_unix};
pub use protocol::{Event, JobSpec, JobStatus, Request, ResultSource};
pub use service::{CampaignService, JobId, JobState, ServiceConfig};
