//! The Fault List Manager: enumerating and sampling design-related bits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tmr_arch::{BitCategory, Device};
use tmr_pnr::RoutedDesign;

/// The list of configuration bits eligible for fault injection.
///
/// Following the paper, "the Fault List Manager … is able to identify the
/// configuration memory bits that are actually programmed to implement the
/// DUT and generate the bit-flips only for them": a bit is eligible when its
/// resource is related to the routed design — a PIP touching a routing node
/// used by some net, a truth-table bit of a used LUT, or the configuration
/// bit of a used flip-flop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    bits: Vec<usize>,
}

impl FaultList {
    /// Builds the fault list of a routed design.
    pub fn build(device: &Device, routed: &RoutedDesign) -> Self {
        let layout = device.config_layout();
        let bits = (0..layout.bit_count())
            .filter(|&bit| {
                let resource = layout.resource_at(bit).expect("bit in range");
                routed.resource_is_design_related(device, &resource)
            })
            .collect();
        Self { bits }
    }

    /// All eligible bit indices, in configuration-memory order.
    pub fn bits(&self) -> &[usize] {
        &self.bits
    }

    /// Number of eligible bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if no bit is eligible (empty design).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of eligible bits per configuration category.
    pub fn counts_by_category(
        &self,
        device: &Device,
    ) -> std::collections::BTreeMap<BitCategory, usize> {
        let layout = device.config_layout();
        let mut counts = std::collections::BTreeMap::new();
        for &bit in &self.bits {
            *counts.entry(layout.category_at(bit)).or_insert(0) += 1;
        }
        counts
    }

    /// Returns the fault list restricted to the bits contained in `allowed`
    /// (a sorted slice, e.g. the statically-possibly-observable set of
    /// `tmr-analyze`). The relative configuration-memory order is preserved.
    #[must_use]
    pub fn restricted(&self, allowed: &[usize]) -> Self {
        debug_assert!(
            allowed.windows(2).all(|pair| pair[0] < pair[1]),
            "`allowed` must be sorted and deduplicated for the binary search"
        );
        Self {
            bits: self
                .bits
                .iter()
                .copied()
                .filter(|bit| allowed.binary_search(bit).is_ok())
                .collect(),
        }
    }

    /// Draws `count` distinct bits uniformly at random (or every bit if
    /// `count` exceeds the list size), reproducibly for a given seed. The
    /// paper injected roughly 10 % of the configuration memory, selected
    /// randomly from the fault list.
    pub fn sample(&self, count: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = self.bits.clone();
        bits.shuffle(&mut rng);
        bits.truncate(count.min(self.bits.len()));
        bits.sort_unstable();
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_counter() -> (Device, RoutedDesign) {
        let device = Device::small(5, 5);
        let netlist = techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        (device, routed)
    }

    #[test]
    fn fault_list_contains_all_programmed_bits() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        assert!(!list.is_empty());
        // Every bit that is set in the bitstream belongs to a design resource,
        // so it must be in the fault list.
        for bit in routed.bitstream().iter_ones() {
            assert!(list.bits().contains(&bit), "programmed bit {bit} missing");
        }
        // The list is larger than the programmed bits: it also contains the
        // zero bits of resources adjacent to the design (candidate bridges).
        assert!(list.len() > routed.bitstream().count_ones());
        // But much smaller than the whole device.
        assert!(list.len() < device.config_layout().bit_count());
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let a = list.sample(100, 3);
        let b = list.sample(100, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100.min(list.len()));
        let all = list.sample(usize::MAX, 3);
        assert_eq!(all.len(), list.len());
        // Distinct bits.
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn restricted_keeps_only_allowed_bits_in_order() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let allowed: Vec<usize> = list.bits().iter().copied().step_by(3).collect();
        let restricted = list.restricted(&allowed);
        assert_eq!(restricted.bits(), allowed.as_slice());
        assert!(list.restricted(&[]).is_empty());
        assert_eq!(list.restricted(list.bits()), list);
    }

    #[test]
    fn category_counts_cover_the_list() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let counts = list.counts_by_category(&device);
        assert_eq!(counts.values().sum::<usize>(), list.len());
        assert!(counts[&BitCategory::GeneralRouting] > 0);
        assert!(counts[&BitCategory::LutContents] > 0);
    }
}
