//! The Fault List Manager: enumerating and sampling design-related bits.

use crate::FaultModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmr_arch::{BitCategory, Device};
use tmr_pnr::RoutedDesign;

/// The list of configuration bits eligible for fault injection.
///
/// Following the paper, "the Fault List Manager … is able to identify the
/// configuration memory bits that are actually programmed to implement the
/// DUT and generate the bit-flips only for them": a bit is eligible when its
/// resource is related to the routed design — a PIP touching a routing node
/// used by some net, a truth-table bit of a used LUT, or the configuration
/// bit of a used flip-flop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    bits: Vec<usize>,
}

impl FaultList {
    /// Builds the fault list of a routed design, from the design-related-bit
    /// scan cached on [`RoutedDesign::design_related_bits`] — repeated
    /// campaigns on the same routed design pay the configuration-memory scan
    /// once.
    pub fn build(device: &Device, routed: &RoutedDesign) -> Self {
        Self {
            bits: routed.design_related_bits(device).to_vec(),
        }
    }

    /// All eligible bit indices, in configuration-memory order.
    pub fn bits(&self) -> &[usize] {
        &self.bits
    }

    /// Number of eligible bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if no bit is eligible (empty design).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of eligible bits per configuration category.
    pub fn counts_by_category(
        &self,
        device: &Device,
    ) -> std::collections::BTreeMap<BitCategory, usize> {
        let layout = device.config_layout();
        let mut counts = std::collections::BTreeMap::new();
        for &bit in &self.bits {
            *counts.entry(layout.category_at(bit)).or_insert(0) += 1;
        }
        counts
    }

    /// Returns the fault list restricted to the bits contained in `allowed`
    /// (a sorted slice, e.g. the statically-possibly-observable set of
    /// `tmr-analyze`). The relative configuration-memory order is preserved.
    #[must_use]
    pub fn restricted(&self, allowed: &[usize]) -> Self {
        debug_assert!(
            allowed.windows(2).all(|pair| pair[0] < pair[1]),
            "`allowed` must be sorted and deduplicated for the binary search"
        );
        Self {
            bits: self
                .bits
                .iter()
                .copied()
                .filter(|bit| allowed.binary_search(bit).is_ok())
                .collect(),
        }
    }

    /// Draws `count` distinct bits uniformly at random (or every bit if
    /// `count` exceeds the list size), reproducibly for a given seed. The
    /// paper injected roughly 10 % of the configuration memory, selected
    /// randomly from the fault list.
    pub fn sample(&self, count: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = self.bits.len();
        let count = count.min(len);
        // Floyd's algorithm draws `count` distinct indices with `count` RNG
        // calls; shuffling the whole fault list (hundreds of thousands of
        // bits on real devices) to keep a few hundred would dominate the
        // campaign setup time.
        let mut chosen = std::collections::HashSet::with_capacity(count);
        for limit in len - count..len {
            let pick = rng.gen_range(0..=limit);
            if !chosen.insert(pick) {
                chosen.insert(limit);
            }
        }
        let mut bits: Vec<usize> = chosen.into_iter().map(|index| self.bits[index]).collect();
        bits.sort_unstable();
        bits
    }

    /// Draws `count` faults under a [`FaultModel`], reproducibly for a given
    /// seed. Each fault is the sorted, distinct, in-bounds set of
    /// configuration bits one experiment flips:
    ///
    /// * [`FaultModel::SingleBit`] — the bits of [`FaultList::sample`], one
    ///   per fault;
    /// * [`FaultModel::Mbu`] — the *same* sampled bits as anchors, each
    ///   expanded into its geometric cluster through the device's
    ///   [`tmr_arch::BitGeometry`] (cluster bits outside the design's fault
    ///   list are included: a strike does not respect the design boundary);
    /// * [`FaultModel::Accumulate`] — `count · upsets_per_scrub` bits are
    ///   sampled and dealt round-robin into `count` scrub intervals, so each
    ///   interval accumulates upsets spread uniformly over the configuration
    ///   memory rather than a contiguous ascending run. When the fault list
    ///   is exhausted before filling `count` intervals, every sampled bit is
    ///   still injected: the leftover bits form one final partial interval.
    ///
    /// The 1-bit degenerate models (`Mbu { Single }`,
    /// `Accumulate { upsets_per_scrub: 1 }`) produce exactly the
    /// [`FaultModel::SingleBit`] fault sequence, and every model orders its
    /// faults by ascending anchor (lowest) bit.
    pub fn sample_faults(
        &self,
        device: &Device,
        model: &FaultModel,
        count: usize,
        seed: u64,
    ) -> Vec<Vec<usize>> {
        match *model {
            FaultModel::SingleBit => self
                .sample(count, seed)
                .into_iter()
                .map(|bit| vec![bit])
                .collect(),
            FaultModel::Mbu { pattern } => {
                let geometry = device.config_layout().geometry();
                self.sample(count, seed)
                    .into_iter()
                    .map(|anchor| geometry.cluster(anchor, pattern))
                    .collect()
            }
            FaultModel::Accumulate { upsets_per_scrub } => {
                let per_scrub = upsets_per_scrub.max(1);
                let picked = self.sample(count.saturating_mul(per_scrub), seed);
                let intervals = picked.len() / per_scrub;
                let mut faults: Vec<Vec<usize>> = (0..intervals)
                    .map(|interval| {
                        let mut bits: Vec<usize> = (0..per_scrub)
                            .map(|upset| picked[interval + upset * intervals])
                            .collect();
                        bits.sort_unstable();
                        bits
                    })
                    .collect();
                // An exhausted fault list can leave fewer bits than one full
                // interval; accumulate them as a final partial interval
                // instead of silently dropping sampled bits. The remainder
                // holds the largest sampled indices, so ascending-anchor
                // fault order is preserved.
                let remainder = &picked[intervals * per_scrub..];
                if !remainder.is_empty() {
                    faults.push(remainder.to_vec());
                }
                faults
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_counter() -> (Device, RoutedDesign) {
        let device = Device::small(5, 5);
        let netlist = techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        (device, routed)
    }

    #[test]
    fn fault_list_contains_all_programmed_bits() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        assert!(!list.is_empty());
        // Every bit that is set in the bitstream belongs to a design resource,
        // so it must be in the fault list.
        for bit in routed.bitstream().iter_ones() {
            assert!(list.bits().contains(&bit), "programmed bit {bit} missing");
        }
        // The list is larger than the programmed bits: it also contains the
        // zero bits of resources adjacent to the design (candidate bridges).
        assert!(list.len() > routed.bitstream().count_ones());
        // But much smaller than the whole device.
        assert!(list.len() < device.config_layout().bit_count());
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let a = list.sample(100, 3);
        let b = list.sample(100, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100.min(list.len()));
        let all = list.sample(usize::MAX, 3);
        assert_eq!(all.len(), list.len());
        // Distinct bits.
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn degenerate_models_sample_the_single_bit_sequence() {
        use tmr_arch::MbuPattern;
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let single = list.sample_faults(&device, &FaultModel::SingleBit, 80, 7);
        assert_eq!(single.len(), 80.min(list.len()));
        assert_eq!(
            single,
            list.sample_faults(
                &device,
                &FaultModel::Mbu {
                    pattern: MbuPattern::Single
                },
                80,
                7
            )
        );
        assert_eq!(
            single,
            list.sample_faults(
                &device,
                &FaultModel::Accumulate {
                    upsets_per_scrub: 1
                },
                80,
                7
            )
        );
        let flat: Vec<usize> = single.iter().map(|fault| fault[0]).collect();
        assert_eq!(flat, list.sample(80, 7));
    }

    #[test]
    fn mbu_faults_are_anchored_clusters() {
        use tmr_arch::MbuPattern;
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let geometry = device.config_layout().geometry();
        let model = FaultModel::Mbu {
            pattern: MbuPattern::Tile2x2,
        };
        let faults = list.sample_faults(&device, &model, 60, 3);
        let anchors = list.sample(60, 3);
        assert_eq!(faults.len(), anchors.len());
        for (fault, &anchor) in faults.iter().zip(&anchors) {
            assert_eq!(fault, &geometry.cluster(anchor, MbuPattern::Tile2x2));
            assert_eq!(fault[0], anchor);
        }
    }

    #[test]
    fn accumulate_deals_distinct_bits_into_intervals() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let model = FaultModel::Accumulate {
            upsets_per_scrub: 4,
        };
        let faults = list.sample_faults(&device, &model, 30, 11);
        assert_eq!(faults.len(), 30);
        let mut seen = std::collections::BTreeSet::new();
        for fault in &faults {
            assert_eq!(fault.len(), 4);
            assert!(fault.windows(2).all(|pair| pair[0] < pair[1]));
            for &bit in fault {
                assert!(seen.insert(bit), "intervals draw disjoint bits");
                assert!(list.bits().binary_search(&bit).is_ok());
            }
        }
        // Anchors ascend: the merged result order is the fault-list order.
        assert!(faults.windows(2).all(|pair| pair[0][0] < pair[1][0]));
        // Determinism per seed.
        assert_eq!(faults, list.sample_faults(&device, &model, 30, 11));
        assert_ne!(faults, list.sample_faults(&device, &model, 30, 12));
    }

    #[test]
    fn accumulate_exhaustion_forms_a_partial_final_interval() {
        let (device, routed) = routed_counter();
        let full = FaultList::build(&device, &routed);
        // A 10-bit fault list with 4 upsets per scrub: asking for 3 intervals
        // samples all 10 bits — 2 full intervals plus a 2-bit partial one,
        // never dropping sampled bits.
        let ten: Vec<usize> = full.bits().iter().copied().take(10).collect();
        let list = full.restricted(&ten);
        let model = FaultModel::Accumulate {
            upsets_per_scrub: 4,
        };
        let faults = list.sample_faults(&device, &model, 3, 7);
        assert_eq!(
            faults.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        let mut injected: Vec<usize> = faults.iter().flatten().copied().collect();
        injected.sort_unstable();
        assert_eq!(injected, ten, "every sampled bit is injected exactly once");
        assert!(faults.windows(2).all(|pair| pair[0][0] < pair[1][0]));
        // Fewer eligible bits than one interval: everything accumulates into
        // a single experiment.
        let tiny = full.restricted(&ten[..3]);
        let faults = tiny.sample_faults(&device, &model, 5, 7);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].len(), 3);
    }

    #[test]
    fn restricted_keeps_only_allowed_bits_in_order() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let allowed: Vec<usize> = list.bits().iter().copied().step_by(3).collect();
        let restricted = list.restricted(&allowed);
        assert_eq!(restricted.bits(), allowed.as_slice());
        assert!(list.restricted(&[]).is_empty());
        assert_eq!(list.restricted(list.bits()), list);
    }

    #[test]
    fn category_counts_cover_the_list() {
        let (device, routed) = routed_counter();
        let list = FaultList::build(&device, &routed);
        let counts = list.counts_by_category(&device);
        assert_eq!(counts.values().sum::<usize>(), list.len());
        assert!(counts[&BitCategory::GeneralRouting] > 0);
        assert!(counts[&BitCategory::LutContents] > 0);
    }
}
