//! The Fault Injection Manager: campaign options, outcomes and result tables.

use crate::{classify_fault, FaultClass, FaultEffect, FaultModel, SimBackend};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use tmr_arch::Device;
use tmr_netlist::Domain;
use tmr_pnr::RoutedDesign;
use tmr_sim::{CompiledNetlist, GoldenRun, PackedGolden, SimStats, Simulator, MAX_LANES};

/// Options of a fault-injection campaign.
///
/// Construct through [`CampaignBuilder`](crate::CampaignBuilder) (or start from
/// [`CampaignOptions::default`] and refine with the `with_*` methods); the
/// fields are not public, so options can evolve without breaking every
/// construction site.
///
/// ```
/// use tmr_faultsim::CampaignBuilder;
///
/// let options = CampaignBuilder::new().faults(500).cycles(12).build();
/// assert_eq!(options.faults(), 500);
/// assert_eq!(options.cycles(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOptions {
    /// Number of faults to inject (drawn randomly from the fault list; the
    /// paper injected roughly 10 % of the configuration memory).
    pub(crate) faults: usize,
    /// Number of clock cycles of stimulus applied per fault.
    pub(crate) cycles: usize,
    /// Seed of the pseudo-random input stimulus.
    pub(crate) stimulus_seed: u64,
    /// Seed of the fault-sampling shuffle.
    pub(crate) sampling_seed: u64,
    /// How one fault perturbs the configuration memory; see
    /// [`CampaignOptions::fault_model`].
    pub(crate) model: FaultModel,
    /// Sorted allow-list of bits whose behaviour is actually simulated; see
    /// [`CampaignOptions::simulate_only`].
    pub(crate) simulate_only: Option<Arc<[usize]>>,
    /// Sorted `(bit, domain)` tags for statically non-observable bits; see
    /// [`CampaignOptions::maskable_domains`].
    pub(crate) maskable: Option<Arc<[(usize, Domain)]>>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            faults: 2000,
            cycles: 24,
            stimulus_seed: 20050307, // DATE 2005 conference date
            sampling_seed: 1,
            model: FaultModel::SingleBit,
            simulate_only: None,
            maskable: None,
        }
    }
}

impl CampaignOptions {
    /// Number of faults to inject.
    pub fn faults(&self) -> usize {
        self.faults
    }

    /// Number of clock cycles of stimulus applied per fault.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Seed of the pseudo-random input stimulus.
    pub fn stimulus_seed(&self) -> u64 {
        self.stimulus_seed
    }

    /// Seed of the fault-sampling shuffle.
    pub fn sampling_seed(&self) -> u64 {
        self.sampling_seed
    }

    /// The fault model: what one injected fault of the campaign is — a
    /// single-bit upset (the default), a geometric multi-bit cluster, or the
    /// upsets accumulated over one scrub interval. See [`FaultModel`].
    pub fn fault_model(&self) -> &FaultModel {
        &self.model
    }

    /// Returns the options with a different fault model.
    ///
    /// Degenerate 1-bit spellings (`Mbu { Single }`,
    /// `Accumulate { upsets_per_scrub: 1 }`) are canonicalized to
    /// [`FaultModel::SingleBit`]: they provably produce bit-identical
    /// campaigns (the differential harness pins this on the raw sampling
    /// path), so canonical options let caches serve all three spellings
    /// from one entry.
    #[must_use]
    pub fn with_fault_model(mut self, model: FaultModel) -> Self {
        self.model = if model.is_single_bit() {
            FaultModel::SingleBit
        } else {
            model
        };
        self
    }

    /// When set, only sampled bits contained in this sorted list are actually
    /// simulated; the remaining sampled bits are still classified and
    /// recorded (with `wrong_answer == false`), but their simulation is
    /// skipped.
    ///
    /// This is the campaign-pruning hook of the static criticality analyzer
    /// (`tmr-analyze`): the list holds the statically-possibly-observable
    /// bits, so the sampled population — and therefore every outcome of a
    /// sound pruning — is unchanged while the expensive simulations shrink to
    /// the bits that can matter. [`CampaignResult::simulated`] counts the
    /// simulations actually run.
    pub fn simulate_only(&self) -> Option<&[usize]> {
        self.simulate_only.as_deref()
    }

    /// Restricts simulation to the given bits (sorted and deduplicated
    /// internally); see [`CampaignOptions::simulate_only`]. The static
    /// analyzer's `prune_with` (in `tmr-analyze`) is the usual caller.
    #[must_use]
    pub fn restrict_to(mut self, bits: impl IntoIterator<Item = usize>) -> Self {
        let mut bits: Vec<usize> = bits.into_iter().collect();
        bits.sort_unstable();
        bits.dedup();
        self.simulate_only = Some(bits.into());
        self
    }

    /// The `(bit, domain)` tags justifying multi-bit pruning: every listed
    /// bit is statically guaranteed to corrupt signal copies of *only* that
    /// single redundant TMR domain.
    ///
    /// A multi-bit fault outside [`CampaignOptions::simulate_only`] is only
    /// skipped when **all** of its behaviour-changing bits carry tags of one
    /// common domain — corrupting one domain several times is still voted
    /// out, while two individually maskable bits of *different* domains can
    /// defeat TMR together and therefore must be simulated. Bits without a
    /// tag are unclassifiable to the pruner and conservatively keep their
    /// fault simulated.
    pub fn maskable_domains(&self) -> Option<&[(usize, Domain)]> {
        self.maskable.as_deref()
    }

    /// Installs the maskable-domain tags (sorted and deduplicated by bit
    /// internally); see [`CampaignOptions::maskable_domains`]. The static
    /// analyzer's `prune_with` is the usual caller.
    #[must_use]
    pub fn with_maskable_domains(
        mut self,
        tags: impl IntoIterator<Item = (usize, Domain)>,
    ) -> Self {
        let mut tags: Vec<(usize, Domain)> = tags.into_iter().collect();
        tags.sort_unstable();
        tags.dedup_by_key(|&mut (bit, _)| bit);
        self.maskable = Some(tags.into());
        self
    }

    /// Returns the options with a different fault count.
    #[must_use]
    pub fn with_faults(mut self, faults: usize) -> Self {
        self.faults = faults;
        self
    }

    /// Returns the options with a different per-fault stimulus length.
    #[must_use]
    pub fn with_cycles(mut self, cycles: usize) -> Self {
        self.cycles = cycles;
        self
    }

    /// Returns the options with a different stimulus seed.
    #[must_use]
    pub fn with_stimulus_seed(mut self, seed: u64) -> Self {
        self.stimulus_seed = seed;
        self
    }

    /// Returns the options with a different fault-sampling seed.
    #[must_use]
    pub fn with_sampling_seed(mut self, seed: u64) -> Self {
        self.sampling_seed = seed;
        self
    }
}

/// The outcome of one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The anchor configuration bit: the lowest bit the fault flipped (for
    /// the single-bit model, *the* flipped bit).
    pub bit: usize,
    /// Every flipped configuration bit, in ascending order — one entry under
    /// [`FaultModel::SingleBit`], the cluster of an [`FaultModel::Mbu`]
    /// strike, or the upsets of one [`FaultModel::Accumulate`] scrub
    /// interval.
    pub bits: Vec<usize>,
    /// Its classification (Table 4 taxonomy; for multi-bit faults the
    /// dominant component class, see
    /// [`FaultEffect`](crate::FaultEffect)).
    pub class: FaultClass,
    /// Whether the DUT output diverged from the golden device.
    pub wrong_answer: bool,
    /// First cycle at which the outputs diverged, if they did.
    pub first_error_cycle: Option<usize>,
    /// Whether the fault coupled two distinct TMR domains.
    pub crosses_domains: bool,
}

/// The aggregated result of a fault-injection campaign (one row of Table 3
/// plus one column of Table 4).
///
/// Equality compares the campaign *outcomes* — design, fault list, simulated
/// count and per-fault verdicts — and deliberately ignores
/// [`CampaignResult::stats`]: backends with different evaluation strategies
/// (event-driven, always-full, interpreting) produce bit-identical results
/// with very different counters, and the differential harness relies on
/// comparing them directly.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Name of the design under test.
    pub design: String,
    /// Size of the full fault list (all design-related bits).
    pub fault_list_size: usize,
    /// Number of faults whose behaviour was actually simulated. Without
    /// pruning this counts the sampled bits with a non-empty structural
    /// overlay; with [`CampaignOptions::simulate_only`] it shrinks further to
    /// the statically-possibly-observable bits.
    pub simulated: usize,
    /// Per-fault outcomes, in injection order.
    pub outcomes: Vec<FaultOutcome>,
    /// Observability counters of the compiled engine (all zero on the
    /// interpreter backend). Excluded from equality; shard-merge-order
    /// independent.
    pub stats: SimStats,
}

impl PartialEq for CampaignResult {
    fn eq(&self, other: &Self) -> bool {
        self.design == other.design
            && self.fault_list_size == other.fault_list_size
            && self.simulated == other.simulated
            && self.outcomes == other.outcomes
    }
}

impl Eq for CampaignResult {}

impl CampaignResult {
    /// Number of injected faults.
    pub fn injected(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of faults that produced a wrong answer.
    pub fn wrong_answers(&self) -> usize {
        self.outcomes.iter().filter(|o| o.wrong_answer).count()
    }

    /// Percentage of injected faults that produced a wrong answer — the
    /// "Wrong Answer [%]" column of Table 3.
    pub fn wrong_answer_percent(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        100.0 * self.wrong_answers() as f64 / self.injected() as f64
    }

    /// Classification of the faults that produced a wrong answer, in the row
    /// order of Table 4.
    pub fn error_classification(&self) -> BTreeMap<FaultClass, usize> {
        let mut counts = BTreeMap::new();
        for outcome in self.outcomes.iter().filter(|o| o.wrong_answer) {
            *counts.entry(outcome.class).or_insert(0) += 1;
        }
        counts
    }

    /// Classification of every injected fault (whether or not it caused an
    /// error).
    pub fn injection_classification(&self) -> BTreeMap<FaultClass, usize> {
        let mut counts = BTreeMap::new();
        for outcome in &self.outcomes {
            *counts.entry(outcome.class).or_insert(0) += 1;
        }
        counts
    }

    /// Among the error-causing faults, the fraction that coupled two distinct
    /// TMR domains — the mechanism the paper identifies as the residual
    /// weakness of TMR on SRAM-based FPGAs.
    pub fn cross_domain_error_fraction(&self) -> f64 {
        let errors: Vec<&FaultOutcome> = self.outcomes.iter().filter(|o| o.wrong_answer).collect();
        if errors.is_empty() {
            return 0.0;
        }
        errors.iter().filter(|o| o.crosses_domains).count() as f64 / errors.len() as f64
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} injected, {} wrong answers ({:.2} %)",
            self.design,
            self.injected(),
            self.wrong_answers(),
            self.wrong_answer_percent()
        )
    }
}

/// The immutable per-worker state of one campaign shard: the design under
/// test, the simulation backend (the compiled bit-parallel engine or the
/// interpreting oracle) and the shared golden reference (stimulus,
/// fault-free trace and output voting).
pub(crate) struct ShardContext<'a> {
    pub device: &'a Device,
    pub routed: &'a RoutedDesign,
    pub simulator: Option<Simulator<'a>>,
    pub golden: &'a GoldenRun,
    /// Sorted allow-list of [`CampaignOptions::simulate_only`]: sampled bits
    /// outside it are classified but not simulated.
    pub simulate_only: Option<&'a [usize]>,
    /// Sorted single-domain tags of [`CampaignOptions::maskable_domains`]:
    /// the justification needed to skip a *multi-bit* fault.
    pub maskable: Option<&'a [(usize, Domain)]>,
    /// Which engine actually evaluates the faulty device.
    pub backend: SimBackend,
    /// The compiled instruction stream (present on the compiled backend).
    pub compiled: Option<&'a CompiledNetlist>,
    /// The packed golden reference (present on the compiled backend).
    pub packed: Option<&'a PackedGolden>,
}

impl ShardContext<'_> {
    /// Whether the static restriction allows skipping this fault's
    /// simulation (the caller has already ruled out empty merged overlays).
    ///
    /// * single active bit — skip iff the bit is outside the allow-list
    ///   (its contract: the list contains every possibly-observable bit);
    ///   cumulative same-net opens contributed by individually silent
    ///   cluster mates stay on the same net, hence in the same domain, so
    ///   the single bit's verdict still covers the merged effect;
    /// * several active bits — skip only when every one is outside the
    ///   allow-list **and** tagged maskable with one common redundant
    ///   domain: each component alone is voted out, and together they still
    ///   corrupt only that domain's copies. Any unclassifiable bit (no tag)
    ///   degrades conservatively to simulation;
    /// * joint effects — when the merged overlay opens a sink that no
    ///   component opens alone (several same-net PIPs removed together), the
    ///   per-bit verdicts do not cover the fault's behaviour: simulate,
    ///   whatever the tags say. In particular a cluster with *no* active bit
    ///   but a non-empty merged overlay is never skipped.
    fn statically_skippable(&self, effect: &FaultEffect) -> bool {
        let Some(allowed) = self.simulate_only else {
            return false;
        };
        let covered = effect.overlay().opened_sinks.iter().all(|sink| {
            effect
                .effects()
                .iter()
                .any(|component| component.overlay.opened_sinks.contains(sink))
        });
        if !covered {
            return false;
        }
        let mut active = effect.active_bits();
        let Some(first) = active.next() else {
            return false;
        };
        let rest: Vec<usize> = active.collect();
        if allowed.binary_search(&first).is_ok() {
            return false;
        }
        if rest.is_empty() {
            return true;
        }
        let Some(maskable) = self.maskable else {
            return false;
        };
        let domain_of = |bit: usize| {
            maskable
                .binary_search_by_key(&bit, |&(tagged, _)| tagged)
                .ok()
                .map(|index| maskable[index].1)
        };
        let Some(common) = domain_of(first) else {
            return false;
        };
        rest.iter()
            .all(|&bit| allowed.binary_search(&bit).is_err() && domain_of(bit) == Some(common))
    }
}

/// Injects the faults of one shard (any contiguous slice of the sampled fault
/// list) and returns their outcomes, in slice order, plus the number of
/// faults whose behaviour was actually simulated and the engine's
/// observability counters.
///
/// This is the single per-fault code path shared by the streaming session and
/// the batch campaign engine: for a given `(fault bits, golden run)` pair the
/// outcome is a pure function, which is what makes sharded and early-stopped
/// campaigns bit-identical to sequential full-length ones on the faults they
/// simulate. On the compiled backend the simulable faults are additionally
/// batched into packed word batches of up to [`MAX_LANES`] lanes — bridging
/// faults separately from the rest, so only bridged words pay the
/// multi-pass settling loop, and both streams grouped by their fan-out-cone
/// fingerprint so lanes sharing a word share cones — and their per-lane
/// results are written back into fault-list order, which keeps the merged
/// outcomes byte-identical to the interpreter's: grouping changes which
/// faults share a word, never any per-lane outcome.
pub(crate) fn run_shard(
    ctx: &ShardContext<'_>,
    faults: &[Vec<usize>],
) -> (Vec<FaultOutcome>, usize, SimStats) {
    let effects: Vec<FaultEffect> = faults
        .iter()
        .map(|bits| classify_fault(ctx.device, ctx.routed, bits))
        .collect();
    let mut results: Vec<(bool, Option<usize>)> = vec![(false, None); faults.len()];
    let mut simulated = 0;
    let mut stats = SimStats::default();

    match ctx.backend {
        SimBackend::Interpreter => {
            let simulator = ctx
                .simulator
                .as_ref()
                .expect("interpreter backend without a simulator");
            for (effect, result) in effects.iter().zip(results.iter_mut()) {
                if effect.overlay().is_empty() || ctx.statically_skippable(effect) {
                    continue;
                }
                simulated += 1;
                let trace = simulator.run_stimulus(ctx.golden.stimulus(), effect.overlay());
                if let Some(cycle) = ctx
                    .golden
                    .groups()
                    .first_voted_mismatch(ctx.golden.trace(), &trace)
                {
                    *result = (true, Some(cycle));
                }
            }
        }
        SimBackend::Compiled | SimBackend::CompiledFull => {
            let compiled = ctx.compiled.expect("compiled backend without a netlist");
            let packed = ctx.packed.expect("compiled backend without a golden pack");
            let event_driven = ctx.backend == SimBackend::Compiled;
            // Split the simulable faults into two lane streams: words
            // without bridged nets run incrementally over the fan-out cone,
            // words with bridges take the full multi-pass evaluation.
            let mut clean: Vec<usize> = Vec::new();
            let mut bridged: Vec<usize> = Vec::new();
            for (index, effect) in effects.iter().enumerate() {
                if effect.overlay().is_empty() || ctx.statically_skippable(effect) {
                    continue;
                }
                if effect.overlay().shorted_nets.is_empty() {
                    clean.push(index);
                } else {
                    bridged.push(index);
                }
            }
            simulated = clean.len() + bridged.len();
            // Deal each stream's faults into words by cone fingerprint, so
            // the lanes of one word share their fan-out cone and the union
            // cone each word touches stays small. The sort is keyed
            // `(fingerprint, fault index)` — a stable regrouping — and the
            // per-lane results go back through the carried indices, so the
            // outcome vector stays in fault-list order.
            let group_by_cone = |indices: &[usize], stats: &mut SimStats| -> Vec<usize> {
                let mut keyed: Vec<(u128, usize)> = indices
                    .iter()
                    .map(|&index| (compiled.cone_key(effects[index].overlay()), index))
                    .collect();
                keyed.sort_unstable();
                stats.cone_grouped += keyed.len() as u64;
                stats.cone_dedup_hits += keyed
                    .windows(2)
                    .filter(|pair| pair[0].0 == pair[1].0)
                    .count() as u64;
                keyed.into_iter().map(|(_, index)| index).collect()
            };
            let grouped = group_by_cone(&clean, &mut stats);
            let grouped_bridged = group_by_cone(&bridged, &mut stats);
            for stream in [&grouped, &grouped_bridged] {
                for word in stream.chunks(MAX_LANES) {
                    let overlays: Vec<&tmr_sim::FaultOverlay> =
                        word.iter().map(|&index| effects[index].overlay()).collect();
                    let mismatches =
                        compiled.run_lanes(packed, &overlays, event_driven, &mut stats);
                    for (&index, mismatch) in word.iter().zip(mismatches) {
                        results[index] = (mismatch.is_some(), mismatch);
                    }
                }
            }
        }
    }

    let outcomes = faults
        .iter()
        .zip(effects)
        .zip(results)
        .map(
            |((bits, effect), (wrong_answer, first_error_cycle))| FaultOutcome {
                bit: bits[0],
                class: effect.class(),
                wrong_answer,
                first_error_cycle,
                crosses_domains: effect.crosses_domains(),
                bits: effect.into_bits(),
            },
        )
        .collect();
    (outcomes, simulated, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignBuilder;
    use tmr_core::{apply_tmr, TmrConfig};
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap, Design};

    fn implement(design: &Design, device: &Device, seed: u64) -> RoutedDesign {
        let netlist = techmap(&optimize(&lower(design).unwrap())).unwrap();
        place_and_route(device, &netlist, seed).unwrap()
    }

    #[test]
    fn unprotected_design_is_vulnerable() {
        let device = Device::small(5, 5);
        let routed = implement(&counter(4), &device, 5);
        let result = CampaignBuilder::new()
            .faults(400)
            .cycles(12)
            .sequential()
            .run(&device, &routed)
            .unwrap();
        assert_eq!(result.injected(), 400.min(result.fault_list_size));
        assert!(
            result.wrong_answer_percent() > 10.0,
            "an unprotected design must show a substantial error rate, got {:.2}%",
            result.wrong_answer_percent()
        );
        // Classifications of error-causing faults must be dominated by routing.
        let errors = result.error_classification();
        let routing_errors: usize = errors
            .iter()
            .filter(|(class, _)| class.is_general_routing())
            .map(|(_, n)| n)
            .sum();
        assert!(routing_errors > 0);
        assert!(result.to_string().contains("injected"));
    }

    #[test]
    fn tmr_reduces_the_error_rate() {
        let device = Device::small(8, 8);
        let base = counter(4);
        let plain = implement(&base, &device, 5);
        let tmr_design = apply_tmr(&base, &TmrConfig::paper_p2()).unwrap();
        let tmr = implement(&tmr_design, &device, 5);

        let campaign = CampaignBuilder::new().faults(500).cycles(12).sequential();
        let plain_result = campaign.clone().run(&device, &plain).unwrap();
        let tmr_result = campaign.run(&device, &tmr).unwrap();
        assert!(
            tmr_result.wrong_answer_percent() < plain_result.wrong_answer_percent() / 2.0,
            "TMR ({:.2}%) must be substantially more robust than the plain design ({:.2}%)",
            tmr_result.wrong_answer_percent(),
            plain_result.wrong_answer_percent()
        );
    }

    #[test]
    fn lut_upsets_never_defeat_tmr() {
        let device = Device::small(8, 8);
        let tmr_design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let tmr = implement(&tmr_design, &device, 5);
        let result = CampaignBuilder::new()
            .faults(800)
            .cycles(12)
            .sequential()
            .run(&device, &tmr)
            .unwrap();
        let errors = result.error_classification();
        assert_eq!(
            errors.get(&FaultClass::Lut).copied().unwrap_or(0),
            0,
            "a single-domain LUT upset must always be voted out: {errors:?}"
        );
    }

    #[test]
    fn campaigns_are_reproducible() {
        let device = Device::small(5, 5);
        let routed = implement(&counter(4), &device, 5);
        let campaign = CampaignBuilder::new().faults(100).cycles(8).sequential();
        let a = campaign.clone().run(&device, &routed).unwrap();
        let b = campaign.run(&device, &routed).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn interpreter_backend_matches_the_compiled_default() {
        let device = Device::small(5, 5);
        let routed = implement(&counter(4), &device, 5);
        let campaign = CampaignBuilder::new().faults(60).cycles(6).sequential();
        let compiled = campaign
            .clone()
            .backend(SimBackend::Compiled)
            .run(&device, &routed)
            .unwrap();
        let interpreted = campaign
            .backend(SimBackend::Interpreter)
            .run(&device, &routed)
            .unwrap();
        assert_eq!(compiled, interpreted);
    }

    #[test]
    fn options_accessors_and_with_setters_round_trip() {
        let options = CampaignOptions::default()
            .with_faults(7)
            .with_cycles(3)
            .with_stimulus_seed(11)
            .with_sampling_seed(13)
            .restrict_to([9, 4, 4]);
        assert_eq!(options.faults(), 7);
        assert_eq!(options.cycles(), 3);
        assert_eq!(options.stimulus_seed(), 11);
        assert_eq!(options.sampling_seed(), 13);
        assert_eq!(options.simulate_only(), Some(&[4, 9][..]));
    }
}
