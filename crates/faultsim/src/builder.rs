//! The campaign builder: the one documented way to configure fault-injection
//! campaigns.
//!
//! [`CampaignBuilder`] replaces the field-mutation construction style of
//! [`CampaignOptions`] (whose fields are no longer public) with a fluent
//! builder that also carries the execution knobs the options struct never
//! could: shard count, streaming batch size, statistical early stop and a
//! precomputed golden run for cross-campaign trace reuse.

use crate::{
    CampaignEngine, CampaignOptions, CampaignResult, CampaignSession, EarlyStop, FaultModel,
    SimBackend,
};
use std::sync::Arc;
use tmr_arch::{Device, MbuPattern};
use tmr_netlist::Domain;
use tmr_pnr::RoutedDesign;
use tmr_sim::{CompiledNetlist, GoldenRun, SimError};

/// Fluent configuration for fault-injection campaigns.
///
/// ```no_run
/// use tmr_arch::Device;
/// # fn routed() -> tmr_pnr::RoutedDesign { unimplemented!() }
/// use tmr_faultsim::{CampaignBuilder, EarlyStop};
///
/// let device = Device::small(8, 8);
/// let routed = routed();
/// let result = CampaignBuilder::new()
///     .faults(4000)
///     .cycles(24)
///     .shards(4)
///     .early_stop(EarlyStop::at_half_width(0.01))
///     .run(&device, &routed)
///     .expect("flow netlists are always simulable");
/// println!("{result}");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CampaignBuilder {
    options: CampaignOptions,
    shards: Option<usize>,
    batch_size: Option<usize>,
    early_stop: Option<EarlyStop>,
    golden: Option<Arc<GoldenRun>>,
    compiled: Option<Arc<CompiledNetlist>>,
    backend: Option<SimBackend>,
}

impl CampaignBuilder {
    /// Starts from the default options (2000 faults, 24 cycles, the paper
    /// seeds).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from existing options (migration path for code still holding a
    /// [`CampaignOptions`]).
    pub fn from_options(options: CampaignOptions) -> Self {
        Self {
            options,
            ..Self::default()
        }
    }

    /// Number of faults to inject (drawn randomly from the fault list).
    #[must_use]
    pub fn faults(mut self, faults: usize) -> Self {
        self.options.faults = faults;
        self
    }

    /// Number of clock cycles of stimulus applied per fault.
    #[must_use]
    pub fn cycles(mut self, cycles: usize) -> Self {
        self.options.cycles = cycles;
        self
    }

    /// Seed of the pseudo-random input stimulus.
    #[must_use]
    pub fn stimulus_seed(mut self, seed: u64) -> Self {
        self.options.stimulus_seed = seed;
        self
    }

    /// Seed of the fault-sampling shuffle.
    #[must_use]
    pub fn sampling_seed(mut self, seed: u64) -> Self {
        self.options.sampling_seed = seed;
        self
    }

    /// The fault model: what one injected fault is — a single-bit upset (the
    /// default), a geometric multi-bit cluster, or the upsets accumulated
    /// over one scrub interval. See [`FaultModel`]. Degenerate 1-bit
    /// spellings canonicalize to [`FaultModel::SingleBit`] (see
    /// [`CampaignOptions::with_fault_model`]), so cached results are shared
    /// between them.
    #[must_use]
    pub fn fault_model(mut self, model: FaultModel) -> Self {
        self.options = self.options.with_fault_model(model);
        self
    }

    /// Shorthand for [`CampaignBuilder::fault_model`] with
    /// [`FaultModel::Mbu`]: every fault is one geometry-aware multi-bit
    /// upset of this cluster shape.
    #[must_use]
    pub fn mbu(self, pattern: MbuPattern) -> Self {
        self.fault_model(FaultModel::Mbu { pattern })
    }

    /// Shorthand for [`CampaignBuilder::fault_model`] with
    /// [`FaultModel::Accumulate`]: every fault is one scrub interval
    /// accumulating this many upsets before the device is evaluated and
    /// scrubbed.
    #[must_use]
    pub fn accumulate(self, upsets_per_scrub: usize) -> Self {
        self.fault_model(FaultModel::Accumulate { upsets_per_scrub })
    }

    /// Restricts simulation to the given bits; see
    /// [`CampaignOptions::simulate_only`].
    #[must_use]
    pub fn restrict_to(mut self, bits: impl IntoIterator<Item = usize>) -> Self {
        self.options = self.options.restrict_to(bits);
        self
    }

    /// Installs single-domain tags justifying multi-bit pruning; see
    /// [`CampaignOptions::maskable_domains`].
    #[must_use]
    pub fn maskable_domains(mut self, tags: impl IntoIterator<Item = (usize, Domain)>) -> Self {
        self.options = self.options.with_maskable_domains(tags);
        self
    }

    /// Explicit worker-shard count (default: one shard per CPU core).
    /// Results are bit-identical for any shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Forces single-shard execution on the calling thread (the sequential
    /// reference path).
    #[must_use]
    pub fn sequential(self) -> Self {
        self.shards(1)
    }

    /// Number of faults per streaming batch (default: the whole sample in
    /// one batch). Smaller batches give finer progress reporting and
    /// earlier stopping at the cost of more cross-batch synchronisation.
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size.max(1));
        self
    }

    /// Installs a statistical stopping rule, checked between batches; see
    /// [`EarlyStop`]. Implies a default batch size of 128 when none is set
    /// (a whole-sample batch would never get to stop early).
    #[must_use]
    pub fn early_stop(mut self, rule: EarlyStop) -> Self {
        self.early_stop = Some(rule);
        self
    }

    /// Reuses a precomputed golden run (stimulus, fault-free trace, output
    /// voting) instead of recomputing it. The run must have been computed
    /// with [`GoldenRun::compute`] on this design's netlist with the same
    /// `cycles` and `stimulus_seed` as this campaign — the engine asserts
    /// the cycle count matches.
    #[must_use]
    pub fn golden(mut self, golden: Arc<GoldenRun>) -> Self {
        self.golden = Some(golden);
        self
    }

    /// Reuses a precompiled instruction stream (the facade's cached
    /// `compiled` pipeline stage) instead of levelizing the netlist per
    /// session. Must have been compiled from this design's netlist.
    #[must_use]
    pub fn compiled(mut self, compiled: Arc<CompiledNetlist>) -> Self {
        self.compiled = Some(compiled);
        self
    }

    /// Overrides the simulation backend. The default is
    /// [`SimBackend::from_env`]: the compiled bit-parallel engine unless
    /// `TMR_SIM=interp` selects the interpreting oracle. Outcomes are
    /// bit-identical either way; only throughput differs.
    #[must_use]
    pub fn backend(mut self, backend: SimBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Installs `config` as the process-global trace configuration (the
    /// tracer is a process singleton, so this affects every instrumented
    /// layer, not just this campaign). Equivalent to calling
    /// [`tmr_trace::configure`] directly; provided here so campaign code can
    /// opt into tracing without importing the trace crate. Campaign results
    /// are bit-identical with tracing on, off, or at any sink.
    #[must_use]
    pub fn trace(self, config: tmr_trace::TraceConfig) -> Self {
        tmr_trace::configure(config);
        self
    }

    /// The accumulated campaign options.
    pub fn options(&self) -> &CampaignOptions {
        &self.options
    }

    /// The installed early-stop rule, if any.
    pub fn early_stop_rule(&self) -> Option<&EarlyStop> {
        self.early_stop.as_ref()
    }

    /// The explicitly configured backend, if any — the effective backend is
    /// `backend_hint().unwrap_or_else(SimBackend::from_env)`. The facade
    /// uses this to skip compiling the instruction stream for
    /// interpreter-only runs.
    pub fn backend_hint(&self) -> Option<SimBackend> {
        self.backend
    }

    /// The configured streaming batch size, if any. Together with the
    /// options and the early-stop rule this is everything that can change a
    /// campaign's *outcomes* (an early stop lands on a batch boundary);
    /// shard count and golden-run reuse never do.
    pub fn batch_size_hint(&self) -> Option<usize> {
        self.batch_size
    }

    /// Finishes the builder into plain [`CampaignOptions`] (dropping the
    /// execution knobs: shards, batch size, early stop, golden run).
    pub fn build(self) -> CampaignOptions {
        self.options
    }

    /// Builds a batch [`CampaignEngine`] over one routed design.
    pub fn engine<'a>(&self, device: &'a Device, routed: &'a RoutedDesign) -> CampaignEngine<'a> {
        let mut engine = CampaignEngine::new(device, routed, self.options.clone());
        if let Some(shards) = self.shards {
            engine = engine.with_shards(shards);
        }
        if let Some(golden) = &self.golden {
            engine = engine.with_golden(golden.clone());
        }
        if let Some(compiled) = &self.compiled {
            engine = engine.with_compiled(compiled.clone());
        }
        if let Some(backend) = self.backend {
            engine = engine.with_backend(backend);
        }
        engine
    }

    /// Builds a streaming [`CampaignSession`] over one routed design.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist cannot be simulated
    /// (combinational loop), which cannot happen for designs produced by the
    /// `tmr-synth` flow.
    pub fn session<'a>(
        &self,
        device: &'a Device,
        routed: &'a RoutedDesign,
    ) -> Result<CampaignSession<'a>, SimError> {
        let mut session = self.engine(device, routed).session()?;
        if let Some(batch_size) = self.batch_size {
            session = session.with_batch_size(batch_size);
        } else if self.early_stop.is_some() {
            session = session.with_batch_size(128);
        }
        if let Some(rule) = self.early_stop {
            session = session.with_early_stop(rule);
        }
        Ok(session)
    }

    /// Runs the campaign to completion (or to the early-stop point) and
    /// returns the result. Equivalent to draining
    /// [`CampaignBuilder::session`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist cannot be simulated
    /// (combinational loop).
    pub fn run(&self, device: &Device, routed: &RoutedDesign) -> Result<CampaignResult, SimError> {
        Ok(self.session(device, routed)?.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_options() {
        let builder = CampaignBuilder::new()
            .faults(9)
            .cycles(5)
            .stimulus_seed(2)
            .sampling_seed(3)
            .restrict_to([8, 1]);
        let options = builder.clone().build();
        assert_eq!(options.faults(), 9);
        assert_eq!(options.cycles(), 5);
        assert_eq!(options.stimulus_seed(), 2);
        assert_eq!(options.sampling_seed(), 3);
        assert_eq!(options.simulate_only(), Some(&[1, 8][..]));
        assert_eq!(builder.options(), &options);
    }

    #[test]
    fn from_options_round_trips() {
        let options = CampaignOptions::default().with_faults(77);
        assert_eq!(
            CampaignBuilder::from_options(options.clone()).build(),
            options
        );
    }

    #[test]
    fn early_stop_rule_is_exposed() {
        let rule = EarlyStop::at_half_width(0.02);
        let builder = CampaignBuilder::new().early_stop(rule);
        assert_eq!(builder.early_stop_rule(), Some(&rule));
        assert_eq!(CampaignBuilder::new().early_stop_rule(), None);
    }
}
