//! The streaming campaign session: incremental batches, progress reporting
//! and statistical early stop.
//!
//! A [`CampaignSession`] runs the *same* experiment sequence as the batch
//! [`CampaignEngine`](crate::CampaignEngine) — the same sampled fault list,
//! in the same order, against the same golden run — but yields outcomes in
//! contiguous batches instead of one final result. Because every per-fault
//! outcome is a pure function of `(bit, golden run)`, the outcomes produced
//! by a session are **bit-identical to the matching prefix of the full batch
//! run**, no matter where the session stops or how many worker shards it
//! uses. That prefix property is what makes early stopping sound: halting
//! after `n` faults gives exactly the first `n` outcomes the full campaign
//! would have produced.
//!
//! Early stopping itself is statistical: the campaign estimates the
//! wrong-answer rate, and once the confidence interval around that estimate
//! is tighter than a configured bound ([`EarlyStop`]) the remaining faults
//! add no decision-relevant information — the paper's Table 3 compares rates
//! like 0.98 % vs 4.03 %, which separate long before the full fault list is
//! exhausted.

use crate::campaign::{run_shard, ShardContext};
use crate::{CampaignResult, FaultOutcome, SimBackend};
use std::sync::Arc;
use tmr_arch::Device;
use tmr_netlist::Domain;
use tmr_pnr::RoutedDesign;
use tmr_sim::{CompiledNetlist, GoldenRun, PackedGolden, SimStats, Simulator};

/// A statistical stopping rule for streaming campaigns: halt once the
/// confidence interval of the wrong-answer rate is tighter than a bound.
///
/// The interval uses the Agresti–Coull adjustment (add `z²` pseudo-trials,
/// half of them successes — "+2 successes, +2 failures" at 95 % — before
/// computing the Wald interval), which keeps the width honest when no wrong
/// answer has been observed yet — the plain Wald interval collapses to zero
/// width at `p̂ = 0` and would stop a TMR campaign after its very first
/// batch.
///
/// ```
/// use tmr_faultsim::EarlyStop;
///
/// // Stop once the 95 % CI of the wrong-answer rate is within ±1 %.
/// let rule = EarlyStop::at_half_width(0.01);
/// assert_eq!(rule.half_width(), 0.01);
/// assert!(!rule.satisfied(10, 2)); // far too few injections
/// assert!(rule.satisfied(10_000, 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    half_width: f64,
    confidence_z: f64,
    min_injected: usize,
}

impl EarlyStop {
    /// Stops once the confidence-interval half-width of the wrong-answer
    /// *rate* (a fraction in `[0, 1]`) drops to `half_width` or below, with
    /// the defaults of a 95 % interval (`z = 1.96`) and at least 100
    /// injected faults.
    pub fn at_half_width(half_width: f64) -> Self {
        Self {
            half_width,
            confidence_z: 1.96,
            min_injected: 100,
        }
    }

    /// Replaces the normal-quantile `z` of the interval (1.96 ≈ 95 %,
    /// 2.58 ≈ 99 %).
    #[must_use]
    pub fn with_confidence_z(mut self, z: f64) -> Self {
        self.confidence_z = z;
        self
    }

    /// Replaces the minimum number of injected faults before the rule may
    /// fire (guards against stopping on the noise of the first batches).
    #[must_use]
    pub fn with_min_injected(mut self, min_injected: usize) -> Self {
        self.min_injected = min_injected;
        self
    }

    /// The target half-width.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// The normal quantile of the interval.
    pub fn confidence_z(&self) -> f64 {
        self.confidence_z
    }

    /// The minimum injections before stopping is allowed.
    pub fn min_injected(&self) -> usize {
        self.min_injected
    }

    /// The Agresti–Coull half-width of the wrong-answer-rate interval after
    /// observing `wrong` wrong answers in `injected` injections.
    pub fn interval_half_width(&self, injected: usize, wrong: usize) -> f64 {
        adjusted_half_width(self.confidence_z, injected, wrong)
    }

    /// Whether the rule fires for the given tally.
    pub fn satisfied(&self, injected: usize, wrong: usize) -> bool {
        injected >= self.min_injected
            && self.interval_half_width(injected, wrong) <= self.half_width
    }
}

/// Agresti–Coull (adjusted Wald) confidence-interval half-width for a
/// binomial proportion: `z²` pseudo-trials, half successes, are added
/// before computing the Wald interval (the familiar "+2 successes, +2
/// failures" is the `z = 1.96` case).
fn adjusted_half_width(z: f64, injected: usize, wrong: usize) -> f64 {
    if injected == 0 {
        return f64::INFINITY;
    }
    let n = injected as f64 + z * z;
    let p = (wrong as f64 + z * z / 2.0) / n;
    z * (p * (1.0 - p) / n).sqrt()
}

/// A point-in-time summary of a running session, for progress reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionProgress {
    /// Faults injected so far.
    pub injected: usize,
    /// Total faults the session would inject if never stopped.
    pub planned: usize,
    /// Wrong answers observed so far.
    pub wrong_answers: usize,
    /// Simulations actually run so far (see
    /// [`CampaignResult::simulated`]).
    pub simulated: usize,
    /// Current wrong-answer rate estimate (0 before the first injection).
    pub wrong_answer_rate: f64,
}

/// A fault-injection campaign that yields outcomes incrementally.
///
/// Created by [`CampaignBuilder::session`](crate::CampaignBuilder::session)
/// or [`CampaignEngine::session`](crate::CampaignEngine::session). Drive it
/// with [`CampaignSession::next_batch`] (progress bars, dashboards, custom
/// stopping rules) or let [`CampaignSession::run`] drain it; either way the
/// accumulated outcomes are the exact prefix the batch engine would produce.
///
/// ```no_run
/// use tmr_arch::Device;
/// # fn routed() -> tmr_pnr::RoutedDesign { unimplemented!() }
/// use tmr_faultsim::{CampaignBuilder, EarlyStop};
///
/// let device = Device::small(8, 8);
/// let routed = routed();
/// let mut session = CampaignBuilder::new()
///     .faults(4000)
///     .batch_size(200)
///     .early_stop(EarlyStop::at_half_width(0.01))
///     .session(&device, &routed)
///     .expect("flow netlists are always simulable");
/// while let Some(batch) = session.next_batch() {
///     let injected = batch.len();
///     eprintln!("{injected} more faults, {:?}", session.progress());
/// }
/// let result = session.into_result();
/// println!("{result}");
/// ```
pub struct CampaignSession<'a> {
    device: &'a Device,
    routed: &'a RoutedDesign,
    simulator: Option<Simulator<'a>>,
    golden: Arc<GoldenRun>,
    backend: SimBackend,
    compiled: Option<Arc<CompiledNetlist>>,
    packed: Option<Arc<PackedGolden>>,
    simulate_only: Option<Arc<[usize]>>,
    maskable: Option<Arc<[(usize, Domain)]>>,
    design: String,
    fault_list_size: usize,
    sample: Vec<Vec<usize>>,
    shards: usize,
    batch_size: usize,
    early_stop: Option<EarlyStop>,
    cursor: usize,
    stopped_early: bool,
    outcomes: Vec<FaultOutcome>,
    wrong_answers: usize,
    simulated: usize,
    stats: SimStats,
}

impl<'a> CampaignSession<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        device: &'a Device,
        routed: &'a RoutedDesign,
        simulator: Option<Simulator<'a>>,
        golden: Arc<GoldenRun>,
        backend: SimBackend,
        compiled: Option<Arc<CompiledNetlist>>,
        packed: Option<Arc<PackedGolden>>,
        simulate_only: Option<Arc<[usize]>>,
        maskable: Option<Arc<[(usize, Domain)]>>,
        fault_list_size: usize,
        sample: Vec<Vec<usize>>,
        shards: usize,
    ) -> Self {
        let batch_size = sample.len().max(1);
        Self {
            device,
            routed,
            simulator,
            golden,
            backend,
            compiled,
            packed,
            simulate_only,
            maskable,
            design: routed.netlist().name().to_string(),
            fault_list_size,
            sample,
            shards: shards.max(1),
            batch_size,
            early_stop: None,
            cursor: 0,
            stopped_early: false,
            outcomes: Vec::new(),
            wrong_answers: 0,
            simulated: 0,
            stats: SimStats::default(),
        }
    }

    /// Sets the number of faults injected per [`CampaignSession::next_batch`]
    /// call (clamped to at least 1). The default is the whole remaining
    /// sample — one batch, like the batch engine.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Installs a statistical stopping rule, checked between batches.
    #[must_use]
    pub fn with_early_stop(mut self, rule: EarlyStop) -> Self {
        self.early_stop = Some(rule);
        self
    }

    /// Seeds the session with the outcomes of a previous, interrupted run of
    /// the *same* campaign: the cursor skips the already-injected prefix and
    /// the next batch continues exactly where the previous session stopped.
    ///
    /// Because outcomes are a pure function of fault-list position (the
    /// exact-prefix guarantee), a session resumed from a persisted prefix is
    /// bit-identical to one that ran uninterrupted — this is the primitive
    /// under crash-resumable campaign services. The caller is responsible for
    /// only replaying a prefix produced by identical campaign options (the
    /// store keys prefixes by the campaign fingerprint for exactly this
    /// reason).
    ///
    /// # Panics
    ///
    /// Panics if the prefix is longer than the sampled fault list, or if
    /// batches have already been run on this session.
    #[must_use]
    pub fn with_prefix(
        mut self,
        outcomes: Vec<FaultOutcome>,
        simulated: usize,
        stats: SimStats,
    ) -> Self {
        assert_eq!(
            self.cursor, 0,
            "prefix must be installed before batches run"
        );
        assert!(
            outcomes.len() <= self.sample.len(),
            "prefix ({} outcomes) exceeds the sampled fault list ({})",
            outcomes.len(),
            self.sample.len()
        );
        self.cursor = outcomes.len();
        self.wrong_answers = outcomes.iter().filter(|o| o.wrong_answer).count();
        self.simulated = simulated;
        self.stats = stats;
        self.outcomes = outcomes;
        self
    }

    /// Injects the next batch of faults and returns their outcomes (a slice
    /// into the accumulated outcome vector), or `None` when the session is
    /// finished — either because the sampled fault list is exhausted or
    /// because the early-stop rule fired.
    pub fn next_batch(&mut self) -> Option<&[FaultOutcome]> {
        if self.cursor >= self.sample.len() || self.stopped_early {
            return None;
        }
        if let Some(rule) = &self.early_stop {
            if rule.satisfied(self.outcomes.len(), self.wrong_answers) {
                self.stopped_early = true;
                if tmr_trace::enabled() {
                    tmr_trace::event("campaign.early_stop")
                        .attr("design", self.design.as_str())
                        .attr("injected", self.outcomes.len())
                        .attr("wrong_answers", self.wrong_answers)
                        .attr("ci_half_width", self.ci_half_width())
                        .attr("target_half_width", rule.half_width());
                }
                return None;
            }
        }
        let start = self.cursor;
        let end = (start + self.batch_size).min(self.sample.len());
        self.cursor = end;
        let mut batch_span = tmr_trace::span("campaign.batch");
        let backends = BackendRefs {
            backend: self.backend,
            compiled: self.compiled.as_deref(),
            packed: self.packed.as_deref(),
        };
        let (outcomes, simulated, stats) = run_faults(
            self.device,
            self.routed,
            self.simulator.as_ref(),
            &self.golden,
            backends,
            self.simulate_only.as_deref(),
            self.maskable.as_deref(),
            self.shards,
            &self.sample[start..end],
        );
        self.wrong_answers += outcomes.iter().filter(|o| o.wrong_answer).count();
        self.simulated += simulated;
        self.stats.merge(&stats);
        self.outcomes.extend(outcomes);
        if tmr_trace::enabled() {
            batch_span.attr("design", self.design.as_str());
            batch_span.attr("faults", end - start);
            batch_span.attr("injected", self.outcomes.len());
            batch_span.attr("wrong_answers", self.wrong_answers);
            batch_span.attr("ci_half_width", self.ci_half_width());
        }
        Some(&self.outcomes[start..end])
    }

    /// Drains the session (respecting the early-stop rule, if any) and
    /// returns the accumulated result.
    pub fn run(mut self) -> CampaignResult {
        while self.next_batch().is_some() {}
        self.into_result()
    }

    /// Wraps whatever has been injected so far into a [`CampaignResult`]
    /// without running further batches. The outcomes are the exact prefix of
    /// the full batch run over the same options.
    pub fn into_result(self) -> CampaignResult {
        CampaignResult {
            design: self.design,
            fault_list_size: self.fault_list_size,
            simulated: self.simulated,
            outcomes: self.outcomes,
            stats: self.stats,
        }
    }

    /// The engine observability counters accumulated so far (all zero on the
    /// interpreter backend).
    pub fn sim_stats(&self) -> SimStats {
        self.stats
    }

    /// Progress so far.
    pub fn progress(&self) -> SessionProgress {
        let injected = self.outcomes.len();
        SessionProgress {
            injected,
            planned: self.sample.len(),
            wrong_answers: self.wrong_answers,
            simulated: self.simulated,
            wrong_answer_rate: if injected == 0 {
                0.0
            } else {
                self.wrong_answers as f64 / injected as f64
            },
        }
    }

    /// The current confidence-interval half-width of the wrong-answer rate
    /// under the session's early-stop rule (or a default 95 % rule when none
    /// is installed).
    pub fn ci_half_width(&self) -> f64 {
        let z = self
            .early_stop
            .map(|rule| rule.confidence_z())
            .unwrap_or(1.96);
        adjusted_half_width(z, self.outcomes.len(), self.wrong_answers)
    }

    /// `true` once the session will yield no further batches.
    pub fn is_finished(&self) -> bool {
        self.stopped_early || self.cursor >= self.sample.len()
    }

    /// `true` if the early-stop rule ended the session before the sample was
    /// exhausted.
    pub fn stopped_early(&self) -> bool {
        self.stopped_early
    }

    /// Faults remaining in the sampled list.
    pub fn remaining(&self) -> usize {
        self.sample.len() - self.cursor
    }
}

/// The shared simulation-backend state handed to every worker shard.
#[derive(Clone, Copy)]
struct BackendRefs<'a> {
    backend: SimBackend,
    compiled: Option<&'a CompiledNetlist>,
    packed: Option<&'a PackedGolden>,
}

/// Injects `faults` (a contiguous slice of the sampled fault list) across
/// `shards` worker threads and merges the outcomes in slice order.
///
/// This is the sharding core shared by every execution mode and every fault
/// model: chunk boundaries depend only on the slice length and shard count,
/// and per-shard outcome vectors are concatenated in chunk order — never in
/// thread-completion order — which reproduces slice order (= fault-list
/// order) exactly, so the merged outcomes are independent of the thread
/// schedule. Each shard additionally packs its faults into cone-grouped lane
/// words on the compiled backend; word boundaries live entirely inside a
/// shard, so they never affect the merged order either. The per-shard
/// [`SimStats`] blocks merge commutatively, so the counters are
/// shard-schedule-independent too.
#[allow(clippy::too_many_arguments)]
fn run_faults(
    device: &Device,
    routed: &RoutedDesign,
    simulator: Option<&Simulator<'_>>,
    golden: &GoldenRun,
    backends: BackendRefs<'_>,
    simulate_only: Option<&[usize]>,
    maskable: Option<&[(usize, Domain)]>,
    shards: usize,
    faults: &[Vec<usize>],
) -> (Vec<FaultOutcome>, usize, SimStats) {
    let shard_count = shards.min(faults.len()).max(1);
    if shard_count == 1 {
        let ctx = ShardContext {
            device,
            routed,
            simulator: simulator.cloned(),
            golden,
            simulate_only,
            maskable,
            backend: backends.backend,
            compiled: backends.compiled,
            packed: backends.packed,
        };
        let (outcomes, simulated, stats) = traced_shard(0, &ctx, faults);
        attach_merged_stats(simulated, &stats);
        return (outcomes, simulated, stats);
    }
    let chunk = faults.len().div_ceil(shard_count);
    // Captured before spawning so every worker's spans merge under the span
    // open on the coordinating thread (the session's `campaign.batch`).
    let trace_parent = tmr_trace::current_span();
    let shard_results: Vec<(Vec<FaultOutcome>, usize, SimStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = faults
            .chunks(chunk)
            .enumerate()
            .map(|(index, chunk_faults)| {
                let ctx = ShardContext {
                    device,
                    routed,
                    simulator: simulator.cloned(),
                    golden,
                    simulate_only,
                    maskable,
                    backend: backends.backend,
                    compiled: backends.compiled,
                    packed: backends.packed,
                };
                scope.spawn(move || {
                    let _task = tmr_trace::enabled()
                        .then(|| tmr_trace::task(format!("shard-{index:02}"), trace_parent));
                    traced_shard(index, &ctx, chunk_faults)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("campaign worker thread panicked"))
            .collect()
    });
    let mut merged = Vec::with_capacity(faults.len());
    let mut simulated = 0;
    let mut stats = SimStats::default();
    for (mut shard, shard_simulated, shard_stats) in shard_results {
        merged.append(&mut shard);
        simulated += shard_simulated;
        stats.merge(&shard_stats);
    }
    attach_merged_stats(simulated, &stats);
    (merged, simulated, stats)
}

/// Runs one shard inside a `campaign.shard` span carrying the shard index,
/// fault count and achieved faults/sec.
fn traced_shard(
    index: usize,
    ctx: &ShardContext<'_>,
    faults: &[Vec<usize>],
) -> (Vec<FaultOutcome>, usize, SimStats) {
    if !tmr_trace::enabled() {
        return run_shard(ctx, faults);
    }
    let mut span = tmr_trace::span("campaign.shard");
    span.attr("shard", index);
    span.attr("faults", faults.len());
    let started = std::time::Instant::now();
    let result = run_shard(ctx, faults);
    let seconds = started.elapsed().as_secs_f64();
    if seconds > 0.0 {
        span.attr("faults_per_sec", faults.len() as f64 / seconds);
    }
    span.attr("simulated", result.1);
    span.attr("lanes_simulated", result.2.lanes_simulated);
    result
}

/// Attaches the merged engine counters of one `run_faults` call to the
/// innermost open span — the session's `campaign.batch` — so a trace shows
/// the merged `SimStats` next to the batch that produced them.
fn attach_merged_stats(simulated: usize, stats: &SimStats) {
    if !tmr_trace::enabled() {
        return;
    }
    tmr_trace::attr_current("simulated", simulated);
    tmr_trace::attr_current("sim.levels_evaluated", stats.levels_evaluated);
    tmr_trace::attr_current("sim.levels_skipped", stats.levels_skipped);
    tmr_trace::attr_current("sim.ops_evaluated", stats.ops_evaluated);
    tmr_trace::attr_current("sim.lanes_simulated", stats.lanes_simulated);
    tmr_trace::attr_current("sim.lanes_retired_early", stats.lanes_retired_early);
    tmr_trace::attr_current("sim.cone_dedup_hits", stats.cone_dedup_hits);
    tmr_trace::counter_add("campaign.faults_simulated", simulated as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignBuilder;
    use tmr_core::{apply_tmr, TmrConfig};
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_counter(protect: bool) -> (Device, RoutedDesign) {
        let device = Device::small(8, 8);
        let design = if protect {
            apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap()
        } else {
            counter(4)
        };
        let netlist = techmap(&optimize(&lower(&design).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        (device, routed)
    }

    #[test]
    fn batches_accumulate_to_the_batch_engine_result() {
        let (device, routed) = routed_counter(false);
        let campaign = CampaignBuilder::new().faults(120).cycles(8);
        let reference = campaign.clone().sequential().run(&device, &routed).unwrap();

        let mut session = campaign.batch_size(17).session(&device, &routed).unwrap();
        let mut batches = 0;
        while let Some(batch) = session.next_batch() {
            assert!(batch.len() <= 17);
            batches += 1;
        }
        assert!(batches >= 7, "120 faults / 17 per batch needs 8 batches");
        assert!(session.is_finished());
        assert!(!session.stopped_early());
        assert_eq!(session.remaining(), 0);
        assert_eq!(session.into_result(), reference);
    }

    #[test]
    fn early_stop_yields_an_exact_prefix() {
        let (device, routed) = routed_counter(false);
        let campaign = CampaignBuilder::new().faults(400).cycles(8);
        let full = campaign.clone().sequential().run(&device, &routed).unwrap();

        // A loose bound on a vulnerable design stops well before exhaustion.
        let result = campaign
            .batch_size(40)
            .early_stop(EarlyStop::at_half_width(0.08).with_min_injected(40))
            .sequential()
            .run(&device, &routed)
            .unwrap();
        assert!(
            result.injected() < full.injected(),
            "the loose bound must stop early ({} of {})",
            result.injected(),
            full.injected()
        );
        assert_eq!(
            result.outcomes[..],
            full.outcomes[..result.injected()],
            "an early-stopped session must equal the matching prefix of the full run"
        );
        assert!(
            result.injected().is_multiple_of(40),
            "stops on batch boundaries"
        );
    }

    #[test]
    fn early_stop_needs_the_minimum_injections() {
        let rule = EarlyStop::at_half_width(0.5);
        assert!(!rule.satisfied(99, 0), "min_injected gate");
        assert!(rule.satisfied(100, 0));
        // Tighter bounds need more data even at a rate of zero.
        let tight = EarlyStop::at_half_width(0.001);
        assert!(!tight.satisfied(100, 0));
        // The adjusted interval never reports zero width.
        assert!(tight.interval_half_width(1_000_000, 0) > 0.0);
        assert_eq!(tight.interval_half_width(0, 0), f64::INFINITY);
        // Confidence and minimum are configurable.
        let custom = EarlyStop::at_half_width(0.01)
            .with_confidence_z(2.58)
            .with_min_injected(10);
        assert_eq!(custom.confidence_z(), 2.58);
        assert_eq!(custom.min_injected(), 10);
        assert!(custom.interval_half_width(500, 5) > rule.interval_half_width(500, 5) * 1.2);
    }

    #[test]
    fn sharded_batches_match_sequential_batches() {
        let (device, routed) = routed_counter(true);
        let campaign = CampaignBuilder::new().faults(150).cycles(8).batch_size(32);
        let sequential = campaign
            .clone()
            .sequential()
            .session(&device, &routed)
            .unwrap()
            .run();
        for shards in [2, 3, 8] {
            let sharded = campaign
                .clone()
                .shards(shards)
                .session(&device, &routed)
                .unwrap()
                .run();
            assert_eq!(sequential, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn resumed_session_matches_uninterrupted_run() {
        let (device, routed) = routed_counter(true);
        let campaign = CampaignBuilder::new().faults(90).cycles(8).batch_size(20);
        let reference = campaign.clone().session(&device, &routed).unwrap().run();

        // Run two batches, "crash", and resume a fresh session from the
        // accumulated prefix.
        let mut first = campaign.clone().session(&device, &routed).unwrap();
        first.next_batch().unwrap();
        first.next_batch().unwrap();
        let stats = first.sim_stats();
        let partial = first.into_result();
        assert_eq!(partial.injected(), 40);

        let resumed = campaign
            .session(&device, &routed)
            .unwrap()
            .with_prefix(partial.outcomes, partial.simulated, stats)
            .run();
        assert_eq!(resumed, reference);
        assert_eq!(resumed.stats, reference.stats, "counters resume too");
    }

    #[test]
    fn full_prefix_yields_no_further_batches() {
        let (device, routed) = routed_counter(false);
        let campaign = CampaignBuilder::new().faults(50).cycles(6);
        let full = campaign.clone().session(&device, &routed).unwrap().run();
        let mut session = campaign
            .session(&device, &routed)
            .unwrap()
            .with_prefix(full.outcomes.clone(), full.simulated, full.stats)
            .with_batch_size(10);
        assert!(session.is_finished());
        assert!(session.next_batch().is_none());
        assert_eq!(session.into_result(), full);
    }

    #[test]
    fn progress_tracks_injections() {
        let (device, routed) = routed_counter(false);
        let mut session = CampaignBuilder::new()
            .faults(60)
            .cycles(6)
            .batch_size(25)
            .sequential()
            .session(&device, &routed)
            .unwrap();
        assert_eq!(session.progress().injected, 0);
        assert!(session.ci_half_width().is_infinite());
        session.next_batch().unwrap();
        let progress = session.progress();
        assert_eq!(progress.injected, 25);
        assert_eq!(progress.planned, 60.min(session.remaining() + 25));
        assert!(progress.wrong_answer_rate >= 0.0);
        assert!(session.ci_half_width() < 0.5);
    }
}
