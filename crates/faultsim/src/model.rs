//! The configuration-upset fault models: what one "fault" of a campaign is.
//!
//! The paper's experiment flips exactly one configuration bit per run
//! ([`FaultModel::SingleBit`]). Two generalizations unlock the scenarios
//! modern SRAM FPGAs actually face:
//!
//! * [`FaultModel::Mbu`] — one particle strike flips a small geometric
//!   *cluster* of adjacent configuration cells (adjacent offsets of one
//!   frame, adjacent frames at one offset, or a 2×2 tile), expanded through
//!   the device's [`tmr_arch::BitGeometry`];
//! * [`FaultModel::Accumulate`] — deployments rely on periodic configuration
//!   scrubbing, so the dependability question becomes "how many *accumulated*
//!   upsets between two scrubs does the design survive?": each experiment
//!   injects `upsets_per_scrub` independent upsets cumulatively, evaluates
//!   the device once, then scrubs back to the pristine bitstream.
//!
//! Both generalizations degenerate exactly to the single-bit model —
//! `Mbu { pattern: MbuPattern::Single }` and
//! `Accumulate { upsets_per_scrub: 1 }` sample the *same* fault sequence as
//! [`FaultModel::SingleBit`] for the same seed, which the differential test
//! harness (`tests/fault_models.rs`) pins down.

use std::fmt;
use tmr_arch::MbuPattern;

/// How one injected fault of a campaign perturbs the configuration memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Flip one configuration bit per experiment — the paper's Single Event
    /// Upset model and the default.
    #[default]
    SingleBit,
    /// Flip a geometry-aware cluster of adjacent bits per experiment (one
    /// multi-cell upset), anchored at a sampled design-related bit and
    /// expanded in the frame/offset plane.
    Mbu {
        /// The cluster shape.
        pattern: MbuPattern,
    },
    /// Flip `upsets_per_scrub` independently sampled bits *cumulatively*,
    /// evaluate the device once, then scrub — one experiment per scrub
    /// interval. A value of 0 is treated as 1.
    Accumulate {
        /// Number of upsets accumulating between two configuration scrubs.
        upsets_per_scrub: usize,
    },
}

impl FaultModel {
    /// The maximum number of bits one fault of this model flips (boundary
    /// clipping can make MBU clusters smaller).
    pub fn bits_per_fault(&self) -> usize {
        match *self {
            FaultModel::SingleBit => 1,
            FaultModel::Mbu { pattern } => pattern.size(),
            FaultModel::Accumulate { upsets_per_scrub } => upsets_per_scrub.max(1),
        }
    }

    /// Returns `true` when the model is behaviourally identical to
    /// [`FaultModel::SingleBit`] (a 1-bit MBU pattern or a 1-upset scrub
    /// interval).
    pub fn is_single_bit(&self) -> bool {
        self.bits_per_fault() == 1
    }

    /// Short label used in reports.
    pub fn label(&self) -> String {
        match *self {
            FaultModel::SingleBit => "single-bit".to_string(),
            FaultModel::Mbu { pattern } => format!("mbu({pattern})"),
            FaultModel::Accumulate { upsets_per_scrub } => {
                format!("accumulate({})", upsets_per_scrub.max(1))
            }
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_bit() {
        assert_eq!(FaultModel::default(), FaultModel::SingleBit);
        assert!(FaultModel::SingleBit.is_single_bit());
        assert_eq!(FaultModel::SingleBit.bits_per_fault(), 1);
    }

    #[test]
    fn degenerate_models_are_single_bit() {
        assert!(FaultModel::Mbu {
            pattern: MbuPattern::Single
        }
        .is_single_bit());
        assert!(FaultModel::Accumulate {
            upsets_per_scrub: 1
        }
        .is_single_bit());
        assert!(FaultModel::Accumulate {
            upsets_per_scrub: 0
        }
        .is_single_bit());
        assert!(!FaultModel::Mbu {
            pattern: MbuPattern::Tile2x2
        }
        .is_single_bit());
        assert_eq!(
            FaultModel::Accumulate {
                upsets_per_scrub: 5
            }
            .bits_per_fault(),
            5
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultModel::SingleBit.to_string(), "single-bit");
        assert_eq!(
            FaultModel::Mbu {
                pattern: MbuPattern::Tile2x2
            }
            .to_string(),
            "mbu(2x2)"
        );
        assert_eq!(
            FaultModel::Accumulate {
                upsets_per_scrub: 0
            }
            .to_string(),
            "accumulate(1)"
        );
    }
}
