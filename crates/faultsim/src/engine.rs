//! The parallel, sharded campaign engine.
//!
//! The paper's fault-injection campaign is embarrassingly parallel: every
//! experiment downloads a faulty bitstream into a freshly configured device,
//! runs the same stimulus and compares against the same golden trace — no
//! experiment depends on another. [`CampaignEngine`] exploits that:
//!
//! 1. the expensive shared state is computed **once** — the compiled
//!    [`Simulator`], the replayable [`Stimulus`], the golden trace, the
//!    output grouping and the sampled fault list;
//! 2. the sampled fault list is split into deterministic contiguous
//!    **shards**;
//! 3. each shard runs on its own [`std::thread::scope`] worker thread with
//!    its own `Simulator` clone (the levelization is reused, not recomputed)
//!    while the routed design, stimulus and golden trace are shared
//!    immutably;
//! 4. per-shard outcome vectors are concatenated in shard order, which *is*
//!    fault-list order — so the merged [`CampaignResult`] is bit-identical
//!    to the sequential one regardless of the shard count.
//!
//! Determinism is a hard requirement, not a nicety: Table 3/4 reproductions
//! and the regression tests compare whole result tables, and partition sweeps
//! must attribute differences to the design variant, never to the thread
//! schedule.

use crate::campaign::{run_shard, ShardContext};
use crate::{CampaignOptions, CampaignResult, FaultList, FaultOutcome};
use std::num::NonZeroUsize;
use tmr_arch::Device;
use tmr_pnr::RoutedDesign;
use tmr_sim::{FaultOverlay, OutputGroups, SimError, Simulator, Stimulus};

/// A configured fault-injection campaign over one routed design.
///
/// ```no_run
/// use tmr_arch::Device;
/// # fn routed() -> tmr_pnr::RoutedDesign { unimplemented!() }
/// use tmr_faultsim::{CampaignEngine, CampaignOptions};
///
/// let device = Device::small(8, 8);
/// let routed = routed();
/// let result = CampaignEngine::new(&device, &routed, CampaignOptions::default())
///     .with_shards(4)
///     .run()
///     .expect("flow netlists are always simulable");
/// println!("{result}");
/// ```
#[derive(Debug, Clone)]
pub struct CampaignEngine<'a> {
    device: &'a Device,
    routed: &'a RoutedDesign,
    options: CampaignOptions,
    shards: usize,
}

impl<'a> CampaignEngine<'a> {
    /// Creates an engine with one shard per available CPU core.
    pub fn new(device: &'a Device, routed: &'a RoutedDesign, options: CampaignOptions) -> Self {
        let shards = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            device,
            routed,
            options,
            shards,
        }
    }

    /// Sets an explicit shard count (clamped to at least 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Forces single-shard execution on the calling thread (the sequential
    /// reference path).
    #[must_use]
    pub fn sequential(self) -> Self {
        self.with_shards(1)
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The campaign options.
    pub fn options(&self) -> &CampaignOptions {
        &self.options
    }

    /// Runs the campaign and merges the per-shard outcomes in fault-list
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist cannot be simulated (combinational
    /// loop), which cannot happen for designs produced by the `tmr-synth`
    /// flow.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagating the worker's panic).
    pub fn run(&self) -> Result<CampaignResult, SimError> {
        let netlist = self.routed.netlist();
        // Shared immutable state, computed once for all shards.
        let simulator = Simulator::new(netlist)?;
        let stimulus = Stimulus::random(netlist, self.options.cycles, self.options.stimulus_seed);
        let golden = simulator.run_stimulus(&stimulus, &FaultOverlay::none());
        // Triplicated outputs are voted in the output logic block (at the
        // pads), outside the reach of configuration upsets, before comparison.
        let output_groups = OutputGroups::new(netlist);

        let fault_list = FaultList::build(self.device, self.routed);
        let sample = fault_list.sample(self.options.faults, self.options.sampling_seed);
        let simulate_only = self.options.simulate_only.as_deref();

        let shard_count = self.shards.min(sample.len()).max(1);
        let (outcomes, simulated): (Vec<FaultOutcome>, usize) = if shard_count == 1 {
            let ctx = ShardContext {
                device: self.device,
                routed: self.routed,
                simulator,
                stimulus: &stimulus,
                golden: &golden,
                output_groups: &output_groups,
                simulate_only,
            };
            run_shard(&ctx, &sample)
        } else {
            // Contiguous shards: chunk boundaries depend only on the sample
            // length and shard count, and concatenating chunk results in
            // chunk order reproduces fault-list order exactly.
            let chunk = sample.len().div_ceil(shard_count);
            let shard_results: Vec<(Vec<FaultOutcome>, usize)> = std::thread::scope(|scope| {
                let handles: Vec<_> = sample
                    .chunks(chunk)
                    .map(|bits| {
                        let ctx = ShardContext {
                            device: self.device,
                            routed: self.routed,
                            simulator: simulator.clone(),
                            stimulus: &stimulus,
                            golden: &golden,
                            output_groups: &output_groups,
                            simulate_only,
                        };
                        scope.spawn(move || run_shard(&ctx, bits))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("campaign worker thread panicked"))
                    .collect()
            });
            let mut merged = Vec::with_capacity(sample.len());
            let mut simulated = 0;
            for (mut shard, shard_simulated) in shard_results {
                merged.append(&mut shard);
                simulated += shard_simulated;
            }
            (merged, simulated)
        };

        Ok(CampaignResult {
            design: netlist.name().to_string(),
            fault_list_size: fault_list.len(),
            simulated,
            outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_campaign;
    use tmr_core::{apply_tmr, TmrConfig};
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_tmr_counter() -> (Device, RoutedDesign) {
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let netlist = techmap(&optimize(&lower(&design).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        (device, routed)
    }

    #[test]
    fn parallel_equals_sequential_for_any_shard_count() {
        let (device, routed) = routed_tmr_counter();
        let options = CampaignOptions {
            faults: 300,
            cycles: 10,
            ..CampaignOptions::default()
        };
        let reference = run_campaign(&device, &routed, &options).unwrap();
        for shards in [1, 2, 3, 8] {
            let parallel = CampaignEngine::new(&device, &routed, options.clone())
                .with_shards(shards)
                .run()
                .unwrap();
            assert_eq!(reference, parallel, "shards = {shards}");
        }
    }

    #[test]
    fn shard_count_is_clamped_and_reported() {
        let (device, routed) = routed_tmr_counter();
        let engine = CampaignEngine::new(&device, &routed, CampaignOptions::default());
        assert!(engine.shards() >= 1);
        assert_eq!(engine.clone().with_shards(0).shards(), 1);
        assert_eq!(engine.clone().sequential().shards(), 1);
        assert_eq!(engine.options().faults, CampaignOptions::default().faults);
    }

    #[test]
    fn more_shards_than_faults_is_harmless() {
        let (device, routed) = routed_tmr_counter();
        let options = CampaignOptions {
            faults: 5,
            cycles: 4,
            ..CampaignOptions::default()
        };
        let few = CampaignEngine::new(&device, &routed, options.clone())
            .with_shards(64)
            .run()
            .unwrap();
        assert_eq!(few.injected(), 5);
        assert_eq!(few, run_campaign(&device, &routed, &options).unwrap());
    }
}
