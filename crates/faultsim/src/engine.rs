//! The parallel, sharded campaign engine.
//!
//! The paper's fault-injection campaign is embarrassingly parallel: every
//! experiment downloads a faulty bitstream into a freshly configured device,
//! runs the same stimulus and compares against the same golden trace — no
//! experiment depends on another. [`CampaignEngine`] exploits that:
//!
//! 1. the expensive shared state is computed **once** — the backend's
//!    evaluation engine (the compiled bit-parallel instruction stream and
//!    its packed golden frames on [`SimBackend::Compiled`], the levelized
//!    interpreting [`Simulator`] on [`SimBackend::Interpreter`]), the golden
//!    [`GoldenRun`] (replayable stimulus, fault-free trace, output voting)
//!    and the sampled fault list; artifacts computed elsewhere (e.g. by the
//!    facade's cache) can be injected with [`CampaignEngine::with_golden`] /
//!    [`CampaignEngine::with_compiled`] and skip even that;
//! 2. the sampled fault list is split into deterministic contiguous
//!    **shards**;
//! 3. each shard runs on its own [`std::thread::scope`] worker thread,
//!    sharing the routed design, golden run and compiled stream immutably
//!    (the interpreter backend hands each worker its own `Simulator` clone);
//! 4. per-shard outcome vectors are concatenated in shard order, which *is*
//!    fault-list order — so the merged [`CampaignResult`] is bit-identical
//!    to the sequential one regardless of the shard count.
//!
//! Determinism is a hard requirement, not a nicety: Table 3/4 reproductions
//! and the regression tests compare whole result tables, and partition sweeps
//! must attribute differences to the design variant, never to the thread
//! schedule. The engine's [`CampaignEngine::run`] is itself implemented as a
//! single-batch [`CampaignSession`] drain, so the batch and streaming paths
//! share one per-fault code path by construction.

use crate::{CampaignOptions, CampaignResult, CampaignSession, FaultList};
use std::num::NonZeroUsize;
use std::sync::Arc;
use tmr_arch::Device;
use tmr_pnr::RoutedDesign;
use tmr_sim::{CompiledNetlist, GoldenRun, SimError, Simulator};

/// Which engine evaluates the faulty device inside a campaign.
///
/// The compiled backend is the default: the netlist is levelized once into a
/// flat instruction stream and 64 experiments are evaluated per packed
/// machine word, incrementally over the fan-out cone of each fault — with
/// outcomes **bit-identical** to the interpreter (the differential harness
/// in `tests/compiled_sim.rs` pins this). The interpreting oracle stays
/// selectable for differential testing and debugging, either through
/// [`CampaignBuilder::backend`](crate::CampaignBuilder::backend) or with
/// `TMR_SIM=interp` in the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// The levelized, bit-parallel compiled engine with event-driven
    /// dirty-level scheduling (the default).
    #[default]
    Compiled,
    /// The compiled engine with event-driven scheduling disabled: every
    /// level of the fan-out cone is evaluated every cycle, as in the
    /// pre-event-driven engine. Bit-identical outcomes to
    /// [`SimBackend::Compiled`] — kept reachable (`TMR_SIM=compiled-full`)
    /// for A/B benchmarking and as a second differential anchor.
    CompiledFull,
    /// The cell-by-cell interpreting simulator — the semantics oracle.
    Interpreter,
}

impl SimBackend {
    /// Resolves the backend from the `TMR_SIM` environment variable:
    /// `interp`/`interpreter` selects the oracle, `compiled-full` (or
    /// `compiled_full`) the compiled engine without event-driven
    /// scheduling, and `compiled`/`packed` (or an unset/unknown value) the
    /// default event-driven compiled engine.
    pub fn from_env() -> Self {
        match std::env::var("TMR_SIM").as_deref() {
            Ok("interp" | "interpreter") => SimBackend::Interpreter,
            Ok("compiled-full" | "compiled_full") => SimBackend::CompiledFull,
            _ => SimBackend::Compiled,
        }
    }

    /// Whether this backend evaluates faults on the compiled engine.
    pub fn is_compiled(&self) -> bool {
        matches!(self, SimBackend::Compiled | SimBackend::CompiledFull)
    }

    /// A stable short label (the `TMR_SIM` spelling), used in traces and
    /// reports.
    pub fn label(&self) -> &'static str {
        match self {
            SimBackend::Compiled => "compiled",
            SimBackend::CompiledFull => "compiled-full",
            SimBackend::Interpreter => "interp",
        }
    }
}

/// A configured fault-injection campaign over one routed design.
///
/// ```no_run
/// use tmr_arch::Device;
/// # fn routed() -> tmr_pnr::RoutedDesign { unimplemented!() }
/// use tmr_faultsim::{CampaignBuilder, CampaignEngine};
///
/// let device = Device::small(8, 8);
/// let routed = routed();
/// let result = CampaignBuilder::new()
///     .engine(&device, &routed)
///     .with_shards(4)
///     .run()
///     .expect("flow netlists are always simulable");
/// println!("{result}");
/// ```
#[derive(Debug, Clone)]
pub struct CampaignEngine<'a> {
    device: &'a Device,
    routed: &'a RoutedDesign,
    options: CampaignOptions,
    shards: usize,
    golden: Option<Arc<GoldenRun>>,
    compiled: Option<Arc<CompiledNetlist>>,
    backend: Option<SimBackend>,
}

impl<'a> CampaignEngine<'a> {
    /// Creates an engine with one shard per available CPU core.
    pub fn new(device: &'a Device, routed: &'a RoutedDesign, options: CampaignOptions) -> Self {
        let shards = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            device,
            routed,
            options,
            shards,
            golden: None,
            compiled: None,
            backend: None,
        }
    }

    /// Sets an explicit shard count (clamped to at least 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Forces single-shard execution on the calling thread (the sequential
    /// reference path).
    #[must_use]
    pub fn sequential(self) -> Self {
        self.with_shards(1)
    }

    /// Reuses a precomputed golden run instead of recomputing the stimulus,
    /// fault-free trace and output grouping. The run must belong to this
    /// design's netlist and match the options' `cycles` and `stimulus_seed`
    /// — both are asserted at session construction (the seed only for runs
    /// built by [`GoldenRun::compute`], which records it; a
    /// [`GoldenRun::from_parts`] stimulus has no seed to check).
    #[must_use]
    pub fn with_golden(mut self, golden: Arc<GoldenRun>) -> Self {
        self.golden = Some(golden);
        self
    }

    /// Reuses a precompiled instruction stream instead of levelizing the
    /// netlist again — the facade's `compiled` pipeline stage injects its
    /// cached artifact here. The stream must have been compiled from this
    /// design's netlist (checked against the net count at session build).
    #[must_use]
    pub fn with_compiled(mut self, compiled: Arc<CompiledNetlist>) -> Self {
        self.compiled = Some(compiled);
        self
    }

    /// Overrides the simulation backend (default: [`SimBackend::from_env`],
    /// i.e. the compiled engine unless `TMR_SIM=interp` is set).
    #[must_use]
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The campaign options.
    pub fn options(&self) -> &CampaignOptions {
        &self.options
    }

    /// Builds a streaming [`CampaignSession`] over the engine's
    /// configuration: the shared state is computed here, then batches run on
    /// demand.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist cannot be simulated (combinational
    /// loop), which cannot happen for designs produced by the `tmr-synth`
    /// flow.
    ///
    /// # Panics
    ///
    /// Panics if a golden run injected with [`CampaignEngine::with_golden`]
    /// does not match the options' cycle count or stimulus seed.
    pub fn session(&self) -> Result<CampaignSession<'a>, SimError> {
        let netlist = self.routed.netlist();
        let backend = self.backend.unwrap_or_else(SimBackend::from_env);
        let mut trace_span = tmr_trace::span("campaign.prepare");
        trace_span.attr("design", netlist.name());
        trace_span.attr("backend", backend.label());
        // Each backend builds only its own evaluation state: the compiled
        // engine its instruction stream + golden pack, the interpreter its
        // levelized `Simulator` — neither pays for the other.
        let simulator = match backend {
            SimBackend::Interpreter => Some(Simulator::new(netlist)?),
            SimBackend::Compiled | SimBackend::CompiledFull => None,
        };
        let golden = match &self.golden {
            Some(golden) => {
                assert_eq!(
                    golden.cycles(),
                    self.options.cycles,
                    "injected golden run was computed for a different stimulus length"
                );
                if let Some(seed) = golden.stimulus_seed() {
                    assert_eq!(
                        seed, self.options.stimulus_seed,
                        "injected golden run was computed for a different stimulus seed"
                    );
                }
                golden.clone()
            }
            None => Arc::new(GoldenRun::compute(
                netlist,
                self.options.cycles,
                self.options.stimulus_seed,
            )?),
        };
        let (compiled, packed) = match backend {
            SimBackend::Interpreter => (None, None),
            SimBackend::Compiled | SimBackend::CompiledFull => {
                let compiled = match &self.compiled {
                    Some(compiled) => {
                        assert_eq!(
                            compiled.net_count(),
                            netlist.net_count(),
                            "injected compiled netlist was built for a different design"
                        );
                        compiled.clone()
                    }
                    None => Arc::new(CompiledNetlist::compile(netlist)?),
                };
                let packed = Arc::new(compiled.pack_golden(&golden));
                (Some(compiled), Some(packed))
            }
        };
        let fault_list = FaultList::build(self.device, self.routed);
        let sample = fault_list.sample_faults(
            self.device,
            &self.options.model,
            self.options.faults,
            self.options.sampling_seed,
        );
        trace_span.attr("fault_list", fault_list.len());
        trace_span.attr("sampled", sample.len());
        trace_span.attr("shards", self.shards);
        Ok(CampaignSession::new(
            self.device,
            self.routed,
            simulator,
            golden,
            backend,
            compiled,
            packed,
            self.options.simulate_only.clone(),
            self.options.maskable.clone(),
            fault_list.len(),
            sample,
            self.shards,
        ))
    }

    /// Runs the campaign and merges the per-shard outcomes in fault-list
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist cannot be simulated (combinational
    /// loop), which cannot happen for designs produced by the `tmr-synth`
    /// flow.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagating the worker's panic).
    pub fn run(&self) -> Result<CampaignResult, SimError> {
        Ok(self.session()?.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignBuilder;
    use tmr_core::{apply_tmr, TmrConfig};
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_tmr_counter() -> (Device, RoutedDesign) {
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let netlist = techmap(&optimize(&lower(&design).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        (device, routed)
    }

    #[test]
    fn parallel_equals_sequential_for_any_shard_count() {
        let (device, routed) = routed_tmr_counter();
        let campaign = CampaignBuilder::new().faults(300).cycles(10);
        let reference = campaign.clone().sequential().run(&device, &routed).unwrap();
        for shards in [1, 2, 3, 8] {
            let parallel = campaign
                .engine(&device, &routed)
                .with_shards(shards)
                .run()
                .unwrap();
            assert_eq!(reference, parallel, "shards = {shards}");
        }
    }

    #[test]
    fn shard_count_is_clamped_and_reported() {
        let (device, routed) = routed_tmr_counter();
        let engine = CampaignEngine::new(&device, &routed, CampaignOptions::default());
        assert!(engine.shards() >= 1);
        assert_eq!(engine.clone().with_shards(0).shards(), 1);
        assert_eq!(engine.clone().sequential().shards(), 1);
        assert_eq!(
            engine.options().faults(),
            CampaignOptions::default().faults()
        );
    }

    #[test]
    fn more_shards_than_faults_is_harmless() {
        let (device, routed) = routed_tmr_counter();
        let campaign = CampaignBuilder::new().faults(5).cycles(4);
        let few = campaign
            .engine(&device, &routed)
            .with_shards(64)
            .run()
            .unwrap();
        assert_eq!(few.injected(), 5);
        assert_eq!(few, campaign.sequential().run(&device, &routed).unwrap());
    }

    #[test]
    fn precomputed_golden_run_is_bit_identical() {
        let (device, routed) = routed_tmr_counter();
        let campaign = CampaignBuilder::new().faults(120).cycles(10);
        let reference = campaign.clone().sequential().run(&device, &routed).unwrap();

        let golden = Arc::new(
            GoldenRun::compute(
                routed.netlist(),
                campaign.options().cycles(),
                campaign.options().stimulus_seed(),
            )
            .unwrap(),
        );
        let reused = campaign
            .clone()
            .golden(golden.clone())
            .sequential()
            .run(&device, &routed)
            .unwrap();
        assert_eq!(reference, reused);
        // The engine path accepts the same hook.
        let engine_reused = campaign
            .engine(&device, &routed)
            .with_golden(golden)
            .sequential()
            .run()
            .unwrap();
        assert_eq!(reference, engine_reused);
    }

    #[test]
    #[should_panic(expected = "different stimulus length")]
    fn mismatched_golden_run_is_rejected() {
        let (device, routed) = routed_tmr_counter();
        let golden = Arc::new(GoldenRun::compute(routed.netlist(), 4, 1).unwrap());
        let _ = CampaignBuilder::new()
            .faults(10)
            .cycles(10)
            .golden(golden)
            .run(&device, &routed);
    }

    #[test]
    #[should_panic(expected = "different stimulus seed")]
    fn seed_mismatched_golden_run_is_rejected() {
        let (device, routed) = routed_tmr_counter();
        let golden = Arc::new(GoldenRun::compute(routed.netlist(), 10, 7).unwrap());
        let _ = CampaignBuilder::new()
            .faults(10)
            .cycles(10)
            .stimulus_seed(1)
            .golden(golden)
            .run(&device, &routed);
    }
}
