//! # tmr-faultsim
//!
//! The bitstream fault-injection system of the DATE 2005 paper, rebuilt as a
//! simulation framework:
//!
//! * the **Fault List Manager** ([`FaultList`]) identifies the configuration
//!   bits related to the design under test (used PIP endpoints, used LUTs,
//!   used flip-flops) and draws a random sample of them;
//! * the **Fault Injection Manager** ([`run_campaign`]) flips one bit per
//!   experiment, derives its structural effect on the routed design (LUT
//!   corruption, open, bridge, input-antenna, conflict, …), simulates the
//!   faulty device against the golden reference with identical stimuli, and
//!   classifies the outcome;
//! * the classifier ([`FaultClass`]) reproduces the effect taxonomy of
//!   Tables 1 and 4 of the paper.
//!
//! Campaign results provide the *Wrong Answer* percentages of Table 3 and the
//! per-effect breakdown of Table 4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod campaign;
mod effect;
mod fault_list;

pub use campaign::{run_campaign, CampaignOptions, CampaignResult, FaultOutcome};
pub use effect::{classify_bit, BitEffect, FaultClass};
pub use fault_list::FaultList;
