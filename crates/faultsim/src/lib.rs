//! # tmr-faultsim
//!
//! The bitstream fault-injection system of the DATE 2005 paper, rebuilt as a
//! simulation framework:
//!
//! * the **Fault List Manager** ([`FaultList`]) identifies the configuration
//!   bits related to the design under test (used PIP endpoints, used LUTs,
//!   used flip-flops) and draws a random sample of them;
//! * the **fault model** ([`FaultModel`]) decides what one fault *is*: the
//!   paper's single-bit upset (the default), a geometry-aware multi-bit
//!   cluster expanded in the frame/offset plane
//!   ([`tmr_arch::MbuPattern`]), or the upsets accumulated over one scrub
//!   interval ([`FaultModel::Accumulate`]) — the degenerate 1-bit variants
//!   reproduce the single-bit fault sequence exactly;
//! * the **Fault Injection Manager** flips the fault's bits per experiment,
//!   derives the merged structural effect on the routed design
//!   ([`classify_fault`]: LUT corruption, open, bridge, input-antenna,
//!   conflict, …), simulates the faulty device against the golden reference
//!   with identical stimuli, and classifies the outcome;
//! * the classifier ([`FaultClass`]) reproduces the effect taxonomy of
//!   Tables 1 and 4 of the paper;
//! * the **campaign builder** ([`CampaignBuilder`]) is the documented way to
//!   configure a campaign: fault count, stimulus, shard count, streaming
//!   batch size and statistical early stop, plus reuse of a precomputed
//!   [`tmr_sim::GoldenRun`];
//! * the **campaign engine** ([`CampaignEngine`]) shards the sampled fault
//!   list over worker threads — each with its own cloned simulator replaying
//!   a shared stimulus against a shared golden trace — and merges outcomes in
//!   fault-list order, bit-identical to the sequential path for any shard
//!   count;
//! * the **campaign session** ([`CampaignSession`]) streams the same
//!   campaign incrementally: contiguous outcome batches for progress
//!   reporting, and an [`EarlyStop`] rule that halts once the wrong-answer
//!   rate's confidence interval is tight enough — the outcomes are always the
//!   exact prefix of the full batch run;
//! * the structural machinery is exposed for reuse without simulation:
//!   [`classify_bit`] and [`BitEffect::affected_domains`] power the static
//!   criticality analyzer (`tmr-analyze`), and
//!   [`CampaignOptions::restrict_to`] lets it prune campaigns down to the
//!   statically-possibly-observable bits ([`CampaignResult::simulated`]
//!   counts the simulations actually run).
//!
//! Campaign results provide the *Wrong Answer* percentages of Table 3 and the
//! per-effect breakdown of Table 4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod campaign;
mod effect;
mod engine;
mod fault_list;
mod model;
mod session;

pub use campaign::{CampaignOptions, CampaignResult, FaultOutcome};

pub use builder::CampaignBuilder;
pub use effect::{classify_bit, classify_fault, BitEffect, FaultClass, FaultEffect};
pub use engine::{CampaignEngine, SimBackend};
pub use fault_list::FaultList;
pub use model::FaultModel;
pub use session::{CampaignSession, EarlyStop, SessionProgress};
pub use tmr_sim::SimStats;
