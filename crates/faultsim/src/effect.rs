//! Translation of a flipped configuration bit into its fault class and its
//! structural effect on the routed design.

use std::collections::{BTreeSet, HashSet};
use std::fmt;
use tmr_arch::{ConfigResource, Device, NodeId, PipId, RouteNode};
use tmr_netlist::{CellKind, Domain, NetId};
use tmr_pnr::RoutedDesign;
use tmr_sim::{FaultOverlay, SinkRef};

/// The effect taxonomy of Tables 1 and 4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// Upset in a LUT truth-table bit (modification of the combinational logic).
    Lut,
    /// Upset in the CLB customization multiplexers (intra-CLB routing).
    Mux,
    /// Upset in the CLB flip-flop initialisation/configuration bits.
    Initialization,
    /// A used programmable interconnect point opened (general routing).
    Open,
    /// A new PIP bridging two used routing nodes (general routing).
    Bridge,
    /// A new PIP driving a used node from an unused, floating source.
    InputAntenna,
    /// A new PIP creating a second driver on a used site input pin.
    Conflict,
    /// Any other configuration change (unused resources, same-net PIPs, …).
    Others,
}

impl FaultClass {
    /// All classes in the row order of Table 4.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::Lut,
        FaultClass::Mux,
        FaultClass::Initialization,
        FaultClass::Open,
        FaultClass::Bridge,
        FaultClass::InputAntenna,
        FaultClass::Conflict,
        FaultClass::Others,
    ];

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Lut => "LUT",
            FaultClass::Mux => "MUX",
            FaultClass::Initialization => "Initialization",
            FaultClass::Open => "Open",
            FaultClass::Bridge => "Bridge",
            FaultClass::InputAntenna => "Input-Antenna",
            FaultClass::Conflict => "Conflict",
            FaultClass::Others => "Others",
        }
    }

    /// Returns `true` for the general-routing effects (the lower half of
    /// Table 4).
    pub fn is_general_routing(self) -> bool {
        matches!(
            self,
            FaultClass::Open | FaultClass::Bridge | FaultClass::InputAntenna | FaultClass::Conflict
        )
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The analysed effect of flipping one configuration bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitEffect {
    /// The flipped bit.
    pub bit: usize,
    /// Its classification.
    pub class: FaultClass,
    /// The netlist-level overlay to simulate (empty when the flip cannot
    /// change the configured circuit's behaviour).
    pub overlay: FaultOverlay,
    /// Whether the fault couples two *distinct* redundant TMR domains — the
    /// mechanism the paper identifies as able to defeat TMR.
    pub crosses_domains: bool,
}

impl BitEffect {
    /// The set of TMR domains whose signal copies this fault can corrupt,
    /// derived purely from the structural overlay — no simulation.
    ///
    /// The corruption entry points are the nets named by the overlay: a LUT or
    /// FF override corrupts the cell's output net (and is attributed to the
    /// cell's own domain too, so an upset inside a voter LUT is never mistaken
    /// for a plain redundant-domain fault), an open corrupts the opened net as
    /// seen by the disconnected sink, and bridges/antennas corrupt the shorted
    /// or victim nets. Readers in *other* domains are not listed here: the
    /// static analyzer separately verifies that cross-domain readers are
    /// majority voters (see `tmr-analyze`), which is what makes this set a
    /// sound basis for criticality verdicts.
    ///
    /// An empty set means the flip cannot change the configured circuit's
    /// behaviour.
    pub fn affected_domains(&self, routed: &RoutedDesign) -> BTreeSet<Domain> {
        let netlist = routed.netlist();
        let mut domains = BTreeSet::new();
        for &(cell, _) in &self.overlay.lut_overrides {
            let cell = netlist.cell(cell);
            domains.insert(cell.domain);
            domains.insert(routed.net_domain(cell.output));
        }
        for &(cell, _) in &self.overlay.ff_init_overrides {
            let cell = netlist.cell(cell);
            domains.insert(cell.domain);
            domains.insert(routed.net_domain(cell.output));
        }
        for &sink in &self.overlay.opened_sinks {
            match sink {
                SinkRef::CellPin { cell, pin } => {
                    let net = netlist.cell(cell).inputs[pin];
                    domains.insert(routed.net_domain(net));
                }
                SinkRef::OutputPort(port) => {
                    domains.insert(routed.net_domain(netlist.port(port).net));
                }
            }
        }
        for &(a, b) in &self.overlay.shorted_nets {
            domains.insert(routed.net_domain(a));
            domains.insert(routed.net_domain(b));
        }
        for &net in &self.overlay.corrupted_nets {
            domains.insert(routed.net_domain(net));
        }
        domains
    }
}

/// Classifies a configuration bit flip and derives its structural effect.
///
/// # Panics
///
/// Panics if `bit` is outside the device's configuration space.
pub fn classify_bit(device: &Device, routed: &RoutedDesign, bit: usize) -> BitEffect {
    let layout = device.config_layout();
    let resource = layout
        .resource_at(bit)
        .expect("bit must be inside the configuration space");
    let currently_set = routed.bitstream().get(bit);

    match resource {
        ConfigResource::LutBit { site, bit: lut_bit } => {
            let mut effect = BitEffect {
                bit,
                class: FaultClass::Lut,
                overlay: FaultOverlay::none(),
                crosses_domains: false,
            };
            if let Some(cell_id) = routed.placement().cell_at(site) {
                if let CellKind::Lut { k, init } = routed.netlist().cell(cell_id).kind {
                    // Unused LUT pins are tied low, so only entries whose
                    // unused-pin bits are zero are ever exercised.
                    let used_mask = (1u8 << k) - 1;
                    if lut_bit & !used_mask == 0 {
                        let new_init = init ^ (1 << lut_bit);
                        effect.overlay.lut_overrides.push((cell_id, new_init));
                    }
                }
                // Constant generators (GND/VCC placed on LUT sites) are left
                // unmodelled: their truth-table flips are rare and, in TMR
                // designs, confined to a single domain, so they are treated as
                // functionally silent LUT upsets.
            }
            effect
        }
        ConfigResource::FfInit { site } => {
            let mut effect = BitEffect {
                bit,
                class: FaultClass::Initialization,
                overlay: FaultOverlay::none(),
                crosses_domains: false,
            };
            if let Some(cell_id) = routed.placement().cell_at(site) {
                if let CellKind::Dff { init } = routed.netlist().cell(cell_id).kind {
                    effect.overlay.ff_init_overrides.push((cell_id, !init));
                }
            }
            effect
        }
        ConfigResource::Pip(pip_id) => {
            classify_pip_flip(device, routed, bit, pip_id, currently_set)
        }
    }
}

fn classify_pip_flip(
    device: &Device,
    routed: &RoutedDesign,
    bit: usize,
    pip_id: PipId,
    currently_set: bool,
) -> BitEffect {
    let pip = device.pip(pip_id);
    let is_clb_mux = !pip.category.is_general_routing();
    let class_for = |routing_class: FaultClass| {
        if is_clb_mux {
            FaultClass::Mux
        } else {
            routing_class
        }
    };

    if currently_set {
        // A used PIP opens: the sinks downstream of it lose their driver.
        let net = routed
            .net_of_pip(pip_id)
            .expect("a set PIP bit belongs to a routed net");
        let overlay = open_overlay(device, routed, net, pip_id);
        return BitEffect {
            bit,
            class: class_for(FaultClass::Open),
            overlay,
            crosses_domains: false,
        };
    }

    // A new PIP is enabled: a connection from `src` onto `dst` appears.
    let src_net = routed.net_of_node(pip.src);
    let dst_net = routed.net_of_node(pip.dst);
    let dst_is_pin = matches!(device.node(pip.dst), RouteNode::InPin { .. });

    match (src_net, dst_net) {
        (Some(a), Some(b)) if a == b => BitEffect {
            bit,
            class: class_for(FaultClass::Others),
            overlay: FaultOverlay::none(),
            crosses_domains: false,
        },
        (Some(a), Some(b)) => {
            let class = if dst_is_pin {
                FaultClass::Conflict
            } else {
                FaultClass::Bridge
            };
            let crosses = routed.net_domain(a).crosses(routed.net_domain(b));
            BitEffect {
                bit,
                class: class_for(class),
                overlay: FaultOverlay {
                    shorted_nets: vec![(a, b)],
                    ..FaultOverlay::none()
                },
                crosses_domains: crosses,
            }
        }
        (None, Some(victim)) => BitEffect {
            bit,
            class: class_for(FaultClass::InputAntenna),
            overlay: FaultOverlay {
                corrupted_nets: vec![victim],
                ..FaultOverlay::none()
            },
            crosses_domains: false,
        },
        (Some(_), None) | (None, None) => BitEffect {
            bit,
            class: class_for(if src_net.is_some() {
                FaultClass::Bridge
            } else {
                FaultClass::Others
            }),
            overlay: FaultOverlay::none(),
            crosses_domains: false,
        },
    }
}

/// Builds the overlay of an *Open*: every sink of `net` that is no longer
/// reachable from the source once `removed_pip` is disabled reads `X`.
fn open_overlay(
    device: &Device,
    routed: &RoutedDesign,
    net: NetId,
    removed_pip: PipId,
) -> FaultOverlay {
    let tree = routed.route_of(net).expect("routed net has a tree");
    // Re-walk the tree without the removed PIP.
    let mut reachable: HashSet<NodeId> = HashSet::new();
    reachable.insert(tree.source);
    let mut remaining: Vec<PipId> = tree
        .pips
        .iter()
        .copied()
        .filter(|&p| p != removed_pip)
        .collect();
    let mut progress = true;
    while progress {
        progress = false;
        remaining.retain(|&pip_id| {
            let pip = device.pip(pip_id);
            if reachable.contains(&pip.src) {
                reachable.insert(pip.dst);
                progress = true;
                false
            } else {
                true
            }
        });
    }
    let opened_sinks = tree
        .sinks
        .iter()
        .filter(|(node, _, _)| !reachable.contains(node))
        .map(|&(_, cell, pin)| SinkRef::CellPin { cell, pin })
        .collect();
    FaultOverlay {
        opened_sinks,
        ..FaultOverlay::none()
    }
}

/// Convenience: returns `true` for the PIP categories counted as CLB
/// customization by the classifier (exposed for tests and reports).
#[cfg(test)]
pub(crate) fn is_clb_mux_category(category: tmr_arch::PipCategory) -> bool {
    !category.is_general_routing()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_arch::Device;
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_counter() -> (Device, RoutedDesign) {
        let device = Device::small(5, 5);
        let netlist = techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        (device, routed)
    }

    #[test]
    fn set_routing_bits_classify_as_open_and_disconnect_sinks() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();
        let mut found_open = false;
        for bit in routed.bitstream().iter_ones() {
            if let Some(ConfigResource::Pip(pip)) = layout.resource_at(bit) {
                let effect = classify_bit(&device, &routed, bit);
                if device.pip(pip).category.is_general_routing() {
                    assert_eq!(effect.class, FaultClass::Open);
                } else {
                    assert_eq!(effect.class, FaultClass::Mux);
                }
                found_open = true;
            }
        }
        assert!(found_open, "the routed design must use at least one PIP");
    }

    #[test]
    fn every_class_has_a_stable_label() {
        for class in FaultClass::ALL {
            assert!(!class.label().is_empty());
        }
        assert!(FaultClass::Open.is_general_routing());
        assert!(!FaultClass::Lut.is_general_routing());
    }

    #[test]
    fn lut_bit_flip_produces_an_override_only_for_exercised_entries() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();
        let mut exercised = 0;
        let mut ignored = 0;
        for bit in 0..layout.bit_count() {
            if let Some(ConfigResource::LutBit { site, bit: lut_bit }) = layout.resource_at(bit) {
                if let Some(cell) = routed.placement().cell_at(site) {
                    if let CellKind::Lut { k, .. } = routed.netlist().cell(cell).kind {
                        let effect = classify_bit(&device, &routed, bit);
                        assert_eq!(effect.class, FaultClass::Lut);
                        if lut_bit & !((1u8 << k) - 1) == 0 {
                            assert!(!effect.overlay.is_empty());
                            exercised += 1;
                        } else {
                            assert!(effect.overlay.is_empty());
                            ignored += 1;
                        }
                    }
                }
            }
        }
        assert!(exercised > 0);
        assert!(ignored > 0, "some LUTs have fewer than 4 used inputs");
    }

    #[test]
    fn new_pip_classification_covers_bridge_antenna_conflict() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();
        let mut classes_seen: std::collections::BTreeMap<FaultClass, usize> =
            std::collections::BTreeMap::new();
        for bit in 0..layout.bit_count() {
            if let Some(ConfigResource::Pip(pip)) = layout.resource_at(bit) {
                if routed.bitstream().get(bit) {
                    continue;
                }
                if !device.pip(pip).category.is_general_routing() {
                    continue;
                }
                let effect = classify_bit(&device, &routed, bit);
                *classes_seen.entry(effect.class).or_insert(0) += 1;
            }
        }
        // Even a small design must expose bridge and antenna candidates; a
        // conflict needs an unset PIP onto a used pin, which the architecture
        // provides through the extra input-pin candidates.
        assert!(
            classes_seen.contains_key(&FaultClass::Bridge),
            "{classes_seen:?}"
        );
        assert!(
            classes_seen.contains_key(&FaultClass::InputAntenna),
            "{classes_seen:?}"
        );
        assert!(
            classes_seen.contains_key(&FaultClass::Others),
            "{classes_seen:?}"
        );
    }

    #[test]
    fn clb_mux_pips_classify_as_mux() {
        use tmr_arch::PipCategory;
        assert!(is_clb_mux_category(PipCategory::InputMux));
        assert!(!is_clb_mux_category(PipCategory::Switchbox));
        assert!(!is_clb_mux_category(PipCategory::LongInput));
    }

    /// Golden census over the whole configuration space of the routed
    /// 4-bit counter: every one of the eight `FaultClass` variants appears,
    /// and each class obeys its defining structural invariant.
    #[test]
    fn classify_bit_covers_all_eight_classes_with_their_invariants() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();
        let mut seen: std::collections::BTreeMap<FaultClass, usize> =
            std::collections::BTreeMap::new();
        for bit in 0..layout.bit_count() {
            let effect = classify_bit(&device, &routed, bit);
            assert_eq!(effect.bit, bit);
            *seen.entry(effect.class).or_insert(0) += 1;
            match effect.class {
                FaultClass::Lut => {
                    // Only the truth table may change.
                    assert!(effect.overlay.shorted_nets.is_empty());
                    assert!(effect.overlay.opened_sinks.is_empty());
                    assert!(effect.overlay.corrupted_nets.is_empty());
                    assert!(effect.overlay.ff_init_overrides.is_empty());
                }
                FaultClass::Initialization => {
                    // Only a flip-flop power-up value may change, and it must
                    // be inverted, not copied.
                    assert!(effect.overlay.lut_overrides.is_empty());
                    assert!(effect.overlay.shorted_nets.is_empty());
                    for &(cell, init) in &effect.overlay.ff_init_overrides {
                        match routed.netlist().cell(cell).kind {
                            CellKind::Dff { init: original } => assert_eq!(init, !original),
                            _ => panic!("FF init override must target a flip-flop"),
                        }
                    }
                }
                FaultClass::Open => {
                    // A set general-routing PIP opened: sinks may float, but
                    // nothing is shorted or corrupted.
                    assert!(routed.bitstream().get(bit), "opens come from set bits");
                    assert!(effect.overlay.shorted_nets.is_empty());
                    assert!(effect.overlay.corrupted_nets.is_empty());
                }
                FaultClass::Bridge | FaultClass::Conflict => {
                    // A new PIP couples two used, distinct nets (when both
                    // endpoints are routed; a bridge candidate with an unused
                    // destination has an empty overlay).
                    assert!(!routed.bitstream().get(bit));
                    for &(a, b) in &effect.overlay.shorted_nets {
                        assert_ne!(a, b);
                    }
                }
                FaultClass::InputAntenna => {
                    // A floating aggressor corrupts exactly one victim net.
                    assert!(!routed.bitstream().get(bit));
                    assert_eq!(effect.overlay.corrupted_nets.len(), 1);
                    assert!(effect.overlay.shorted_nets.is_empty());
                }
                FaultClass::Mux | FaultClass::Others => {}
            }
            // The unprotected counter has one domain, so nothing can cross.
            assert!(!effect.crosses_domains);
            assert!(effect.affected_domains(&routed).len() <= 1);
        }
        for class in FaultClass::ALL {
            assert!(
                seen.get(&class).copied().unwrap_or(0) > 0,
                "class {class} must appear in the census: {seen:?}"
            );
        }
    }

    /// On a TMR design the affected-domain sets drive the static verdicts:
    /// dynamic `crosses_domains` must coincide with two distinct redundant
    /// domains in the structural set.
    #[test]
    fn affected_domains_match_the_crossing_flag_on_a_tmr_design() {
        use tmr_core::{apply_tmr, TmrConfig};
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let netlist = techmap(&optimize(&lower(&design).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        let layout = device.config_layout();
        let mut crossing = 0;
        for bit in 0..layout.bit_count() {
            let effect = classify_bit(&device, &routed, bit);
            let domains = effect.affected_domains(&routed);
            let redundant = domains.iter().filter(|d| d.is_redundant()).count();
            if effect.crosses_domains {
                crossing += 1;
                assert!(
                    redundant >= 2,
                    "bit {bit}: dynamic crossing must show two redundant domains, got {domains:?}"
                );
            }
            if effect.overlay.is_empty() {
                assert!(
                    domains.is_empty(),
                    "bit {bit}: empty overlays affect nothing"
                );
            }
        }
        assert!(crossing > 0, "a routed TMR design has crossing candidates");
    }
}
