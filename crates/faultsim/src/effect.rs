//! Translation of a flipped configuration bit into its fault class and its
//! structural effect on the routed design.

use std::collections::{BTreeSet, HashSet};
use std::fmt;
use tmr_arch::{ConfigResource, Device, NodeId, PipId, RouteNode};
use tmr_netlist::{CellKind, Domain, NetId};
use tmr_pnr::RoutedDesign;
use tmr_sim::{FaultOverlay, SinkRef};

/// The effect taxonomy of Tables 1 and 4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// Upset in a LUT truth-table bit (modification of the combinational logic).
    Lut,
    /// Upset in the CLB customization multiplexers (intra-CLB routing).
    Mux,
    /// Upset in the CLB flip-flop initialisation/configuration bits.
    Initialization,
    /// A used programmable interconnect point opened (general routing).
    Open,
    /// A new PIP bridging two used routing nodes (general routing).
    Bridge,
    /// A new PIP driving a used node from an unused, floating source.
    InputAntenna,
    /// A new PIP creating a second driver on a used site input pin.
    Conflict,
    /// Any other configuration change (unused resources, same-net PIPs, …).
    Others,
}

impl FaultClass {
    /// All classes in the row order of Table 4.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::Lut,
        FaultClass::Mux,
        FaultClass::Initialization,
        FaultClass::Open,
        FaultClass::Bridge,
        FaultClass::InputAntenna,
        FaultClass::Conflict,
        FaultClass::Others,
    ];

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Lut => "LUT",
            FaultClass::Mux => "MUX",
            FaultClass::Initialization => "Initialization",
            FaultClass::Open => "Open",
            FaultClass::Bridge => "Bridge",
            FaultClass::InputAntenna => "Input-Antenna",
            FaultClass::Conflict => "Conflict",
            FaultClass::Others => "Others",
        }
    }

    /// Returns `true` for the general-routing effects (the lower half of
    /// Table 4).
    pub fn is_general_routing(self) -> bool {
        matches!(
            self,
            FaultClass::Open | FaultClass::Bridge | FaultClass::InputAntenna | FaultClass::Conflict
        )
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The analysed effect of flipping one configuration bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitEffect {
    /// The flipped bit.
    pub bit: usize,
    /// Its classification.
    pub class: FaultClass,
    /// The netlist-level overlay to simulate (empty when the flip cannot
    /// change the configured circuit's behaviour).
    pub overlay: FaultOverlay,
    /// Whether the fault couples two *distinct* redundant TMR domains — the
    /// mechanism the paper identifies as able to defeat TMR.
    pub crosses_domains: bool,
}

impl BitEffect {
    /// The set of TMR domains whose signal copies this fault can corrupt,
    /// derived purely from the structural overlay — no simulation.
    ///
    /// The corruption entry points are the nets named by the overlay: a LUT or
    /// FF override corrupts the cell's output net (and is attributed to the
    /// cell's own domain too, so an upset inside a voter LUT is never mistaken
    /// for a plain redundant-domain fault), an open corrupts the opened net as
    /// seen by the disconnected sink, and bridges/antennas corrupt the shorted
    /// or victim nets. Readers in *other* domains are not listed here: the
    /// static analyzer separately verifies that cross-domain readers are
    /// majority voters (see `tmr-analyze`), which is what makes this set a
    /// sound basis for criticality verdicts.
    ///
    /// An empty set means the flip cannot change the configured circuit's
    /// behaviour.
    pub fn affected_domains(&self, routed: &RoutedDesign) -> BTreeSet<Domain> {
        let netlist = routed.netlist();
        let mut domains = BTreeSet::new();
        for &(cell, _) in &self.overlay.lut_overrides {
            let cell = netlist.cell(cell);
            domains.insert(cell.domain);
            domains.insert(routed.net_domain(cell.output));
        }
        for &(cell, _) in &self.overlay.ff_init_overrides {
            let cell = netlist.cell(cell);
            domains.insert(cell.domain);
            domains.insert(routed.net_domain(cell.output));
        }
        for &sink in &self.overlay.opened_sinks {
            match sink {
                SinkRef::CellPin { cell, pin } => {
                    let net = netlist.cell(cell).inputs[pin];
                    domains.insert(routed.net_domain(net));
                }
                SinkRef::OutputPort(port) => {
                    domains.insert(routed.net_domain(netlist.port(port).net));
                }
            }
        }
        for &(a, b) in &self.overlay.shorted_nets {
            domains.insert(routed.net_domain(a));
            domains.insert(routed.net_domain(b));
        }
        for &net in &self.overlay.corrupted_nets {
            domains.insert(routed.net_domain(net));
        }
        domains
    }
}

/// The analysed effect of one multi-bit fault: the union of the structural
/// effects of its component bit flips, each derived against the pristine
/// configuration (see [`classify_fault`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEffect {
    bits: Vec<usize>,
    class: FaultClass,
    /// The merged overlay for multi-bit faults; `None` for single-bit faults,
    /// whose overlay is the lone component's (no clone on the hot path).
    merged_overlay: Option<FaultOverlay>,
    crosses_domains: bool,
    effects: Vec<BitEffect>,
}

impl FaultEffect {
    /// The flipped bits, in ascending order.
    pub fn bits(&self) -> &[usize] {
        &self.bits
    }

    /// The dominant classification: the class of the lowest flipped bit with
    /// a non-empty structural effect (the lowest bit overall when none has
    /// one).
    pub fn class(&self) -> FaultClass {
        self.class
    }

    /// The merged netlist-level overlay to simulate (empty when no component
    /// flip can change the configured circuit's behaviour).
    pub fn overlay(&self) -> &FaultOverlay {
        self.merged_overlay
            .as_ref()
            .unwrap_or_else(|| &self.effects[0].overlay)
    }

    /// Whether the fault couples two *distinct* redundant TMR domains —
    /// through a single component flip, or because the component flips
    /// together corrupt copies in two different domains (the accumulation
    /// failure mode single-bit campaigns cannot see).
    pub fn crosses_domains(&self) -> bool {
        self.crosses_domains
    }

    /// The per-bit component effects, in [`FaultEffect::bits`] order.
    pub fn effects(&self) -> &[BitEffect] {
        &self.effects
    }

    /// The component bits whose individual flip has a non-empty structural
    /// effect — the bits that matter for observability and pruning.
    pub fn active_bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.effects
            .iter()
            .filter(|effect| !effect.overlay.is_empty())
            .map(|effect| effect.bit)
    }

    /// The union of the component flips' affected TMR domains (see
    /// [`BitEffect::affected_domains`]).
    pub fn affected_domains(&self, routed: &RoutedDesign) -> BTreeSet<Domain> {
        self.effects
            .iter()
            .flat_map(|effect| effect.affected_domains(routed))
            .collect()
    }

    /// Consumes the effect, returning the flipped bits (for outcome
    /// construction without a clone).
    pub fn into_bits(self) -> Vec<usize> {
        self.bits
    }
}

/// Classifies a multi-bit fault — any sorted set of distinct configuration
/// bits flipped together (a geometric MBU cluster, or the upsets accumulated
/// over one scrub interval) — and derives its merged structural effect.
///
/// Every component bit is classified with [`classify_bit`] against the
/// *pristine* configuration and the per-bit overlays are unioned, with two
/// refinements that make the union cumulative where components interact:
///
/// * several truth-table flips of the same LUT are combined into one
///   override carrying all flipped entries (the simulator keeps one override
///   per cell);
/// * several opens on the same routed net re-walk the route tree with *all*
///   removed PIPs absent at once, so sinks only reachable through the
///   combination are correctly disconnected.
///
/// Other cross-bit interactions (e.g. a bridge onto a net another component
/// opened) are approximated by the plain union of their effects.
///
/// For a single-bit fault the result is exactly [`classify_bit`]'s.
///
/// # Panics
///
/// Panics if `bits` is empty or any bit is outside the device's
/// configuration space.
pub fn classify_fault(device: &Device, routed: &RoutedDesign, bits: &[usize]) -> FaultEffect {
    assert!(!bits.is_empty(), "a fault flips at least one bit");
    let effects: Vec<BitEffect> = bits
        .iter()
        .map(|&bit| classify_bit(device, routed, bit))
        .collect();
    if let [effect] = effects.as_slice() {
        return FaultEffect {
            bits: bits.to_vec(),
            class: effect.class,
            merged_overlay: None,
            crosses_domains: effect.crosses_domains,
            effects,
        };
    }

    let class = effects
        .iter()
        .find(|effect| !effect.overlay.is_empty())
        .unwrap_or(&effects[0])
        .class;
    let overlay = merge_overlays(device, routed, bits, &effects);
    let union = effects
        .iter()
        .flat_map(|effect| effect.affected_domains(routed))
        .filter(|domain| domain.is_redundant())
        .collect::<BTreeSet<Domain>>();
    let crosses_domains = effects.iter().any(|effect| effect.crosses_domains) || union.len() >= 2;
    FaultEffect {
        bits: bits.to_vec(),
        class,
        merged_overlay: Some(overlay),
        crosses_domains,
        effects,
    }
}

/// Unions the component overlays of a multi-bit fault, combining same-LUT
/// truth-table flips and recomputing same-net opens cumulatively.
fn merge_overlays(
    device: &Device,
    routed: &RoutedDesign,
    bits: &[usize],
    effects: &[BitEffect],
) -> FaultOverlay {
    let netlist = routed.netlist();
    let mut merged = FaultOverlay::none();

    // Opens: group the removed PIPs of set routing bits by net and re-derive
    // the disconnected sinks with the whole group absent.
    let layout = device.config_layout();
    let mut removed_by_net: Vec<(NetId, Vec<PipId>)> = Vec::new();
    for &bit in bits {
        if let Some(ConfigResource::Pip(pip_id)) = layout.resource_at(bit) {
            if routed.bitstream().get(bit) {
                if let Some(net) = routed.net_of_pip(pip_id) {
                    match removed_by_net.iter_mut().find(|(n, _)| *n == net) {
                        Some((_, pips)) => pips.push(pip_id),
                        None => removed_by_net.push((net, vec![pip_id])),
                    }
                }
            }
        }
    }
    for (net, removed) in &removed_by_net {
        merged
            .opened_sinks
            .extend(open_overlay(device, routed, *net, removed).opened_sinks);
    }

    for effect in effects {
        for &(cell, value) in &effect.overlay.lut_overrides {
            match merged.lut_overrides.iter_mut().find(|(c, _)| *c == cell) {
                Some(existing) => {
                    // Each component override is `init ^ mask` for a distinct
                    // single-entry mask; the cumulative truth table carries
                    // every flipped entry.
                    if let CellKind::Lut { init, .. } = netlist.cell(cell).kind {
                        existing.1 ^= value ^ init;
                    }
                }
                None => merged.lut_overrides.push((cell, value)),
            }
        }
        for &(cell, value) in &effect.overlay.ff_init_overrides {
            if !merged.ff_init_overrides.contains(&(cell, value)) {
                merged.ff_init_overrides.push((cell, value));
            }
        }
        for &pair in &effect.overlay.shorted_nets {
            if !merged.shorted_nets.contains(&pair) {
                merged.shorted_nets.push(pair);
            }
        }
        for &net in &effect.overlay.corrupted_nets {
            if !merged.corrupted_nets.contains(&net) {
                merged.corrupted_nets.push(net);
            }
        }
    }
    merged
}

/// Classifies a configuration bit flip and derives its structural effect.
///
/// # Panics
///
/// Panics if `bit` is outside the device's configuration space.
pub fn classify_bit(device: &Device, routed: &RoutedDesign, bit: usize) -> BitEffect {
    let layout = device.config_layout();
    let resource = layout
        .resource_at(bit)
        .expect("bit must be inside the configuration space");
    let currently_set = routed.bitstream().get(bit);

    match resource {
        ConfigResource::LutBit { site, bit: lut_bit } => {
            let mut effect = BitEffect {
                bit,
                class: FaultClass::Lut,
                overlay: FaultOverlay::none(),
                crosses_domains: false,
            };
            if let Some(cell_id) = routed.placement().cell_at(site) {
                if let CellKind::Lut { k, init } = routed.netlist().cell(cell_id).kind {
                    // Unused LUT pins are tied low, so only entries whose
                    // unused-pin bits are zero are ever exercised.
                    let used_mask = (1u8 << k) - 1;
                    if lut_bit & !used_mask == 0 {
                        let new_init = init ^ (1 << lut_bit);
                        effect.overlay.lut_overrides.push((cell_id, new_init));
                    }
                }
                // Constant generators (GND/VCC placed on LUT sites) are left
                // unmodelled: their truth-table flips are rare and, in TMR
                // designs, confined to a single domain, so they are treated as
                // functionally silent LUT upsets.
            }
            effect
        }
        ConfigResource::FfInit { site } => {
            let mut effect = BitEffect {
                bit,
                class: FaultClass::Initialization,
                overlay: FaultOverlay::none(),
                crosses_domains: false,
            };
            if let Some(cell_id) = routed.placement().cell_at(site) {
                if let CellKind::Dff { init } = routed.netlist().cell(cell_id).kind {
                    effect.overlay.ff_init_overrides.push((cell_id, !init));
                }
            }
            effect
        }
        ConfigResource::Pip(pip_id) => {
            classify_pip_flip(device, routed, bit, pip_id, currently_set)
        }
    }
}

fn classify_pip_flip(
    device: &Device,
    routed: &RoutedDesign,
    bit: usize,
    pip_id: PipId,
    currently_set: bool,
) -> BitEffect {
    let pip = device.pip(pip_id);
    let is_clb_mux = !pip.category.is_general_routing();
    let class_for = |routing_class: FaultClass| {
        if is_clb_mux {
            FaultClass::Mux
        } else {
            routing_class
        }
    };

    if currently_set {
        // A used PIP opens: the sinks downstream of it lose their driver.
        let net = routed
            .net_of_pip(pip_id)
            .expect("a set PIP bit belongs to a routed net");
        let overlay = open_overlay(device, routed, net, &[pip_id]);
        return BitEffect {
            bit,
            class: class_for(FaultClass::Open),
            overlay,
            crosses_domains: false,
        };
    }

    // A new PIP is enabled: a connection from `src` onto `dst` appears.
    let src_net = routed.net_of_node(pip.src);
    let dst_net = routed.net_of_node(pip.dst);
    let dst_is_pin = matches!(device.node(pip.dst), RouteNode::InPin { .. });

    match (src_net, dst_net) {
        (Some(a), Some(b)) if a == b => BitEffect {
            bit,
            class: class_for(FaultClass::Others),
            overlay: FaultOverlay::none(),
            crosses_domains: false,
        },
        (Some(a), Some(b)) => {
            let class = if dst_is_pin {
                FaultClass::Conflict
            } else {
                FaultClass::Bridge
            };
            let crosses = routed.net_domain(a).crosses(routed.net_domain(b));
            BitEffect {
                bit,
                class: class_for(class),
                overlay: FaultOverlay {
                    shorted_nets: vec![(a, b)],
                    ..FaultOverlay::none()
                },
                crosses_domains: crosses,
            }
        }
        (None, Some(victim)) => BitEffect {
            bit,
            class: class_for(FaultClass::InputAntenna),
            overlay: FaultOverlay {
                corrupted_nets: vec![victim],
                ..FaultOverlay::none()
            },
            crosses_domains: false,
        },
        (Some(_), None) | (None, None) => BitEffect {
            bit,
            class: class_for(if src_net.is_some() {
                FaultClass::Bridge
            } else {
                FaultClass::Others
            }),
            overlay: FaultOverlay::none(),
            crosses_domains: false,
        },
    }
}

/// Builds the overlay of an *Open*: every sink of `net` that is no longer
/// reachable from the source once every PIP in `removed_pips` is disabled
/// reads `X` (a single-bit open removes one PIP; accumulated faults can
/// remove several from the same tree).
fn open_overlay(
    device: &Device,
    routed: &RoutedDesign,
    net: NetId,
    removed_pips: &[PipId],
) -> FaultOverlay {
    let tree = routed.route_of(net).expect("routed net has a tree");
    // Re-walk the tree without the removed PIPs.
    let mut reachable: HashSet<NodeId> = HashSet::new();
    reachable.insert(tree.source);
    let mut remaining: Vec<PipId> = tree
        .pips
        .iter()
        .copied()
        .filter(|p| !removed_pips.contains(p))
        .collect();
    let mut progress = true;
    while progress {
        progress = false;
        remaining.retain(|&pip_id| {
            let pip = device.pip(pip_id);
            if reachable.contains(&pip.src) {
                reachable.insert(pip.dst);
                progress = true;
                false
            } else {
                true
            }
        });
    }
    let opened_sinks = tree
        .sinks
        .iter()
        .filter(|(node, _, _)| !reachable.contains(node))
        .map(|&(_, cell, pin)| SinkRef::CellPin { cell, pin })
        .collect();
    FaultOverlay {
        opened_sinks,
        ..FaultOverlay::none()
    }
}

/// Convenience: returns `true` for the PIP categories counted as CLB
/// customization by the classifier (exposed for tests and reports).
#[cfg(test)]
pub(crate) fn is_clb_mux_category(category: tmr_arch::PipCategory) -> bool {
    !category.is_general_routing()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_arch::Device;
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    fn routed_counter() -> (Device, RoutedDesign) {
        let device = Device::small(5, 5);
        let netlist = techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        (device, routed)
    }

    #[test]
    fn set_routing_bits_classify_as_open_and_disconnect_sinks() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();
        let mut found_open = false;
        for bit in routed.bitstream().iter_ones() {
            if let Some(ConfigResource::Pip(pip)) = layout.resource_at(bit) {
                let effect = classify_bit(&device, &routed, bit);
                if device.pip(pip).category.is_general_routing() {
                    assert_eq!(effect.class, FaultClass::Open);
                } else {
                    assert_eq!(effect.class, FaultClass::Mux);
                }
                found_open = true;
            }
        }
        assert!(found_open, "the routed design must use at least one PIP");
    }

    #[test]
    fn every_class_has_a_stable_label() {
        for class in FaultClass::ALL {
            assert!(!class.label().is_empty());
        }
        assert!(FaultClass::Open.is_general_routing());
        assert!(!FaultClass::Lut.is_general_routing());
    }

    #[test]
    fn lut_bit_flip_produces_an_override_only_for_exercised_entries() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();
        let mut exercised = 0;
        let mut ignored = 0;
        for bit in 0..layout.bit_count() {
            if let Some(ConfigResource::LutBit { site, bit: lut_bit }) = layout.resource_at(bit) {
                if let Some(cell) = routed.placement().cell_at(site) {
                    if let CellKind::Lut { k, .. } = routed.netlist().cell(cell).kind {
                        let effect = classify_bit(&device, &routed, bit);
                        assert_eq!(effect.class, FaultClass::Lut);
                        if lut_bit & !((1u8 << k) - 1) == 0 {
                            assert!(!effect.overlay.is_empty());
                            exercised += 1;
                        } else {
                            assert!(effect.overlay.is_empty());
                            ignored += 1;
                        }
                    }
                }
            }
        }
        assert!(exercised > 0);
        assert!(ignored > 0, "some LUTs have fewer than 4 used inputs");
    }

    #[test]
    fn new_pip_classification_covers_bridge_antenna_conflict() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();
        let mut classes_seen: std::collections::BTreeMap<FaultClass, usize> =
            std::collections::BTreeMap::new();
        for bit in 0..layout.bit_count() {
            if let Some(ConfigResource::Pip(pip)) = layout.resource_at(bit) {
                if routed.bitstream().get(bit) {
                    continue;
                }
                if !device.pip(pip).category.is_general_routing() {
                    continue;
                }
                let effect = classify_bit(&device, &routed, bit);
                *classes_seen.entry(effect.class).or_insert(0) += 1;
            }
        }
        // Even a small design must expose bridge and antenna candidates; a
        // conflict needs an unset PIP onto a used pin, which the architecture
        // provides through the extra input-pin candidates.
        assert!(
            classes_seen.contains_key(&FaultClass::Bridge),
            "{classes_seen:?}"
        );
        assert!(
            classes_seen.contains_key(&FaultClass::InputAntenna),
            "{classes_seen:?}"
        );
        assert!(
            classes_seen.contains_key(&FaultClass::Others),
            "{classes_seen:?}"
        );
    }

    #[test]
    fn clb_mux_pips_classify_as_mux() {
        use tmr_arch::PipCategory;
        assert!(is_clb_mux_category(PipCategory::InputMux));
        assert!(!is_clb_mux_category(PipCategory::Switchbox));
        assert!(!is_clb_mux_category(PipCategory::LongInput));
    }

    /// Golden census over the whole configuration space of the routed
    /// 4-bit counter: every one of the eight `FaultClass` variants appears,
    /// and each class obeys its defining structural invariant.
    #[test]
    fn classify_bit_covers_all_eight_classes_with_their_invariants() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();
        let mut seen: std::collections::BTreeMap<FaultClass, usize> =
            std::collections::BTreeMap::new();
        for bit in 0..layout.bit_count() {
            let effect = classify_bit(&device, &routed, bit);
            assert_eq!(effect.bit, bit);
            *seen.entry(effect.class).or_insert(0) += 1;
            match effect.class {
                FaultClass::Lut => {
                    // Only the truth table may change.
                    assert!(effect.overlay.shorted_nets.is_empty());
                    assert!(effect.overlay.opened_sinks.is_empty());
                    assert!(effect.overlay.corrupted_nets.is_empty());
                    assert!(effect.overlay.ff_init_overrides.is_empty());
                }
                FaultClass::Initialization => {
                    // Only a flip-flop power-up value may change, and it must
                    // be inverted, not copied.
                    assert!(effect.overlay.lut_overrides.is_empty());
                    assert!(effect.overlay.shorted_nets.is_empty());
                    for &(cell, init) in &effect.overlay.ff_init_overrides {
                        match routed.netlist().cell(cell).kind {
                            CellKind::Dff { init: original } => assert_eq!(init, !original),
                            _ => panic!("FF init override must target a flip-flop"),
                        }
                    }
                }
                FaultClass::Open => {
                    // A set general-routing PIP opened: sinks may float, but
                    // nothing is shorted or corrupted.
                    assert!(routed.bitstream().get(bit), "opens come from set bits");
                    assert!(effect.overlay.shorted_nets.is_empty());
                    assert!(effect.overlay.corrupted_nets.is_empty());
                }
                FaultClass::Bridge | FaultClass::Conflict => {
                    // A new PIP couples two used, distinct nets (when both
                    // endpoints are routed; a bridge candidate with an unused
                    // destination has an empty overlay).
                    assert!(!routed.bitstream().get(bit));
                    for &(a, b) in &effect.overlay.shorted_nets {
                        assert_ne!(a, b);
                    }
                }
                FaultClass::InputAntenna => {
                    // A floating aggressor corrupts exactly one victim net.
                    assert!(!routed.bitstream().get(bit));
                    assert_eq!(effect.overlay.corrupted_nets.len(), 1);
                    assert!(effect.overlay.shorted_nets.is_empty());
                }
                FaultClass::Mux | FaultClass::Others => {}
            }
            // The unprotected counter has one domain, so nothing can cross.
            assert!(!effect.crosses_domains);
            assert!(effect.affected_domains(&routed).len() <= 1);
        }
        for class in FaultClass::ALL {
            assert!(
                seen.get(&class).copied().unwrap_or(0) > 0,
                "class {class} must appear in the census: {seen:?}"
            );
        }
    }

    /// `classify_fault` of a singleton is exactly `classify_bit`, and the
    /// multi-bit merge obeys its cumulative refinements: two truth-table
    /// flips of one LUT combine into a single override carrying both flipped
    /// entries, and every component effect appears in the union.
    #[test]
    fn classify_fault_merges_component_effects_cumulatively() {
        let (device, routed) = routed_counter();
        let layout = device.config_layout();

        // Singleton faults reproduce classify_bit verbatim (borrowing the
        // component overlay, not cloning it).
        for bit in (0..layout.bit_count()).step_by(37) {
            let single = classify_bit(&device, &routed, bit);
            let fault = classify_fault(&device, &routed, &[bit]);
            assert_eq!(fault.bits(), &[bit]);
            assert_eq!(fault.class(), single.class);
            assert_eq!(fault.overlay(), &single.overlay);
            assert_eq!(fault.crosses_domains(), single.crosses_domains);
            assert_eq!(fault.effects(), &[single]);
        }

        // Two exercised truth-table bits of the same placed LUT: the merged
        // overlay holds ONE override with both entries flipped (the
        // simulator keeps one override per cell, so keeping two would drop
        // one of the flips).
        let (site, cell, init) = device
            .lut_sites()
            .iter()
            .find_map(|&site| {
                let cell = routed.placement().cell_at(site)?;
                match routed.netlist().cell(cell).kind {
                    CellKind::Lut { init, .. } => Some((site, cell, init)),
                    _ => None,
                }
            })
            .expect("the counter uses LUTs");
        let bit_of = |lut_bit: u8| {
            layout
                .bit_of(&tmr_arch::ConfigResource::LutBit { site, bit: lut_bit })
                .expect("LUT sites own 16 truth-table bits")
        };
        // Entries 0 and 1 are exercised for every LUT arity k >= 1.
        let (a, b) = (bit_of(0), bit_of(1));
        let fault = classify_fault(&device, &routed, &[a.min(b), a.max(b)]);
        assert_eq!(fault.class(), FaultClass::Lut);
        assert_eq!(
            fault.overlay().lut_overrides,
            vec![(cell, init ^ 0b01 ^ 0b10)],
            "both entries must flip in one cumulative override"
        );
        assert_eq!(fault.effects().len(), 2);

        // Removing every PIP of a routed net at once disconnects all of the
        // net's sinks — at least as many as any single open.
        let (net, tree) = routed
            .netlist()
            .nets()
            .find_map(|(id, _)| Some((id, routed.route_of(id)?)))
            .expect("a routed design has routed nets");
        let open_bits: Vec<usize> = tree.pips.iter().map(|&pip| layout.pip_bit(pip)).collect();
        let mut sorted = open_bits.clone();
        sorted.sort_unstable();
        let fault = classify_fault(&device, &routed, &sorted);
        assert_eq!(
            fault.overlay().opened_sinks.len(),
            tree.sinks.len(),
            "removing the whole tree of {net:?} must open every sink"
        );
    }

    /// On a TMR design the affected-domain sets drive the static verdicts:
    /// dynamic `crosses_domains` must coincide with two distinct redundant
    /// domains in the structural set.
    #[test]
    fn affected_domains_match_the_crossing_flag_on_a_tmr_design() {
        use tmr_core::{apply_tmr, TmrConfig};
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let netlist = techmap(&optimize(&lower(&design).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();
        let layout = device.config_layout();
        let mut crossing = 0;
        for bit in 0..layout.bit_count() {
            let effect = classify_bit(&device, &routed, bit);
            let domains = effect.affected_domains(&routed);
            let redundant = domains.iter().filter(|d| d.is_redundant()).count();
            if effect.crosses_domains {
                crossing += 1;
                assert!(
                    redundant >= 2,
                    "bit {bit}: dynamic crossing must show two redundant domains, got {domains:?}"
                );
            }
            if effect.overlay.is_empty() {
                assert!(
                    domains.is_empty(),
                    "bit {bit}: empty overlays affect nothing"
                );
            }
        }
        assert!(crossing > 0, "a routed TMR design has crossing candidates");
    }
}
