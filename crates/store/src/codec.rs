//! The dependency-free binary codec under the artifact store: a byte writer,
//! a checked byte reader and the [`Persist`] trait tying them together.
//!
//! The format is deliberately primitive — little-endian fixed-width integers,
//! length-prefixed sequences, one tag byte per enum variant — because the
//! store's integrity guarantees live one layer up: every persisted entry
//! carries a length and an FNV-1a checksum (see [`crate::Store`]), so the
//! decoder here only needs to be *safe* on arbitrary bytes (no panics, no
//! unbounded allocations), not self-describing. Encodings are canonical —
//! the same value always produces the same bytes — which the byte-identity
//! guarantees of campaign resume rely on.

use std::fmt;

/// Decoding failure: the payload ended early or contained an impossible
/// value. Corrupt store entries surface as this and are treated as misses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value was complete.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// A tag or length field held a value outside the encodable range.
    Invalid {
        /// Byte offset of the offending field.
        at: usize,
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { at } => write!(f, "payload truncated at byte {at}"),
            CodecError::Invalid { at, what } => write!(f, "invalid {what} at byte {at}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends primitive values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (the format is
    /// pointer-width independent).
    pub fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn bool(&mut self, value: bool) {
        self.u8(u8::from(value));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, value: &str) {
        self.usize(value.len());
        self.buf.extend_from_slice(value.as_bytes());
    }
}

/// Reads primitive values back out of a byte slice, with bounds checking.
#[derive(Debug)]
pub struct ByteReader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> ByteReader<'b> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'b [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// The current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns `true` once every byte has been consumed — decoders assert
    /// this to reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(CodecError::Truncated { at: self.pos })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` (rejecting values beyond the platform's range).
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let at = self.pos;
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid { at, what: "usize" })
    }

    /// Reads a sequence length and sanity-bounds it against the remaining
    /// payload (`min_element_bytes` per element, 1 for unknown) so corrupt
    /// lengths cannot trigger huge allocations before the data runs out.
    pub fn len(&mut self, min_element_bytes: usize) -> Result<usize, CodecError> {
        let at = self.pos;
        let len = self.usize()?;
        let remaining = self.bytes.len() - self.pos;
        if len
            .checked_mul(min_element_bytes.max(1))
            .is_none_or(|need| need > remaining)
        {
            return Err(CodecError::Invalid { at, what: "length" });
        }
        Ok(len)
    }

    /// Reads a boolean (rejecting bytes other than 0/1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid { at, what: "bool" }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.len(1)?;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid { at, what: "utf-8" })
    }
}

/// A type with a canonical binary encoding for the artifact store.
///
/// The trait is local to `tmr-store`, which sits above the data crates in
/// the workspace graph — so implementations for their types (netlists,
/// placements, golden runs, campaign results) live here without orphan-rule
/// contortions, and the data crates stay persistence-agnostic.
pub trait Persist: Sized {
    /// Appends the canonical encoding of `self`.
    fn encode(&self, w: &mut ByteWriter);

    /// Decodes one value, consuming exactly the bytes [`Persist::encode`]
    /// produced.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or invalid input.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;

    /// Encodes `self` into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a value from a complete byte slice, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated, invalid or oversized input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let value = Self::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(CodecError::Invalid {
                at: r.position(),
                what: "trailing bytes",
            });
        }
        Ok(value)
    }
}

impl Persist for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl Persist for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl Persist for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.usize(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.usize()
    }
}

impl Persist for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.bool(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.bool()
    }
}

impl Persist for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.str(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.str()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.u8(0),
            Some(value) => {
                w.u8(1);
                value.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::Invalid {
                at,
                what: "option tag",
            }),
        }
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        42u64.encode(&mut w);
        7u32.encode(&mut w);
        usize::MAX.encode(&mut w);
        true.encode(&mut w);
        "héllo\n".to_string().encode(&mut w);
        vec![1usize, 2, 3].encode(&mut w);
        Some(9u64).encode(&mut w);
        Option::<u64>::None.encode(&mut w);
        ("a".to_string(), 5u32, vec![1usize]).encode(&mut w);

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(u64::decode(&mut r), Ok(42));
        assert_eq!(u32::decode(&mut r), Ok(7));
        assert_eq!(usize::decode(&mut r), Ok(usize::MAX));
        assert_eq!(bool::decode(&mut r), Ok(true));
        assert_eq!(String::decode(&mut r).as_deref(), Ok("héllo\n"));
        assert_eq!(Vec::<usize>::decode(&mut r), Ok(vec![1, 2, 3]));
        assert_eq!(Option::<u64>::decode(&mut r), Ok(Some(9)));
        assert_eq!(Option::<u64>::decode(&mut r), Ok(None));
        assert_eq!(
            <(String, u32, Vec<usize>)>::decode(&mut r),
            Ok(("a".to_string(), 5, vec![1]))
        );
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = 1234u64.to_bytes();
        for cut in 0..bytes.len() {
            assert!(u64::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = true.to_bytes();
        bytes.push(0);
        assert_eq!(
            bool::from_bytes(&bytes),
            Err(CodecError::Invalid {
                at: 1,
                what: "trailing bytes"
            })
        );
    }

    #[test]
    fn invalid_tags_are_rejected() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u64>::from_bytes(&[7]).is_err());
    }

    #[test]
    fn corrupt_lengths_cannot_allocate_unboundedly() {
        // A length claiming u64::MAX elements must fail before allocating.
        let bytes = u64::MAX.to_bytes();
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
        // Non-UTF-8 strings are invalid, not panics.
        let mut w = ByteWriter::new();
        w.usize(2);
        w.u8(0xff);
        w.u8(0xfe);
        assert_eq!(
            String::from_bytes(&w.into_bytes()),
            Err(CodecError::Invalid {
                at: 8,
                what: "utf-8"
            })
        );
    }
}
