//! Disk-backed artifact store for the TMR pipeline.
//!
//! The facade's flows memoize expensive stages (synthesis, place-and-route,
//! golden simulation, fault campaigns) in an in-memory
//! [`ArtifactCache`](tmr_core::pipeline::ArtifactCache) keyed by `(stage,
//! fingerprint)`. This crate extends that scheme to disk:
//!
//! * [`Persist`] — a dependency-free canonical binary codec for
//!   the pipeline artifacts (netlists, routed designs, golden runs, campaign
//!   results and resumable campaign prefixes);
//! * [`Store`] — one checksummed, atomically-written file per key under a
//!   root directory (`TMR_CACHE_DIR` by convention), corrupt entries
//!   detected and treated as misses;
//! * [`PersistentCache`] — the memory cache layered over a store, so flows
//!   warm-start across processes: a second run of the same design skips
//!   synthesis, placement, routing and simulation entirely.
//!
//! ```
//! use tmr_core::pipeline::CacheKey;
//! use tmr_store::{Persist, Store};
//!
//! let root = std::env::temp_dir().join(format!("tmr-store-doc-{}", std::process::id()));
//! let store = Store::open(&root).unwrap();
//! let key = CacheKey::new("demo", 0x1234);
//! store.save_value(key, &vec![1u64, 2, 3]);
//! assert_eq!(store.load_as::<Vec<u64>>(key), Some(vec![1, 2, 3]));
//! std::fs::remove_dir_all(&root).unwrap();
//! ```

mod cache;
mod codec;
mod persist;
mod store;

pub use cache::PersistentCache;
pub use codec::{ByteReader, ByteWriter, CodecError, Persist};
pub use persist::CampaignPrefix;
pub use store::{DiskStats, Store, CACHE_DIR_ENV, FORMAT_VERSION, MAGIC};
