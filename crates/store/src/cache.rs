//! The two-level cache: the in-memory [`ArtifactCache`] in front, a
//! [`Store`] behind it.
//!
//! Lookup order is memory → disk → compute. The disk probe and the
//! write-back both happen *inside* the memory cache's miss closure, so the
//! in-memory cache keeps its single-computation semantics and its
//! `stage.<label>` span keeps wrapping exactly the work that was actually
//! performed (a disk hit shows up as a fast stage span containing a
//! `store.read`; a cold miss shows the full compute plus a `store.write`).

use crate::codec::Persist;
use crate::store::Store;
use std::sync::Arc;
use tmr_core::pipeline::{ArtifactCache, CacheKey};

/// An [`ArtifactCache`] layered over an optional disk [`Store`].
///
/// With no store attached this is exactly the in-memory cache; flows treat
/// the two cases uniformly.
#[derive(Debug, Clone)]
pub struct PersistentCache {
    mem: Arc<ArtifactCache>,
    disk: Option<Arc<Store>>,
}

impl PersistentCache {
    /// Layers `mem` over `disk` (pass `None` for memory-only behaviour).
    pub fn new(mem: Arc<ArtifactCache>, disk: Option<Arc<Store>>) -> Self {
        Self { mem, disk }
    }

    /// The in-memory layer.
    pub fn mem(&self) -> &Arc<ArtifactCache> {
        &self.mem
    }

    /// The disk layer, if attached.
    pub fn disk(&self) -> Option<&Arc<Store>> {
        self.disk.as_ref()
    }

    /// Memory → disk → compute lookup for artifacts whose persisted form
    /// differs from their in-memory form.
    ///
    /// * `from_payload` turns a decoded disk payload `P` into the artifact
    ///   `T` (e.g. recompiling a persisted source netlist);
    /// * `compute` produces both, so a cold miss can return the artifact
    ///   and write the payload back in one pass.
    ///
    /// # Errors
    ///
    /// Propagates errors from either closure; nothing is cached on error.
    pub fn get_or_try_insert_persisted<T, P, E>(
        &self,
        key: CacheKey,
        from_payload: impl FnOnce(P) -> Result<T, E>,
        compute: impl FnOnce() -> Result<(T, P), E>,
    ) -> Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
        P: Persist,
    {
        self.mem.get_or_try_insert(key, || {
            if let Some(disk) = &self.disk {
                if let Some(payload) = disk.load_as::<P>(key) {
                    return from_payload(payload);
                }
                let (artifact, payload) = compute()?;
                disk.save_value(key, &payload);
                return Ok(artifact);
            }
            compute().map(|(artifact, _)| artifact)
        })
    }

    /// Convenience for artifacts that persist as themselves (`T = P`).
    ///
    /// # Errors
    ///
    /// Propagates errors from `compute`; nothing is cached on error.
    pub fn get_or_try_insert_self<T, E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E>
    where
        T: Persist + Clone + Send + Sync + 'static,
    {
        self.get_or_try_insert_persisted(key, Ok, || {
            compute().map(|artifact| (artifact.clone(), artifact))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> (PathBuf, Arc<Store>) {
        let root =
            std::env::temp_dir().join(format!("tmr-store-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(Store::open(&root).unwrap());
        (root, store)
    }

    #[test]
    fn cold_miss_computes_and_persists() {
        let (root, store) = temp_store("cold");
        let cache = PersistentCache::new(ArtifactCache::shared(), Some(store.clone()));
        let key = CacheKey::new("unit", 11);
        let mut computed = 0;
        let value: Arc<Vec<u64>> = cache
            .get_or_try_insert_self::<_, Infallible>(key, || {
                computed += 1;
                Ok(vec![5, 6])
            })
            .unwrap();
        assert_eq!(*value, vec![5, 6]);
        assert_eq!(computed, 1);
        assert_eq!(store.stats().writes, 1);

        // A fresh memory cache over the same store is served from disk.
        let warm = PersistentCache::new(ArtifactCache::shared(), Some(store.clone()));
        let value: Arc<Vec<u64>> = warm
            .get_or_try_insert_self::<_, Infallible>(key, || {
                computed += 1;
                Ok(vec![0])
            })
            .unwrap();
        assert_eq!(*value, vec![5, 6]);
        assert_eq!(computed, 1, "disk hit skips the compute");
        assert_eq!(store.stats().hits, 1);

        // The memory layer now answers without touching disk again.
        let value: Arc<Vec<u64>> = warm
            .get_or_try_insert_self::<_, Infallible>(key, || unreachable!())
            .unwrap();
        assert_eq!(*value, vec![5, 6]);
        assert_eq!(store.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn distinct_payload_form_round_trips() {
        let (root, store) = temp_store("payload");
        let key = CacheKey::new("unit", 12);
        let cache = PersistentCache::new(ArtifactCache::shared(), Some(store.clone()));
        // Artifact = String, persisted payload = Vec<u64> of char codes.
        let artifact: Arc<String> = cache
            .get_or_try_insert_persisted::<_, Vec<u64>, Infallible>(
                key,
                |codes| {
                    Ok(codes
                        .iter()
                        .map(|&c| char::from_u32(c as u32).unwrap())
                        .collect())
                },
                || Ok(("hi".to_string(), vec![104, 105])),
            )
            .unwrap();
        assert_eq!(*artifact, "hi");

        let warm = PersistentCache::new(ArtifactCache::shared(), Some(store));
        let artifact: Arc<String> = warm
            .get_or_try_insert_persisted::<_, Vec<u64>, Infallible>(
                key,
                |codes| {
                    Ok(codes
                        .iter()
                        .map(|&c| char::from_u32(c as u32).unwrap())
                        .collect())
                },
                || unreachable!("served from disk"),
            )
            .unwrap();
        assert_eq!(*artifact, "hi");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn errors_are_not_cached_anywhere() {
        let (root, store) = temp_store("errors");
        let cache = PersistentCache::new(ArtifactCache::shared(), Some(store.clone()));
        let key = CacheKey::new("unit", 13);
        let failed: Result<Arc<Vec<u64>>, &str> = cache.get_or_try_insert_self(key, || Err("boom"));
        assert_eq!(failed.unwrap_err(), "boom");
        assert_eq!(store.stats().writes, 0);
        assert!(!store.contains(key));
        let ok: Arc<Vec<u64>> = cache
            .get_or_try_insert_self::<_, &str>(key, || Ok(vec![1]))
            .unwrap();
        assert_eq!(*ok, vec![1]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn without_disk_layer_behaves_like_memory_cache() {
        let cache = PersistentCache::new(ArtifactCache::shared(), None);
        assert!(cache.disk().is_none());
        let key = CacheKey::new("unit", 14);
        let a: Arc<Vec<u64>> = cache
            .get_or_try_insert_self::<_, Infallible>(key, || Ok(vec![9]))
            .unwrap();
        let b: Arc<Vec<u64>> = cache
            .get_or_try_insert_self::<_, Infallible>(key, || unreachable!())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
