//! [`Persist`] implementations for the pipeline artifacts the store holds:
//! netlists, placed-and-routed designs, golden runs and campaign results.
//!
//! Every encoding is canonical — collections that live in hash maps in
//! memory (routing trees) are serialized in net-index order, so the same
//! artifact always produces the same bytes regardless of hash-map iteration
//! order. Enum variants are encoded as their position in a fixed table
//! (`FaultClass::ALL`, the `CellKind` list below); adding a variant mid-table
//! is a format break and must bump [`crate::FORMAT_VERSION`].

use crate::codec::{ByteReader, ByteWriter, CodecError, Persist};
use std::collections::HashMap;
use tmr_arch::{Bitstream, NodeId, PipId, SiteId};
use tmr_faultsim::{CampaignResult, FaultClass, FaultOutcome};
use tmr_netlist::{
    Cell, CellId, CellKind, Domain, Net, NetDriver, NetId, NetSink, Netlist, Port, PortDir, PortId,
};
use tmr_pnr::{Placement, RouteTree, RoutedDesign};
use tmr_sim::{GoldenRun, OutputGroups, SimStats, SimTrace, Stimulus, Trit};

// ---------------------------------------------------------------------------
// Dense ids
// ---------------------------------------------------------------------------

macro_rules! persist_id {
    ($($id:ty),*) => {$(
        impl Persist for $id {
            fn encode(&self, w: &mut ByteWriter) {
                w.u32(self.index() as u32);
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
                Ok(<$id>::from_index(r.u32()? as usize))
            }
        }
    )*};
}

persist_id!(NodeId, PipId, SiteId, CellId, NetId, PortId);

// ---------------------------------------------------------------------------
// Netlist
// ---------------------------------------------------------------------------

impl Persist for Trit {
    fn encode(&self, w: &mut ByteWriter) {
        w.u8(match self {
            Trit::Zero => 0,
            Trit::One => 1,
            Trit::X => 2,
        });
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        match r.u8()? {
            0 => Ok(Trit::Zero),
            1 => Ok(Trit::One),
            2 => Ok(Trit::X),
            _ => Err(CodecError::Invalid { at, what: "trit" }),
        }
    }
}

impl Persist for Domain {
    fn encode(&self, w: &mut ByteWriter) {
        w.u8(match self {
            Domain::None => 0,
            Domain::Tr0 => 1,
            Domain::Tr1 => 2,
            Domain::Tr2 => 3,
            Domain::Voter => 4,
        });
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        match r.u8()? {
            0 => Ok(Domain::None),
            1 => Ok(Domain::Tr0),
            2 => Ok(Domain::Tr1),
            3 => Ok(Domain::Tr2),
            4 => Ok(Domain::Voter),
            _ => Err(CodecError::Invalid { at, what: "domain" }),
        }
    }
}

impl Persist for PortDir {
    fn encode(&self, w: &mut ByteWriter) {
        w.u8(match self {
            PortDir::Input => 0,
            PortDir::Output => 1,
        });
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        match r.u8()? {
            0 => Ok(PortDir::Input),
            1 => Ok(PortDir::Output),
            _ => Err(CodecError::Invalid {
                at,
                what: "port dir",
            }),
        }
    }
}

impl Persist for CellKind {
    fn encode(&self, w: &mut ByteWriter) {
        match *self {
            CellKind::Buf => w.u8(0),
            CellKind::Not => w.u8(1),
            CellKind::And2 => w.u8(2),
            CellKind::Or2 => w.u8(3),
            CellKind::Xor2 => w.u8(4),
            CellKind::Nand2 => w.u8(5),
            CellKind::Nor2 => w.u8(6),
            CellKind::Xnor2 => w.u8(7),
            CellKind::Mux2 => w.u8(8),
            CellKind::Maj3 => w.u8(9),
            CellKind::Gnd => w.u8(10),
            CellKind::Vcc => w.u8(11),
            CellKind::Lut { k, init } => {
                w.u8(12);
                w.u8(k);
                w.u64(init);
            }
            CellKind::Dff { init } => {
                w.u8(13);
                w.bool(init);
            }
            CellKind::Ibuf => w.u8(14),
            CellKind::Obuf => w.u8(15),
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        Ok(match r.u8()? {
            0 => CellKind::Buf,
            1 => CellKind::Not,
            2 => CellKind::And2,
            3 => CellKind::Or2,
            4 => CellKind::Xor2,
            5 => CellKind::Nand2,
            6 => CellKind::Nor2,
            7 => CellKind::Xnor2,
            8 => CellKind::Mux2,
            9 => CellKind::Maj3,
            10 => CellKind::Gnd,
            11 => CellKind::Vcc,
            12 => CellKind::Lut {
                k: r.u8()?,
                init: r.u64()?,
            },
            13 => CellKind::Dff { init: r.bool()? },
            14 => CellKind::Ibuf,
            15 => CellKind::Obuf,
            _ => {
                return Err(CodecError::Invalid {
                    at,
                    what: "cell kind",
                })
            }
        })
    }
}

impl Persist for NetDriver {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            NetDriver::Cell(cell) => {
                w.u8(0);
                cell.encode(w);
            }
            NetDriver::Input(port) => {
                w.u8(1);
                port.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        match r.u8()? {
            0 => Ok(NetDriver::Cell(CellId::decode(r)?)),
            1 => Ok(NetDriver::Input(PortId::decode(r)?)),
            _ => Err(CodecError::Invalid {
                at,
                what: "net driver",
            }),
        }
    }
}

impl Persist for NetSink {
    fn encode(&self, w: &mut ByteWriter) {
        match *self {
            NetSink::CellPin { cell, pin } => {
                w.u8(0);
                cell.encode(w);
                w.usize(pin);
            }
            NetSink::Output(port) => {
                w.u8(1);
                port.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        match r.u8()? {
            0 => Ok(NetSink::CellPin {
                cell: CellId::decode(r)?,
                pin: r.usize()?,
            }),
            1 => Ok(NetSink::Output(PortId::decode(r)?)),
            _ => Err(CodecError::Invalid {
                at,
                what: "net sink",
            }),
        }
    }
}

impl Persist for Cell {
    fn encode(&self, w: &mut ByteWriter) {
        w.str(&self.name);
        self.kind.encode(w);
        self.domain.encode(w);
        self.inputs.encode(w);
        self.output.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Cell {
            name: r.str()?,
            kind: CellKind::decode(r)?,
            domain: Domain::decode(r)?,
            inputs: Vec::decode(r)?,
            output: NetId::decode(r)?,
        })
    }
}

impl Persist for Net {
    fn encode(&self, w: &mut ByteWriter) {
        w.str(&self.name);
        self.domain.encode(w);
        self.driver.encode(w);
        self.sinks.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Net {
            name: r.str()?,
            domain: Domain::decode(r)?,
            driver: Option::decode(r)?,
            sinks: Vec::decode(r)?,
        })
    }
}

impl Persist for Port {
    fn encode(&self, w: &mut ByteWriter) {
        w.str(&self.name);
        self.dir.encode(w);
        self.net.encode(w);
        self.domain.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Port {
            name: r.str()?,
            dir: PortDir::decode(r)?,
            net: NetId::decode(r)?,
            domain: Domain::decode(r)?,
        })
    }
}

impl Persist for Netlist {
    fn encode(&self, w: &mut ByteWriter) {
        w.str(self.name());
        w.usize(self.cell_count());
        for (_, cell) in self.cells() {
            cell.encode(w);
        }
        w.usize(self.net_count());
        for (_, net) in self.nets() {
            net.encode(w);
        }
        let ports: Vec<&Port> = self.ports().map(|(_, p)| p).collect();
        w.usize(ports.len());
        for port in ports {
            port.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let name = r.str()?;
        let cells = Vec::<Cell>::decode(r)?;
        let nets = Vec::<Net>::decode(r)?;
        let ports = Vec::<Port>::decode(r)?;
        let net_count = nets.len();
        let in_range = cells.iter().all(|c| {
            c.output.index() < net_count && c.inputs.iter().all(|n| n.index() < net_count)
        }) && ports.iter().all(|p| p.net.index() < net_count);
        if !in_range {
            return Err(CodecError::Invalid {
                at: r.position(),
                what: "netlist id range",
            });
        }
        Ok(Netlist::from_parts(name, cells, nets, ports))
    }
}

// ---------------------------------------------------------------------------
// Placed-and-routed design
// ---------------------------------------------------------------------------

impl Persist for Bitstream {
    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.len());
        w.usize(self.words().len());
        for &word in self.words() {
            w.u64(word);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        let len = r.usize()?;
        let words = Vec::<u64>::decode(r)?;
        // `Bitstream::from_words` asserts these invariants; check them here so
        // corrupt payloads surface as decode errors instead of panics.
        let consistent = words.len() == len.div_ceil(64)
            && (len % 64 == 0 || words.last().is_none_or(|&last| last >> (len % 64) == 0));
        if !consistent {
            return Err(CodecError::Invalid {
                at,
                what: "bitstream",
            });
        }
        Ok(Bitstream::from_words(words, len))
    }
}

impl Persist for Placement {
    fn encode(&self, w: &mut ByteWriter) {
        let sites: Vec<SiteId> = self.iter().map(|(_, site)| site).collect();
        sites.encode(w);
        w.u64(self.wirelength());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let sites = Vec::<SiteId>::decode(r)?;
        let wirelength = r.u64()?;
        Ok(Placement::from_parts(sites, wirelength))
    }
}

impl Persist for RouteTree {
    fn encode(&self, w: &mut ByteWriter) {
        self.source.encode(w);
        self.nodes.encode(w);
        self.pips.encode(w);
        self.sinks.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(RouteTree {
            source: NodeId::decode(r)?,
            nodes: Vec::decode(r)?,
            pips: Vec::decode(r)?,
            sinks: Vec::decode(r)?,
        })
    }
}

impl Persist for RoutedDesign {
    fn encode(&self, w: &mut ByteWriter) {
        self.netlist().encode(w);
        self.placement().encode(w);
        // Routes live in a hash map; serialize in net-index order so the
        // encoding is canonical.
        let mut routes: Vec<(NetId, &RouteTree)> = self.routes().collect();
        routes.sort_unstable_by_key(|(net, _)| net.index());
        w.usize(routes.len());
        for (net, tree) in routes {
            net.encode(w);
            tree.encode(w);
        }
        self.bitstream().encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let netlist = Netlist::decode(r)?;
        let placement = Placement::decode(r)?;
        let routes: HashMap<NetId, RouteTree> =
            Vec::<(NetId, RouteTree)>::decode(r)?.into_iter().collect();
        let bitstream = Bitstream::decode(r)?;
        Ok(RoutedDesign::from_parts(
            netlist, placement, routes, bitstream,
        ))
    }
}

// ---------------------------------------------------------------------------
// Simulation artifacts
// ---------------------------------------------------------------------------

impl Persist for Stimulus {
    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.vectors().len());
        for vector in self.vectors() {
            vector.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Stimulus::from_vectors(Vec::decode(r)?))
    }
}

impl Persist for SimTrace {
    fn encode(&self, w: &mut ByteWriter) {
        self.outputs.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(SimTrace {
            outputs: Vec::decode(r)?,
        })
    }
}

impl Persist for OutputGroups {
    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.len());
        for (base, bit, members) in self.groups() {
            w.str(base);
            w.u32(bit);
            w.usize(members.len());
            for &member in members {
                w.usize(member);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(OutputGroups::from_groups(Vec::decode(r)?))
    }
}

impl Persist for GoldenRun {
    fn encode(&self, w: &mut ByteWriter) {
        self.stimulus().encode(w);
        self.trace().encode(w);
        self.groups().encode(w);
        self.stimulus_seed().encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(GoldenRun::from_parts_with_seed(
            Stimulus::decode(r)?,
            SimTrace::decode(r)?,
            OutputGroups::decode(r)?,
            Option::decode(r)?,
        ))
    }
}

// ---------------------------------------------------------------------------
// Campaign results
// ---------------------------------------------------------------------------

impl Persist for SimStats {
    fn encode(&self, w: &mut ByteWriter) {
        for value in [
            self.levels_evaluated,
            self.levels_skipped,
            self.ops_evaluated,
            self.ops_skipped,
            self.words_narrow,
            self.words_wide,
            self.words_full_eval,
            self.max_lanes_per_word,
            self.lanes_simulated,
            self.lanes_retired_early,
            self.cone_dedup_hits,
            self.cone_grouped,
        ] {
            w.u64(value);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(SimStats {
            levels_evaluated: r.u64()?,
            levels_skipped: r.u64()?,
            ops_evaluated: r.u64()?,
            ops_skipped: r.u64()?,
            words_narrow: r.u64()?,
            words_wide: r.u64()?,
            words_full_eval: r.u64()?,
            max_lanes_per_word: r.u64()?,
            lanes_simulated: r.u64()?,
            lanes_retired_early: r.u64()?,
            cone_dedup_hits: r.u64()?,
            cone_grouped: r.u64()?,
        })
    }
}

impl Persist for FaultClass {
    fn encode(&self, w: &mut ByteWriter) {
        let tag = FaultClass::ALL
            .iter()
            .position(|class| class == self)
            .expect("FaultClass::ALL covers every variant");
        w.u8(tag as u8);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let at = r.position();
        let tag = r.u8()? as usize;
        FaultClass::ALL
            .get(tag)
            .copied()
            .ok_or(CodecError::Invalid {
                at,
                what: "fault class",
            })
    }
}

impl Persist for FaultOutcome {
    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.bit);
        self.bits.encode(w);
        self.class.encode(w);
        w.bool(self.wrong_answer);
        self.first_error_cycle.encode(w);
        w.bool(self.crosses_domains);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(FaultOutcome {
            bit: r.usize()?,
            bits: Vec::decode(r)?,
            class: FaultClass::decode(r)?,
            wrong_answer: r.bool()?,
            first_error_cycle: Option::decode(r)?,
            crosses_domains: r.bool()?,
        })
    }
}

impl Persist for CampaignResult {
    fn encode(&self, w: &mut ByteWriter) {
        w.str(&self.design);
        w.usize(self.fault_list_size);
        w.usize(self.simulated);
        self.outcomes.encode(w);
        self.stats.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(CampaignResult {
            design: r.str()?,
            fault_list_size: r.usize()?,
            simulated: r.usize()?,
            outcomes: Vec::decode(r)?,
            stats: SimStats::decode(r)?,
        })
    }
}

/// The persisted prefix of a paused or interrupted campaign: everything a
/// [`tmr_faultsim::CampaignSession`] needs to resume exactly where it left
/// off. Because sessions produce outcomes deterministically in fault-list
/// order (the exact-prefix guarantee), persisting at batch boundaries makes a
/// crash-resumed campaign byte-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CampaignPrefix {
    /// Outcomes of the injections completed so far, in injection order.
    pub outcomes: Vec<FaultOutcome>,
    /// Faults actually simulated so far (the non-skipped subset).
    pub simulated: usize,
    /// Simulator counters accumulated so far.
    pub stats: SimStats,
}

impl Persist for CampaignPrefix {
    fn encode(&self, w: &mut ByteWriter) {
        self.outcomes.encode(w);
        w.usize(self.simulated);
        self.stats.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(CampaignPrefix {
            outcomes: Vec::decode(r)?,
            simulated: r.usize()?,
            stats: SimStats::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_arch::Device;
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = value.to_bytes();
        let decoded = T::from_bytes(&bytes).expect("decodes");
        assert_eq!(&decoded, value);
        // Canonical: re-encoding the decoded value reproduces the bytes.
        assert_eq!(decoded.to_bytes(), bytes);
    }

    fn small_netlist() -> Netlist {
        techmap(&optimize(&lower(&counter(4)).unwrap())).unwrap()
    }

    #[test]
    fn netlist_round_trips() {
        let netlist = small_netlist();
        // Netlist has no PartialEq; canonical bytes are the equality proxy.
        let bytes = netlist.to_bytes();
        let decoded = Netlist::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.to_bytes(), bytes);
        decoded.validate().expect("decoded netlist is consistent");
        assert_eq!(decoded.name(), netlist.name());
        assert_eq!(decoded.cell_count(), netlist.cell_count());
        for ((_, a), (_, b)) in decoded.cells().zip(netlist.cells()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn routed_design_round_trips_canonically() {
        let device = Device::small(5, 5);
        let netlist = small_netlist();
        let routed = place_and_route(&device, &netlist, 7).unwrap();
        let bytes = routed.to_bytes();
        let decoded = RoutedDesign::from_bytes(&bytes).unwrap();
        // RoutedDesign has no PartialEq; compare the observable pieces.
        assert_eq!(decoded.bitstream(), routed.bitstream());
        assert_eq!(decoded.routes().count(), routed.routes().count());
        for (net, tree) in routed.routes() {
            assert_eq!(decoded.route_of(net), Some(tree));
            for &node in &tree.nodes {
                assert_eq!(decoded.net_of_node(node), Some(net));
            }
        }
        assert_eq!(
            decoded.placement().iter().collect::<Vec<_>>(),
            routed.placement().iter().collect::<Vec<_>>()
        );
        // Hash-map iteration order must not leak into the bytes.
        assert_eq!(decoded.to_bytes(), bytes);
        // The fault-list population derived from the decoded design matches.
        assert_eq!(
            decoded.design_related_bits(&device),
            routed.design_related_bits(&device)
        );
    }

    #[test]
    fn golden_run_round_trips_with_seed() {
        let netlist = small_netlist();
        let golden = GoldenRun::compute(&netlist, 8, 3).unwrap();
        round_trip(&golden);
        let decoded = GoldenRun::from_bytes(&golden.to_bytes()).unwrap();
        assert_eq!(decoded.stimulus_seed(), Some(3));
    }

    #[test]
    fn campaign_result_round_trips() {
        let result = CampaignResult {
            design: "demo".to_string(),
            fault_list_size: 100,
            simulated: 42,
            outcomes: vec![
                FaultOutcome {
                    bit: 3,
                    bits: vec![3],
                    class: FaultClass::Open,
                    wrong_answer: true,
                    first_error_cycle: Some(2),
                    crosses_domains: false,
                },
                FaultOutcome {
                    bit: 9,
                    bits: vec![9, 10],
                    class: FaultClass::Bridge,
                    wrong_answer: false,
                    first_error_cycle: None,
                    crosses_domains: true,
                },
            ],
            stats: SimStats {
                ops_evaluated: 7,
                lanes_simulated: 2,
                ..SimStats::default()
            },
        };
        round_trip(&result);
        // Stats round-trip too, even though CampaignResult equality skips
        // them.
        let decoded = CampaignResult::from_bytes(&result.to_bytes()).unwrap();
        assert_eq!(decoded.stats, result.stats);
    }

    #[test]
    fn campaign_prefix_round_trips() {
        let prefix = CampaignPrefix {
            outcomes: vec![FaultOutcome {
                bit: 1,
                bits: vec![1],
                class: FaultClass::Lut,
                wrong_answer: false,
                first_error_cycle: None,
                crosses_domains: false,
            }],
            simulated: 1,
            stats: SimStats::default(),
        };
        round_trip(&prefix);
    }

    #[test]
    fn every_fault_class_round_trips() {
        for class in FaultClass::ALL {
            round_trip(&class);
        }
        assert!(FaultClass::from_bytes(&[8]).is_err());
    }

    #[test]
    fn corrupt_bitstream_fails_instead_of_panicking() {
        let bits = Bitstream::zeros(70);
        let mut bytes = bits.to_bytes();
        // Corrupt the bit length so it no longer matches the word count.
        bytes[0] = 0xff;
        assert!(Bitstream::from_bytes(&bytes).is_err());
    }
}
