//! The on-disk artifact store: one file per `(stage, fingerprint)` key.
//!
//! # Layout
//!
//! ```text
//! <root>/
//!   meta.json                     format marker, written once
//!   <stage>/<fingerprint>.bin     one artifact per content-addressed key
//! ```
//!
//! Each `.bin` file is a small header followed by the codec payload:
//!
//! ```text
//! magic   4 bytes   "TMRS"
//! version u16 LE    FORMAT_VERSION
//! length  u64 LE    payload byte count
//! check   u64 LE    FNV-1a over the payload
//! payload …
//! ```
//!
//! Writes go to a `.tmp-<pid>` sibling first and are moved into place with
//! `rename`, so readers never observe a half-written entry. Reads verify
//! magic, version, length and checksum; any mismatch (torn write that
//! survived a crash, bit rot, a format bump) counts as *corrupt* and is
//! treated as a miss — the artifact is recomputed and rewritten. The store
//! is therefore safe to share between concurrent processes: the worst case
//! under a racing writer is a duplicate computation, never a wrong artifact.

use crate::codec::Persist;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tmr_core::json::Json;
use tmr_core::pipeline::CacheKey;

/// Magic bytes leading every artifact file.
pub const MAGIC: [u8; 4] = *b"TMRS";

/// On-disk format version; bump on any codec or header change.
pub const FORMAT_VERSION: u16 = 1;

/// Environment variable naming the store root for [`Store::from_env`].
pub const CACHE_DIR_ENV: &str = "TMR_CACHE_DIR";

const HEADER_LEN: usize = 4 + 2 + 8 + 8;

/// FNV-1a 64-bit over a byte slice — the same hash the in-memory
/// fingerprints use, applied to the payload for corruption detection.
fn checksum(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        state ^= u64::from(byte);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// Point-in-time effectiveness counters of a [`Store`] (or one stage of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Reads answered from disk.
    pub hits: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Reads that found an entry but rejected it (bad magic, version,
    /// length, checksum or payload decode) — counted *in addition to* a miss.
    pub corrupt: u64,
    /// Entries written.
    pub writes: u64,
}

impl DiskStats {
    fn merge(&mut self, other: &DiskStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.corrupt += other.corrupt;
        self.writes += other.writes;
    }
}

impl std::fmt::Display for DiskStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses on disk ({} writes{})",
            self.hits,
            self.misses,
            self.writes,
            if self.corrupt > 0 {
                format!(", {} corrupt", self.corrupt)
            } else {
                String::new()
            }
        )
    }
}

/// A content-addressed, disk-backed artifact store keyed by the pipeline's
/// `(stage, fingerprint)` cache keys.
///
/// The store is format-checked, checksummed and crash-safe (see the module
/// docs), and deliberately dumb otherwise: no eviction, no locking between
/// processes, no index — the filesystem is the index.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    stages: Mutex<BTreeMap<&'static str, DiskStats>>,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root` and stamps the
    /// format marker.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the root cannot be created or the
    /// format marker cannot be written.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let meta_path = root.join("meta.json");
        if !meta_path.exists() {
            let meta = Json::object([
                ("format", Json::from("tmr-store")),
                ("version", Json::from(u64::from(FORMAT_VERSION))),
            ]);
            fs::write(&meta_path, format!("{meta}\n"))?;
        }
        Ok(Self {
            root,
            stages: Mutex::new(BTreeMap::new()),
        })
    }

    /// Opens the store named by the `TMR_CACHE_DIR` environment variable.
    ///
    /// Returns `None` when the variable is unset or empty. An unusable
    /// directory also yields `None` (with a note on stderr) rather than an
    /// error: disk persistence is an optimization, and a flow that cannot
    /// warm-start should still run.
    pub fn from_env() -> Option<std::sync::Arc<Self>> {
        let root = std::env::var(CACHE_DIR_ENV)
            .ok()
            .filter(|v| !v.is_empty())?;
        match Self::open(&root) {
            Ok(store) => Some(std::sync::Arc::new(store)),
            Err(error) => {
                eprintln!("tmr-store: ignoring {CACHE_DIR_ENV}={root}: {error}");
                None
            }
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, key: CacheKey) -> PathBuf {
        self.root
            .join(key.stage)
            .join(format!("{:016x}.bin", key.fingerprint))
    }

    fn bump(&self, stage: &'static str, update: impl FnOnce(&mut DiskStats)) {
        let mut stages = self.stages.lock().expect("store stats poisoned");
        update(stages.entry(stage).or_default());
    }

    /// Loads the raw payload stored under `key`, verifying the header and
    /// checksum. Corrupt or missing entries return `None`.
    pub fn load(&self, key: CacheKey) -> Option<Vec<u8>> {
        let mut span = tmr_trace::enabled().then(|| {
            let mut span = tmr_trace::span("store.read");
            span.attr("stage", key.stage);
            span.attr("fingerprint", format!("{:016x}", key.fingerprint));
            span
        });
        let path = self.path_of(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.bump(key.stage, |s| s.misses += 1);
                if let Some(span) = &mut span {
                    span.attr("outcome", "miss");
                }
                return None;
            }
        };
        match Self::unwrap_payload(&bytes) {
            Some(payload) => {
                self.bump(key.stage, |s| s.hits += 1);
                if let Some(span) = &mut span {
                    span.attr("outcome", "hit");
                    tmr_trace::event("store.hit")
                        .attr("stage", key.stage)
                        .attr("bytes", payload.len());
                }
                Some(payload)
            }
            None => {
                self.bump(key.stage, |s| {
                    s.misses += 1;
                    s.corrupt += 1;
                });
                if let Some(span) = &mut span {
                    span.attr("outcome", "corrupt");
                }
                // Drop the bad entry so the rewrite is not racing a reader
                // that would re-flag it.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    fn unwrap_payload(bytes: &[u8]) -> Option<Vec<u8>> {
        if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
            return None;
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != FORMAT_VERSION {
            return None;
        }
        let length = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
        let check = u64::from_le_bytes(bytes[14..22].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != length || checksum(payload) != check {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Loads and decodes the artifact stored under `key`. A payload that
    /// passes the checksum but fails to decode is counted as corrupt and
    /// removed, like any other bad entry.
    pub fn load_as<T: Persist>(&self, key: CacheKey) -> Option<T> {
        let payload = self.load(key)?;
        match T::from_bytes(&payload) {
            Ok(value) => Some(value),
            Err(_) => {
                self.bump(key.stage, |s| {
                    s.corrupt += 1;
                    // The checksummed read above already counted a hit;
                    // reclassify it as a miss.
                    s.hits -= 1;
                    s.misses += 1;
                });
                let _ = fs::remove_file(self.path_of(key));
                None
            }
        }
    }

    /// Stores `payload` under `key`, atomically (write-then-rename).
    /// I/O failures are swallowed: persistence is best-effort.
    pub fn save(&self, key: CacheKey, payload: &[u8]) {
        let mut span = tmr_trace::enabled().then(|| {
            let mut span = tmr_trace::span("store.write");
            span.attr("stage", key.stage);
            span.attr("fingerprint", format!("{:016x}", key.fingerprint));
            span.attr("bytes", payload.len());
            span
        });
        let ok = self.try_save(key, payload).is_ok();
        if ok {
            self.bump(key.stage, |s| s.writes += 1);
        }
        if let Some(span) = &mut span {
            span.attr("outcome", if ok { "written" } else { "failed" });
        }
    }

    fn try_save(&self, key: CacheKey, payload: &[u8]) -> io::Result<()> {
        let path = self.path_of(key);
        let dir = path.parent().expect("entry paths have a stage directory");
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{:016x}-{}",
            key.fingerprint,
            std::process::id()
        ));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&MAGIC)?;
            file.write_all(&FORMAT_VERSION.to_le_bytes())?;
            file.write_all(&(payload.len() as u64).to_le_bytes())?;
            file.write_all(&checksum(payload).to_le_bytes())?;
            file.write_all(payload)?;
            file.sync_all()?;
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(error) => {
                let _ = fs::remove_file(&tmp);
                Err(error)
            }
        }
    }

    /// Encodes and stores an artifact under `key`.
    pub fn save_value<T: Persist>(&self, key: CacheKey, value: &T) {
        self.save(key, &value.to_bytes());
    }

    /// Removes the entry under `key`, if present. Used to retire a
    /// campaign's partial prefix once the full result is stored.
    pub fn remove(&self, key: CacheKey) {
        let _ = fs::remove_file(self.path_of(key));
    }

    /// Returns `true` if an entry exists under `key` (without validating it).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.path_of(key).exists()
    }

    /// Aggregate counters across all stages.
    pub fn stats(&self) -> DiskStats {
        let stages = self.stages.lock().expect("store stats poisoned");
        let mut total = DiskStats::default();
        for stats in stages.values() {
            total.merge(stats);
        }
        total
    }

    /// Per-stage counters, sorted by stage label.
    pub fn stage_stats(&self) -> Vec<(&'static str, DiskStats)> {
        let stages = self.stages.lock().expect("store stats poisoned");
        stages
            .iter()
            .map(|(&stage, &stats)| (stage, stats))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("tmr-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn save_load_round_trip_with_stats() {
        let root = temp_root("roundtrip");
        let store = Store::open(&root).unwrap();
        let key = CacheKey::new("unit", 0xabcd);
        assert_eq!(store.load(key), None);
        store.save(key, b"artifact bytes");
        assert!(store.contains(key));
        assert_eq!(store.load(key).as_deref(), Some(b"artifact bytes".as_ref()));
        let stats = store.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.writes, stats.corrupt),
            (1, 1, 1, 0)
        );
        assert_eq!(store.stage_stats()[0].0, "unit");
        // The format marker exists and is one JSON object.
        let meta = fs::read_to_string(root.join("meta.json")).unwrap();
        tmr_core::json::validate(&meta).unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopened_store_serves_previous_writes() {
        let root = temp_root("reopen");
        let key = CacheKey::new("unit", 7);
        {
            let store = Store::open(&root).unwrap();
            store.save_value(key, &vec![1u64, 2, 3]);
        }
        let store = Store::open(&root).unwrap();
        assert_eq!(store.load_as::<Vec<u64>>(key), Some(vec![1, 2, 3]));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_is_detected_and_cleared() {
        let root = temp_root("corrupt");
        let store = Store::open(&root).unwrap();
        let key = CacheKey::new("unit", 1);
        store.save(key, b"good payload");

        // Flip a payload byte on disk: checksum mismatch → miss + corrupt.
        let path = root.join("unit").join(format!("{:016x}.bin", 1u64));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(key), None);
        let stats = store.stats();
        assert_eq!((stats.corrupt, stats.misses), (1, 1));
        // The bad entry was dropped.
        assert!(!store.contains(key));

        // A truncated file is also rejected.
        store.save(key, b"good payload");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.load(key), None);
        assert_eq!(store.stats().corrupt, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn undecodable_payload_counts_as_corrupt_miss() {
        let root = temp_root("decode");
        let store = Store::open(&root).unwrap();
        let key = CacheKey::new("unit", 2);
        // A valid checksummed entry whose payload is not a valid Vec<u64>.
        store.save(key, &[0xff; 3]);
        assert_eq!(store.load_as::<Vec<u64>>(key), None);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.corrupt), (0, 1, 1));
        assert!(!store.contains(key));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_version_is_a_miss() {
        let root = temp_root("version");
        let store = Store::open(&root).unwrap();
        let key = CacheKey::new("unit", 3);
        store.save(key, b"payload");
        let path = root.join("unit").join(format!("{:016x}.bin", 3u64));
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = 0xee; // version low byte
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(key), None);
        let _ = fs::remove_dir_all(&root);
    }
}
