//! Netlist optimisation: dead-logic elimination.

use std::collections::HashSet;
use tmr_netlist::{CellId, NetDriver, NetId, Netlist};

/// Removes every cell whose output cannot reach a top-level output port,
/// following combinational paths and register D-inputs backwards from the
/// outputs (sweep of dead logic such as unused carry-out chains).
///
/// The result preserves all ports, the relative order of surviving cells, and
/// every cell's TMR domain.
pub fn optimize(netlist: &Netlist) -> Netlist {
    let mut trace_span = tmr_trace::span("synth.optimize");
    let mut live_cells: HashSet<CellId> = HashSet::new();
    let mut visited_nets: HashSet<NetId> = HashSet::new();
    let mut stack: Vec<NetId> = netlist.output_ports().map(|(_, p)| p.net).collect();

    while let Some(net) = stack.pop() {
        if !visited_nets.insert(net) {
            continue;
        }
        if let Some(NetDriver::Cell(cell)) = netlist.net(net).driver {
            if live_cells.insert(cell) {
                stack.extend(netlist.cell(cell).inputs.iter().copied());
            }
        }
    }

    trace_span.attr("cells_in", netlist.cell_count());
    trace_span.attr("cells_live", live_cells.len());
    netlist.filtered(|id, _| live_cells.contains(&id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_netlist::CellKind;

    #[test]
    fn removes_unreachable_cells() {
        let mut nl = Netlist::new("dce");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let live = nl.add_net("live");
        let dead = nl.add_net("dead");
        let dead2 = nl.add_net("dead2");
        nl.add_cell("u_live", CellKind::And2, vec![a, b], live)
            .unwrap();
        nl.add_cell("u_dead", CellKind::Or2, vec![a, b], dead)
            .unwrap();
        nl.add_cell("u_dead2", CellKind::Not, vec![dead], dead2)
            .unwrap();
        nl.add_output("y", live);

        let optimized = optimize(&nl);
        optimized.validate().unwrap();
        assert_eq!(optimized.cell_count(), 1);
        assert!(optimized.find_cell("u_live").is_some());
        assert!(optimized.find_cell("u_dead").is_none());
    }

    #[test]
    fn keeps_register_feedback_cones() {
        // Accumulator: the register and its adder are all live.
        let mut nl = Netlist::new("acc");
        let a = nl.add_input("a");
        let sum = nl.add_net("sum");
        let q = nl.add_net("q");
        nl.add_cell("u_add", CellKind::Xor2, vec![a, q], sum)
            .unwrap();
        nl.add_cell("u_reg", CellKind::Dff { init: false }, vec![sum], q)
            .unwrap();
        nl.add_output("y", q);
        let optimized = optimize(&nl);
        assert_eq!(optimized.cell_count(), 2);
    }

    #[test]
    fn removes_registers_that_feed_nothing() {
        let mut nl = Netlist::new("deadreg");
        let a = nl.add_input("a");
        let q = nl.add_net("q");
        let y = nl.add_net("y");
        nl.add_cell("u_reg", CellKind::Dff { init: false }, vec![a], q)
            .unwrap();
        nl.add_cell("u_buf", CellKind::Buf, vec![a], y).unwrap();
        nl.add_output("y", y);
        let optimized = optimize(&nl);
        assert_eq!(optimized.cell_count(), 1);
        assert!(optimized.find_cell("u_reg").is_none());
    }

    #[test]
    fn is_idempotent() {
        let mut nl = Netlist::new("idem");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_cell("u", CellKind::Not, vec![a], y).unwrap();
        nl.add_output("y", y);
        let once = optimize(&nl);
        let twice = optimize(&once);
        assert_eq!(once.cell_count(), twice.cell_count());
        assert_eq!(once.net_count(), twice.net_count());
    }
}
