//! The word-level design graph.
//!
//! A [`Design`] is a dataflow graph of word-level (bus-level) operators:
//! inputs, constants, signed adders/subtractors, constant multipliers,
//! registers, majority voters and outputs. All buses carry signed
//! two's-complement values of a declared width (1..=32 bits).
//!
//! This is the level at which `tmr-core` applies the TMR transformation,
//! because voter-partitioning decisions ("vote after each adder", "vote after
//! each tap") are statements about word-level components, exactly as in
//! Fig. 4 of the paper.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tmr_netlist::Domain;

/// Maximum supported bus width.
pub const MAX_WIDTH: u8 = 32;

/// Identifier of a [`WordSignal`] inside a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(u32);

impl SignalId {
    /// Creates a signal id from a dense index.
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
    /// Returns the dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of a [`WordNode`] inside a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordNodeId(u32);

impl WordNodeId {
    /// Creates a node id from a dense index.
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
    /// Returns the dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WordNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// A word-level operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordOp {
    /// A top-level input bus.
    Input,
    /// A top-level output; `port` is the external port name. Output nodes
    /// consume one signal and drive nothing.
    Output {
        /// External port name.
        port: String,
    },
    /// A constant bus value (two's complement of the output width).
    Const {
        /// The constant value.
        value: i64,
    },
    /// Signed addition of two buses (inputs are sign-extended to the output
    /// width; the result wraps on overflow).
    Add,
    /// Signed subtraction `a - b`.
    Sub,
    /// Multiplication of one bus by a compile-time constant coefficient
    /// (the "dedicated multipliers" of the paper's FIR filter).
    MulConst {
        /// The constant coefficient.
        coefficient: i64,
    },
    /// A register (one pipeline stage on the implicit global clock).
    Register {
        /// Power-up value.
        init: i64,
    },
    /// A bitwise 2-of-3 majority voter over three equal-width buses — the TMR
    /// voter. Inserted by `tmr-core`, never by user designs directly.
    Voter,
}

impl WordOp {
    /// Number of input buses the operator consumes.
    pub fn input_count(&self) -> usize {
        match self {
            WordOp::Input | WordOp::Const { .. } => 0,
            WordOp::Output { .. } | WordOp::MulConst { .. } | WordOp::Register { .. } => 1,
            WordOp::Add | WordOp::Sub => 2,
            WordOp::Voter => 3,
        }
    }

    /// Returns `true` if the operator produces an output signal.
    pub fn has_output(&self) -> bool {
        !matches!(self, WordOp::Output { .. })
    }

    /// Returns `true` for combinational arithmetic/logic operators (the
    /// "combinational logic components" of the paper: adders, multipliers,
    /// voters), i.e. everything except inputs, outputs, constants and
    /// registers.
    pub fn is_combinational_component(&self) -> bool {
        matches!(
            self,
            WordOp::Add | WordOp::Sub | WordOp::MulConst { .. } | WordOp::Voter
        )
    }

    /// Short mnemonic for reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            WordOp::Input => "input",
            WordOp::Output { .. } => "output",
            WordOp::Const { .. } => "const",
            WordOp::Add => "add",
            WordOp::Sub => "sub",
            WordOp::MulConst { .. } => "mul",
            WordOp::Register { .. } => "reg",
            WordOp::Voter => "voter",
        }
    }
}

impl fmt::Display for WordOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WordOp::Const { value } => write!(f, "const({value})"),
            WordOp::MulConst { coefficient } => write!(f, "mul(x{coefficient})"),
            WordOp::Register { init } => write!(f, "reg(init={init})"),
            WordOp::Output { port } => write!(f, "output({port})"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// A word-level bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordSignal {
    /// Signal name.
    pub name: String,
    /// Bus width in bits (1..=32).
    pub width: u8,
    /// TMR domain of the signal.
    pub domain: Domain,
    /// The node driving this signal (`None` only during construction).
    pub driver: Option<WordNodeId>,
}

/// A word-level operator instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordNode {
    /// Instance name.
    pub name: String,
    /// The operation.
    pub op: WordOp,
    /// TMR domain of the node.
    pub domain: Domain,
    /// Input signals in operator-defined order.
    pub inputs: Vec<SignalId>,
    /// Output signal, if the operator produces one.
    pub output: Option<SignalId>,
}

/// Errors produced while building a [`Design`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Bus width outside 1..=32.
    BadWidth {
        /// Offending signal name.
        signal: String,
        /// Requested width.
        width: u8,
    },
    /// Wrong number of inputs for an operator.
    ArityMismatch {
        /// Offending node name.
        node: String,
        /// Expected input count.
        expected: usize,
        /// Provided input count.
        actual: usize,
    },
    /// A referenced signal id was out of range.
    UnknownSignal(SignalId),
    /// A referenced node id was out of range.
    UnknownNode(WordNodeId),
    /// Voter inputs (or register input/output) had mismatched widths.
    WidthMismatch {
        /// Offending node name.
        node: String,
        /// Details of the mismatch.
        detail: String,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::BadWidth { signal, width } => {
                write!(f, "signal `{signal}` has unsupported width {width}")
            }
            DesignError::ArityMismatch {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node `{node}` expects {expected} input(s) but {actual} were provided"
            ),
            DesignError::UnknownSignal(id) => write!(f, "unknown signal id {id}"),
            DesignError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            DesignError::WidthMismatch { node, detail } => {
                write!(f, "width mismatch at node `{node}`: {detail}")
            }
        }
    }
}

impl Error for DesignError {}

/// Aggregate statistics of a word-level design.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DesignStats {
    /// Number of adder/subtractor nodes.
    pub adders: usize,
    /// Number of constant-multiplier nodes.
    pub multipliers: usize,
    /// Number of register nodes.
    pub registers: usize,
    /// Number of voter nodes.
    pub voters: usize,
    /// Number of input buses.
    pub inputs: usize,
    /// Number of output ports.
    pub outputs: usize,
    /// Total node count.
    pub nodes: usize,
}

/// A word-level dataflow design.
#[derive(Debug, Clone, Default)]
pub struct Design {
    name: String,
    signals: Vec<WordSignal>,
    nodes: Vec<WordNode>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // General construction (used by the TMR transformation)
    // ------------------------------------------------------------------

    /// Adds a node with an explicit domain, creating its output signal
    /// (`output_width` must be `Some` for operators that produce a value).
    ///
    /// This is the general constructor used by `tmr-core` when rebuilding a
    /// triplicated copy of a design; user code normally uses the typed
    /// helpers ([`Design::add_add`], [`Design::add_register`], …).
    ///
    /// # Errors
    ///
    /// Returns an error if the arity or widths are inconsistent.
    pub fn add_node_in_domain(
        &mut self,
        name: impl Into<String>,
        op: WordOp,
        inputs: Vec<SignalId>,
        output_width: Option<u8>,
        domain: Domain,
    ) -> Result<(WordNodeId, Option<SignalId>), DesignError> {
        let name = name.into();
        if inputs.len() != op.input_count() {
            return Err(DesignError::ArityMismatch {
                node: name,
                expected: op.input_count(),
                actual: inputs.len(),
            });
        }
        for &sig in &inputs {
            if sig.index() >= self.signals.len() {
                return Err(DesignError::UnknownSignal(sig));
            }
        }
        // Width rules.
        match &op {
            WordOp::Register { .. } => {
                let w_in = self.signals[inputs[0].index()].width;
                if let Some(w_out) = output_width {
                    if w_out != w_in {
                        return Err(DesignError::WidthMismatch {
                            node: name,
                            detail: format!("register output width {w_out} != input width {w_in}"),
                        });
                    }
                }
            }
            WordOp::Voter => {
                let w0 = self.signals[inputs[0].index()].width;
                for &sig in &inputs[1..] {
                    let w = self.signals[sig.index()].width;
                    if w != w0 {
                        return Err(DesignError::WidthMismatch {
                            node: name,
                            detail: format!("voter input widths differ ({w0} vs {w})"),
                        });
                    }
                }
            }
            _ => {}
        }

        let output = if op.has_output() {
            let width = match (&op, output_width) {
                (WordOp::Register { .. }, None) => self.signals[inputs[0].index()].width,
                (WordOp::Voter, None) => self.signals[inputs[0].index()].width,
                (_, Some(w)) => w,
                (_, None) => {
                    return Err(DesignError::WidthMismatch {
                        node: name,
                        detail: "operator requires an explicit output width".to_string(),
                    })
                }
            };
            if width == 0 || width > MAX_WIDTH {
                return Err(DesignError::BadWidth {
                    signal: name.clone(),
                    width,
                });
            }
            Some(self.push_signal(name.clone(), width, domain))
        } else {
            None
        };

        let id = WordNodeId::from_index(self.nodes.len());
        self.nodes.push(WordNode {
            name,
            op,
            domain,
            inputs,
            output,
        });
        if let Some(sig) = output {
            self.signals[sig.index()].driver = Some(id);
        }
        Ok((id, output))
    }

    /// Replaces input pin `pin` of `node` with `signal`.
    ///
    /// This is how registered feedback loops are closed: create the register
    /// with a placeholder input, build the logic that reads the register
    /// output, then patch the register input to the real signal.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::UnknownSignal`] for out-of-range ids,
    /// [`DesignError::ArityMismatch`] if `pin` is not a valid input pin, and
    /// [`DesignError::WidthMismatch`] if the new signal's width differs from
    /// the one being replaced.
    pub fn replace_input(
        &mut self,
        node: WordNodeId,
        pin: usize,
        signal: SignalId,
    ) -> Result<(), DesignError> {
        if signal.index() >= self.signals.len() {
            return Err(DesignError::UnknownSignal(signal));
        }
        let node_ref = self
            .nodes
            .get(node.index())
            .ok_or(DesignError::UnknownNode(node))?;
        let old = match node_ref.inputs.get(pin) {
            Some(&s) => s,
            None => {
                return Err(DesignError::ArityMismatch {
                    node: node_ref.name.clone(),
                    expected: node_ref.op.input_count(),
                    actual: pin + 1,
                })
            }
        };
        let old_width = self.signals[old.index()].width;
        let new_width = self.signals[signal.index()].width;
        if old_width != new_width {
            return Err(DesignError::WidthMismatch {
                node: node_ref.name.clone(),
                detail: format!("replacement width {new_width} != original width {old_width}"),
            });
        }
        self.nodes[node.index()].inputs[pin] = signal;
        Ok(())
    }

    fn push_signal(&mut self, name: String, width: u8, domain: Domain) -> SignalId {
        let id = SignalId::from_index(self.signals.len());
        self.signals.push(WordSignal {
            name,
            width,
            domain,
            driver: None,
        });
        id
    }

    // ------------------------------------------------------------------
    // Typed helpers
    // ------------------------------------------------------------------

    /// Adds a top-level input bus.
    ///
    /// # Panics
    ///
    /// Panics if the width is outside 1..=32.
    pub fn add_input(&mut self, name: impl Into<String>, width: u8) -> SignalId {
        self.add_input_in_domain(name, width, Domain::None)
    }

    /// Adds a top-level input bus in a TMR domain.
    ///
    /// # Panics
    ///
    /// Panics if the width is outside 1..=32.
    pub fn add_input_in_domain(
        &mut self,
        name: impl Into<String>,
        width: u8,
        domain: Domain,
    ) -> SignalId {
        self.add_node_in_domain(name, WordOp::Input, vec![], Some(width), domain)
            .expect("input construction cannot fail for valid widths")
            .1
            .expect("inputs produce a signal")
    }

    /// Adds a top-level output port reading `signal`.
    pub fn add_output(&mut self, port: impl Into<String>, signal: SignalId) -> WordNodeId {
        self.add_output_in_domain(port, signal, Domain::None)
    }

    /// Adds a top-level output port in a TMR domain.
    pub fn add_output_in_domain(
        &mut self,
        port: impl Into<String>,
        signal: SignalId,
        domain: Domain,
    ) -> WordNodeId {
        let port = port.into();
        self.add_node_in_domain(
            format!("out_{port}"),
            WordOp::Output { port },
            vec![signal],
            None,
            domain,
        )
        .expect("output construction cannot fail for valid signals")
        .0
    }

    /// Adds a constant bus.
    ///
    /// # Panics
    ///
    /// Panics if the width is outside 1..=32.
    pub fn add_const(&mut self, name: impl Into<String>, value: i64, width: u8) -> SignalId {
        self.add_node_in_domain(
            name,
            WordOp::Const { value },
            vec![],
            Some(width),
            Domain::None,
        )
        .expect("constant construction cannot fail for valid widths")
        .1
        .expect("constants produce a signal")
    }

    /// Adds a signed adder `a + b` with the given output width.
    ///
    /// # Panics
    ///
    /// Panics if the width is outside 1..=32 or a signal id is unknown.
    pub fn add_add(
        &mut self,
        name: impl Into<String>,
        a: SignalId,
        b: SignalId,
        width: u8,
    ) -> SignalId {
        self.add_node_in_domain(name, WordOp::Add, vec![a, b], Some(width), Domain::None)
            .expect("adder construction failed")
            .1
            .expect("adders produce a signal")
    }

    /// Adds a signed subtractor `a - b` with the given output width.
    ///
    /// # Panics
    ///
    /// Panics if the width is outside 1..=32 or a signal id is unknown.
    pub fn add_sub(
        &mut self,
        name: impl Into<String>,
        a: SignalId,
        b: SignalId,
        width: u8,
    ) -> SignalId {
        self.add_node_in_domain(name, WordOp::Sub, vec![a, b], Some(width), Domain::None)
            .expect("subtractor construction failed")
            .1
            .expect("subtractors produce a signal")
    }

    /// Adds a constant multiplier `a * coefficient` with the given output width.
    ///
    /// # Panics
    ///
    /// Panics if the width is outside 1..=32 or the signal id is unknown.
    pub fn add_mul_const(
        &mut self,
        name: impl Into<String>,
        a: SignalId,
        coefficient: i64,
        width: u8,
    ) -> SignalId {
        self.add_node_in_domain(
            name,
            WordOp::MulConst { coefficient },
            vec![a],
            Some(width),
            Domain::None,
        )
        .expect("multiplier construction failed")
        .1
        .expect("multipliers produce a signal")
    }

    /// Adds a register with power-up value 0.
    ///
    /// # Panics
    ///
    /// Panics if the signal id is unknown.
    pub fn add_register(&mut self, name: impl Into<String>, input: SignalId) -> SignalId {
        self.add_node_in_domain(
            name,
            WordOp::Register { init: 0 },
            vec![input],
            None,
            Domain::None,
        )
        .expect("register construction failed")
        .1
        .expect("registers produce a signal")
    }

    /// Adds a bitwise majority voter over three equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or a signal id is unknown.
    pub fn add_voter(
        &mut self,
        name: impl Into<String>,
        a: SignalId,
        b: SignalId,
        c: SignalId,
    ) -> SignalId {
        self.add_node_in_domain(name, WordOp::Voter, vec![a, b, c], None, Domain::Voter)
            .expect("voter construction failed")
            .1
            .expect("voters produce a signal")
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The signal with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn signal(&self, id: SignalId) -> &WordSignal {
        &self.signals[id.index()]
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: WordNodeId) -> &WordNode {
        &self.nodes[id.index()]
    }

    /// Iterates over all signals.
    pub fn signals(&self) -> impl Iterator<Item = (SignalId, &WordSignal)> {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId::from_index(i), s))
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (WordNodeId, &WordNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (WordNodeId::from_index(i), n))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// The input nodes, in creation order.
    pub fn inputs(&self) -> Vec<(WordNodeId, SignalId)> {
        self.nodes()
            .filter(|(_, n)| matches!(n.op, WordOp::Input))
            .map(|(id, n)| (id, n.output.expect("inputs have an output signal")))
            .collect()
    }

    /// The output nodes with their external port names, in creation order.
    pub fn outputs(&self) -> Vec<(WordNodeId, String, SignalId)> {
        self.nodes()
            .filter_map(|(id, n)| match &n.op {
                WordOp::Output { port } => Some((id, port.clone(), n.inputs[0])),
                _ => None,
            })
            .collect()
    }

    /// Finds a signal by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.signals()
            .find(|(_, s)| s.name == name)
            .map(|(id, _)| id)
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> DesignStats {
        let mut stats = DesignStats {
            nodes: self.node_count(),
            ..DesignStats::default()
        };
        for (_, node) in self.nodes() {
            match node.op {
                WordOp::Add | WordOp::Sub => stats.adders += 1,
                WordOp::MulConst { .. } => stats.multipliers += 1,
                WordOp::Register { .. } => stats.registers += 1,
                WordOp::Voter => stats.voters += 1,
                WordOp::Input => stats.inputs += 1,
                WordOp::Output { .. } => stats.outputs += 1,
                WordOp::Const { .. } => {}
            }
        }
        stats
    }

    // ------------------------------------------------------------------
    // Behavioural evaluation (reference model)
    // ------------------------------------------------------------------

    /// Runs the design for `inputs.len()` clock cycles and returns, for each
    /// cycle, the value of every output port *before* the clock edge of that
    /// cycle (combinational settle, then clock).
    ///
    /// `inputs[cycle]` maps input-node *signal names* to signed values; any
    /// missing input reads 0. Values are truncated to the bus width and
    /// interpreted as two's complement.
    ///
    /// This is the bit-true reference model against which the gate-level and
    /// FPGA-level simulations are checked.
    pub fn evaluate(&self, inputs: &[HashMap<String, i64>]) -> Vec<HashMap<String, i64>> {
        let mut register_state: HashMap<WordNodeId, i64> = self
            .nodes()
            .filter_map(|(id, n)| match n.op {
                WordOp::Register { init } => {
                    let width = self
                        .signal(n.output.expect("registers drive a signal"))
                        .width;
                    Some((id, truncate(init, width)))
                }
                _ => None,
            })
            .collect();

        let order = self.topological_order();
        let mut results = Vec::with_capacity(inputs.len());

        for cycle_inputs in inputs {
            let mut values: Vec<i64> = vec![0; self.signals.len()];
            // Registers drive their current state.
            for (&node, &state) in &register_state {
                if let Some(sig) = self.node(node).output {
                    values[sig.index()] = state;
                }
            }
            // Combinational settle in topological order.
            for &node_id in &order {
                let node = self.node(node_id);
                let out_sig = match node.output {
                    Some(s) => s,
                    None => continue,
                };
                let width = self.signal(out_sig).width;
                let value = match &node.op {
                    WordOp::Input => {
                        let name = &self.signal(out_sig).name;
                        truncate(cycle_inputs.get(name).copied().unwrap_or(0), width)
                    }
                    WordOp::Const { value } => truncate(*value, width),
                    WordOp::Add => truncate(
                        values[node.inputs[0].index()] + values[node.inputs[1].index()],
                        width,
                    ),
                    WordOp::Sub => truncate(
                        values[node.inputs[0].index()] - values[node.inputs[1].index()],
                        width,
                    ),
                    WordOp::MulConst { coefficient } => {
                        truncate(values[node.inputs[0].index()] * coefficient, width)
                    }
                    WordOp::Voter => {
                        let a = values[node.inputs[0].index()];
                        let b = values[node.inputs[1].index()];
                        let c = values[node.inputs[2].index()];
                        truncate((a & b) | (a & c) | (b & c), width)
                    }
                    WordOp::Register { .. } => continue, // already driven from state
                    WordOp::Output { .. } => unreachable!("outputs have no output signal"),
                };
                values[out_sig.index()] = value;
            }

            // Sample outputs.
            let mut out = HashMap::new();
            for (_, port, sig) in self.outputs() {
                out.insert(port, values[sig.index()]);
            }
            results.push(out);

            // Clock edge: registers capture their inputs.
            for (node, state) in register_state.iter_mut() {
                let n = self.node(*node);
                let width = self
                    .signal(n.output.expect("registers drive a signal"))
                    .width;
                *state = truncate(values[n.inputs[0].index()], width);
            }
        }
        results
    }

    /// Sets the TMR domain of a signal (used by the TMR transformation to tag
    /// voted signals with the domain of the logic they feed).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_signal_domain(&mut self, signal: SignalId, domain: Domain) {
        self.signals[signal.index()].domain = domain;
    }

    /// Topological order of the non-register nodes (register outputs act as
    /// sources, so registered feedback loops do not create cycles).
    pub fn topological_order(&self) -> Vec<WordNodeId> {
        let mut indegree = vec![0usize; self.nodes.len()];
        for (id, node) in self.nodes() {
            if matches!(node.op, WordOp::Register { .. }) {
                continue;
            }
            indegree[id.index()] = node
                .inputs
                .iter()
                .filter(|&&sig| {
                    self.signal(sig)
                        .driver
                        .map(|d| !matches!(self.node(d).op, WordOp::Register { .. }))
                        .unwrap_or(false)
                })
                .count();
        }

        let mut queue: Vec<WordNodeId> = self
            .nodes()
            .filter(|(id, n)| !matches!(n.op, WordOp::Register { .. }) && indegree[id.index()] == 0)
            .map(|(id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        // Consumers of each signal.
        let mut consumers: Vec<Vec<WordNodeId>> = vec![Vec::new(); self.signals.len()];
        for (id, node) in self.nodes() {
            for &sig in &node.inputs {
                consumers[sig.index()].push(id);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            if let Some(out) = self.node(id).output {
                for &consumer in &consumers[out.index()] {
                    let c = self.node(consumer);
                    if matches!(c.op, WordOp::Register { .. }) {
                        continue;
                    }
                    indegree[consumer.index()] -= 1;
                    if indegree[consumer.index()] == 0 {
                        queue.push(consumer);
                    }
                }
            }
        }
        order
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "design `{}`: {} adders, {} multipliers, {} registers, {} voters, {} inputs, {} outputs",
            self.name,
            stats.adders,
            stats.multipliers,
            stats.registers,
            stats.voters,
            stats.inputs,
            stats.outputs
        )
    }
}

/// Truncates a value to `width` bits and sign-extends back to i64.
pub(crate) fn truncate(value: i64, width: u8) -> i64 {
    debug_assert!((1..=MAX_WIDTH).contains(&width));
    let shift = 64 - u32::from(width);
    (value << shift) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_wraps_two_complement() {
        assert_eq!(truncate(5, 4), 5);
        assert_eq!(truncate(8, 4), -8);
        assert_eq!(truncate(-1, 4), -1);
        assert_eq!(truncate(255, 8), -1);
        assert_eq!(truncate(-129, 8), 127);
    }

    #[test]
    fn builds_and_reports_stats() {
        let mut d = Design::new("t");
        let a = d.add_input("a", 8);
        let b = d.add_input("b", 8);
        let s = d.add_add("s", a, b, 9);
        let m = d.add_mul_const("m", s, 3, 12);
        let q = d.add_register("q", m);
        d.add_output("y", q);
        let stats = d.stats();
        assert_eq!(stats.adders, 1);
        assert_eq!(stats.multipliers, 1);
        assert_eq!(stats.registers, 1);
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(d.signal(q).width, 12);
        assert!(d.to_string().contains("1 adders"));
    }

    #[test]
    fn voter_width_mismatch_is_rejected() {
        let mut d = Design::new("t");
        let a = d.add_input("a", 8);
        let b = d.add_input("b", 8);
        let c = d.add_input("c", 9);
        let err = d
            .add_node_in_domain("v", WordOp::Voter, vec![a, b, c], None, Domain::Voter)
            .unwrap_err();
        assert!(matches!(err, DesignError::WidthMismatch { .. }));
    }

    #[test]
    fn arity_is_checked() {
        let mut d = Design::new("t");
        let a = d.add_input("a", 8);
        let err = d
            .add_node_in_domain("bad", WordOp::Add, vec![a], Some(9), Domain::None)
            .unwrap_err();
        assert!(matches!(err, DesignError::ArityMismatch { .. }));
    }

    #[test]
    fn width_limits_are_enforced() {
        let mut d = Design::new("t");
        let err = d
            .add_node_in_domain("wide", WordOp::Input, vec![], Some(64), Domain::None)
            .unwrap_err();
        assert!(matches!(err, DesignError::BadWidth { .. }));
    }

    #[test]
    fn evaluate_combinational_pipeline() {
        // y = reg(a * 3 + b), 12-bit
        let mut d = Design::new("mac");
        let a = d.add_input("a", 8);
        let b = d.add_input("b", 8);
        let m = d.add_mul_const("m", a, 3, 12);
        let s = d.add_add("s", m, b, 12);
        let q = d.add_register("q", s);
        d.add_output("y", q);

        let mk = |a: i64, b: i64| {
            let mut h = HashMap::new();
            h.insert("a".to_string(), a);
            h.insert("b".to_string(), b);
            h
        };
        let out = d.evaluate(&[mk(5, 1), mk(-4, 2), mk(0, 0)]);
        // Cycle 0: register still holds init (0).
        assert_eq!(out[0]["y"], 0);
        // Cycle 1: sees 5*3+1 = 16.
        assert_eq!(out[1]["y"], 16);
        // Cycle 2: sees -4*3+2 = -10.
        assert_eq!(out[2]["y"], -10);
    }

    #[test]
    fn evaluate_voter_masks_one_bad_input() {
        let mut d = Design::new("vote");
        let a = d.add_input("a", 4);
        let b = d.add_input("b", 4);
        let c = d.add_input("c", 4);
        let v = d.add_voter("v", a, b, c);
        d.add_output("y", v);
        let mut h = HashMap::new();
        h.insert("a".to_string(), 7);
        h.insert("b".to_string(), 7);
        h.insert("c".to_string(), 1);
        let out = d.evaluate(&[h]);
        assert_eq!(out[0]["y"], 7);
    }

    #[test]
    fn outputs_and_inputs_listing() {
        let mut d = Design::new("io");
        let a = d.add_input("a", 4);
        d.add_output("y", a);
        assert_eq!(d.inputs().len(), 1);
        let outs = d.outputs();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1, "y");
        assert_eq!(d.find_signal("a"), Some(a));
        assert_eq!(d.find_signal("zzz"), None);
    }
}
