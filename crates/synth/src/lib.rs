//! # tmr-synth
//!
//! Word-level design capture, gate-level lowering and LUT technology mapping
//! for the `tmr-fpga` workspace.
//!
//! The flow mirrors the one the DATE 2005 paper used (VHDL → Xilinx ISE):
//!
//! 1. A design is captured as a word-level [`Design`] graph of arithmetic
//!    operators (constant multipliers, adders, registers, majority voters) —
//!    the level at which the TMR transformation of `tmr-core` operates,
//!    because "insert a voter after each adder" is a word-level statement.
//! 2. [`lower`] expands the word-level graph into a gate-level
//!    [`tmr_netlist::Netlist`] (ripple-carry adders, CSD shift-add constant
//!    multipliers, per-bit registers and majority gates), preserving the TMR
//!    [`tmr_netlist::Domain`] of every word-level node on every generated cell
//!    and net.
//! 3. [`techmap`] converts every combinational gate into a 4-input LUT cell
//!    and inserts I/O buffers, producing a netlist whose cells map one-to-one
//!    onto the sites of a `tmr-arch` device.
//! 4. [`optimize`] removes logic that cannot reach any output (dead-code
//!    elimination), as a synthesis tool would.
//!
//! ## Example
//!
//! ```
//! use tmr_synth::{Design, lower, techmap, optimize};
//!
//! // y = register(a + b)
//! let mut design = Design::new("adder");
//! let a = design.add_input("a", 8);
//! let b = design.add_input("b", 8);
//! let sum = design.add_add("sum", a, b, 9);
//! let q = design.add_register("q", sum);
//! design.add_output("y", q);
//!
//! let gates = lower(&design).unwrap();
//! let mapped = techmap(&optimize(&gates)).unwrap();
//! assert!(mapped.stats().luts > 0);
//! assert_eq!(mapped.stats().flip_flops, 9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod design;
mod lower;
mod opt;
mod techmap;
#[cfg(test)]
mod test_util;

pub use design::{
    Design, DesignError, DesignStats, SignalId, WordNode, WordNodeId, WordOp, WordSignal, MAX_WIDTH,
};
pub use lower::{lower, LowerError};
pub use opt::optimize;
pub use techmap::{techmap, TechmapError};
