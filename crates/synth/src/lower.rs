//! Lowering of word-level designs to gate-level netlists.
//!
//! Arithmetic is expanded structurally, the way a synthesis tool targeting a
//! LUT fabric without dedicated carry logic would:
//!
//! * adders/subtractors become ripple-carry chains of one parity LUT and one
//!   majority gate per bit,
//! * constant multipliers are expanded to canonical-signed-digit (CSD)
//!   shift-and-add networks,
//! * registers become one D flip-flop per bit,
//! * voters become one 3-input majority gate per bit, and
//! * every generated cell and net inherits the TMR [`Domain`] of the
//!   word-level node it was generated from.

use crate::design::{truncate, Design, WordOp};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tmr_netlist::{CellKind, Domain, NetId, Netlist, NetlistError};

/// Errors produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The generated netlist violated a structural invariant (internal error).
    Netlist(NetlistError),
    /// A signal had no driver (the design was not fully constructed).
    UndrivenSignal {
        /// Name of the undriven signal.
        signal: String,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Netlist(err) => write!(f, "netlist construction failed: {err}"),
            LowerError::UndrivenSignal { signal } => {
                write!(f, "signal `{signal}` has no driving node")
            }
        }
    }
}

impl Error for LowerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LowerError::Netlist(err) => Some(err),
            LowerError::UndrivenSignal { .. } => None,
        }
    }
}

impl From<NetlistError> for LowerError {
    fn from(err: NetlistError) -> Self {
        LowerError::Netlist(err)
    }
}

/// Lowers a word-level design to a gate-level netlist.
///
/// # Errors
///
/// Returns [`LowerError::UndrivenSignal`] if the design contains a signal with
/// no driver, or [`LowerError::Netlist`] if netlist construction fails (which
/// indicates an internal inconsistency).
pub fn lower(design: &Design) -> Result<Netlist, LowerError> {
    let mut trace_span = tmr_trace::span("synth.lower");
    let netlist = Lowering::new(design).run()?;
    trace_span.attr("cells", netlist.cell_count());
    trace_span.attr("nets", netlist.net_count());
    Ok(netlist)
}

/// Truth-table of a 3-input function as a LUT init word.
fn lut3_init(f: impl Fn(bool, bool, bool) -> bool) -> u64 {
    let mut init = 0u64;
    for assignment in 0..8usize {
        let a = assignment & 1 == 1;
        let b = assignment >> 1 & 1 == 1;
        let c = assignment >> 2 & 1 == 1;
        if f(a, b, c) {
            init |= 1 << assignment;
        }
    }
    init
}

struct Lowering<'a> {
    design: &'a Design,
    netlist: Netlist,
    /// Per-signal bit nets (LSB first).
    bits: Vec<Vec<NetId>>,
    /// Shared constant-0 net per domain.
    gnd: HashMap<Domain, NetId>,
    /// Shared constant-1 net per domain.
    vcc: HashMap<Domain, NetId>,
    unique: usize,
}

impl<'a> Lowering<'a> {
    fn new(design: &'a Design) -> Self {
        Self {
            design,
            netlist: Netlist::new(design.name()),
            bits: vec![Vec::new(); design.signal_count()],
            gnd: HashMap::new(),
            vcc: HashMap::new(),
            unique: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.unique += 1;
        format!("{prefix}_{}", self.unique)
    }

    fn gnd(&mut self, domain: Domain) -> NetId {
        if let Some(&net) = self.gnd.get(&domain) {
            return net;
        }
        let net = self
            .netlist
            .add_net_in_domain(format!("gnd_{domain}"), domain);
        self.netlist
            .add_cell_in_domain(
                format!("u_gnd_{domain}"),
                CellKind::Gnd,
                vec![],
                net,
                domain,
            )
            .expect("constant cell construction cannot fail");
        self.gnd.insert(domain, net);
        net
    }

    fn vcc(&mut self, domain: Domain) -> NetId {
        if let Some(&net) = self.vcc.get(&domain) {
            return net;
        }
        let net = self
            .netlist
            .add_net_in_domain(format!("vcc_{domain}"), domain);
        self.netlist
            .add_cell_in_domain(
                format!("u_vcc_{domain}"),
                CellKind::Vcc,
                vec![],
                net,
                domain,
            )
            .expect("constant cell construction cannot fail");
        self.vcc.insert(domain, net);
        net
    }

    /// Sign-extends (replicating the MSB) or truncates a bit vector to `width`.
    fn extend(&self, bits: &[NetId], width: usize) -> Vec<NetId> {
        let mut out = bits.to_vec();
        if out.len() > width {
            out.truncate(width);
        } else {
            let msb = *out.last().expect("buses have at least one bit");
            while out.len() < width {
                out.push(msb);
            }
        }
        out
    }

    /// Adds a cell with a freshly named output net and returns the net.
    fn cell(
        &mut self,
        prefix: &str,
        kind: CellKind,
        inputs: Vec<NetId>,
        domain: Domain,
    ) -> Result<NetId, LowerError> {
        let net_name = self.fresh(prefix);
        let net = self.netlist.add_net_in_domain(net_name, domain);
        let name = self.fresh(&format!("u_{prefix}"));
        self.netlist
            .add_cell_in_domain(name, kind, inputs, net, domain)?;
        Ok(net)
    }

    /// Adds a cell driving an existing (pre-created, undriven) net.
    fn cell_into(
        &mut self,
        prefix: &str,
        kind: CellKind,
        inputs: Vec<NetId>,
        output: NetId,
        domain: Domain,
    ) -> Result<(), LowerError> {
        let name = self.fresh(&format!("u_{prefix}"));
        self.netlist
            .add_cell_in_domain(name, kind, inputs, output, domain)?;
        Ok(())
    }

    /// Builds a ripple-carry adder computing `a + b + carry_in` (or
    /// `a - b - (1 - carry_in)` when `invert_b` — i.e. pass `invert_b = true,
    /// carry_in = true` for subtraction), driving the pre-created `out` bits.
    ///
    /// Inputs are sign-extended to the output width. Each bit costs one
    /// 3-input parity LUT (sum) and one majority gate (carry); the final carry
    /// is not generated.
    #[allow(clippy::too_many_arguments)]
    fn ripple(
        &mut self,
        prefix: &str,
        a: &[NetId],
        b: &[NetId],
        invert_b: bool,
        carry_in_one: bool,
        out: &[NetId],
        domain: Domain,
    ) -> Result<(), LowerError> {
        let width = out.len();
        let a = self.extend(a, width);
        let b = self.extend(b, width);

        let sum_init = if invert_b {
            lut3_init(|x, y, c| x ^ !y ^ c)
        } else {
            lut3_init(|x, y, c| x ^ y ^ c)
        };
        let carry_init = if invert_b {
            lut3_init(|x, y, c| (x & !y) | (x & c) | (!y & c))
        } else {
            lut3_init(|x, y, c| (x & y) | (x & c) | (y & c))
        };

        let mut carry = if carry_in_one {
            self.vcc(domain)
        } else {
            self.gnd(domain)
        };
        for (i, &out_bit) in out.iter().enumerate() {
            let inputs = vec![a[i], b[i], carry];
            self.cell_into(
                &format!("{prefix}_sum{i}"),
                CellKind::Lut {
                    k: 3,
                    init: sum_init,
                },
                inputs.clone(),
                out_bit,
                domain,
            )?;
            if i + 1 < width {
                carry = self.cell(
                    &format!("{prefix}_carry{i}"),
                    CellKind::Lut {
                        k: 3,
                        init: carry_init,
                    },
                    inputs,
                    domain,
                )?;
            }
        }
        Ok(())
    }

    /// Same as [`Lowering::ripple`], but allocating fresh output nets.
    #[allow(clippy::too_many_arguments)]
    fn ripple_fresh(
        &mut self,
        prefix: &str,
        a: &[NetId],
        b: &[NetId],
        invert_b: bool,
        carry_in_one: bool,
        width: usize,
        domain: Domain,
    ) -> Result<Vec<NetId>, LowerError> {
        let out: Vec<NetId> = (0..width)
            .map(|i| {
                let name = self.fresh(&format!("{prefix}_o{i}"));
                self.netlist.add_net_in_domain(name, domain)
            })
            .collect();
        self.ripple(prefix, a, b, invert_b, carry_in_one, &out, domain)?;
        Ok(out)
    }

    /// The bit vector of `a << shift`, zero-filled below and sign-extended to
    /// `width`.
    fn shifted(&mut self, a: &[NetId], shift: usize, width: usize, domain: Domain) -> Vec<NetId> {
        let gnd = self.gnd(domain);
        let mut out = Vec::with_capacity(width);
        for i in 0..width {
            if i < shift {
                out.push(gnd);
            } else {
                let src = i - shift;
                if src < a.len() {
                    out.push(a[src]);
                } else {
                    out.push(*a.last().expect("buses have at least one bit"));
                }
            }
        }
        out
    }

    /// Copies `bits` (sign-extended) onto the pre-created `out` nets using
    /// buffers. Used when an operator degenerates to a wire (e.g. `x * 1`).
    fn buffer_into(
        &mut self,
        prefix: &str,
        bits: &[NetId],
        out: &[NetId],
        domain: Domain,
    ) -> Result<(), LowerError> {
        let bits = self.extend(bits, out.len());
        for (i, (&src, &dst)) in bits.iter().zip(out.iter()).enumerate() {
            self.cell_into(
                &format!("{prefix}_buf{i}"),
                CellKind::Buf,
                vec![src],
                dst,
                domain,
            )?;
        }
        Ok(())
    }

    fn run(mut self) -> Result<Netlist, LowerError> {
        // Pass 1: create the bit nets of every signal. Input signals become
        // top-level ports; constants map to the shared GND/VCC nets.
        for (sig_id, signal) in self.design.signals() {
            let driver = signal.driver.ok_or_else(|| LowerError::UndrivenSignal {
                signal: signal.name.clone(),
            })?;
            let driver_op = &self.design.node(driver).op;
            let nets: Vec<NetId> = match driver_op {
                WordOp::Input => (0..signal.width)
                    .map(|i| {
                        self.netlist
                            .add_input_in_domain(format!("{}_{i}", signal.name), signal.domain)
                    })
                    .collect(),
                WordOp::Const { value } => {
                    let value = truncate(*value, signal.width);
                    (0..signal.width)
                        .map(|i| {
                            if (value >> i) & 1 == 1 {
                                self.vcc(signal.domain)
                            } else {
                                self.gnd(signal.domain)
                            }
                        })
                        .collect()
                }
                _ => (0..signal.width)
                    .map(|i| {
                        self.netlist
                            .add_net_in_domain(format!("{}_{i}", signal.name), signal.domain)
                    })
                    .collect(),
            };
            self.bits[sig_id.index()] = nets;
        }

        // Pass 2: emit logic for every node.
        for (_, node) in self.design.nodes() {
            let domain = node.domain;
            match &node.op {
                WordOp::Input | WordOp::Const { .. } => {} // handled in pass 1
                WordOp::Output { port } => {
                    let sig = node.inputs[0];
                    let bits = self.bits[sig.index()].clone();
                    for (i, &net) in bits.iter().enumerate() {
                        self.netlist
                            .add_output_in_domain(format!("{port}_{i}"), net, domain);
                    }
                }
                WordOp::Add | WordOp::Sub => {
                    let a = self.bits[node.inputs[0].index()].clone();
                    let b = self.bits[node.inputs[1].index()].clone();
                    let out = self.bits[self.output_sig(node)].clone();
                    let subtract = matches!(node.op, WordOp::Sub);
                    self.ripple(&node.name.clone(), &a, &b, subtract, subtract, &out, domain)?;
                }
                WordOp::MulConst { coefficient } => {
                    let a = self.bits[node.inputs[0].index()].clone();
                    let out = self.bits[self.output_sig(node)].clone();
                    self.lower_mul_const(&node.name.clone(), &a, *coefficient, &out, domain)?;
                }
                WordOp::Register { init } => {
                    let d = self.bits[node.inputs[0].index()].clone();
                    let out = self.bits[self.output_sig(node)].clone();
                    let init = truncate(*init, out.len() as u8);
                    for (i, (&d_bit, &q_bit)) in d.iter().zip(out.iter()).enumerate() {
                        let bit_init = (init >> i) & 1 == 1;
                        self.cell_into(
                            &format!("{}_ff{i}", node.name),
                            CellKind::Dff { init: bit_init },
                            vec![d_bit],
                            q_bit,
                            domain,
                        )?;
                    }
                }
                WordOp::Voter => {
                    let a = self.bits[node.inputs[0].index()].clone();
                    let b = self.bits[node.inputs[1].index()].clone();
                    let c = self.bits[node.inputs[2].index()].clone();
                    let out = self.bits[self.output_sig(node)].clone();
                    for i in 0..out.len() {
                        self.cell_into(
                            &format!("{}_v{i}", node.name),
                            CellKind::Maj3,
                            vec![a[i], b[i], c[i]],
                            out[i],
                            domain,
                        )?;
                    }
                }
            }
        }

        Ok(self.netlist)
    }

    fn output_sig(&self, node: &crate::design::WordNode) -> usize {
        node.output.expect("operator produces a signal").index()
    }

    /// Lowers `a * coefficient` as a canonical-signed-digit shift-and-add
    /// network driving the pre-created `out` bits.
    fn lower_mul_const(
        &mut self,
        prefix: &str,
        a: &[NetId],
        coefficient: i64,
        out: &[NetId],
        domain: Domain,
    ) -> Result<(), LowerError> {
        let width = out.len();
        if coefficient == 0 {
            let gnd = self.gnd(domain);
            let zeros = vec![gnd; 1];
            return self.buffer_into(prefix, &zeros, out, domain);
        }

        // CSD terms of the coefficient: (shift, negative?).
        let terms = csd_terms(coefficient);
        debug_assert!(!terms.is_empty());

        // Accumulate term by term. A lone positive first term is a pure shift.
        let mut acc: Option<Vec<NetId>> = None;
        for (index, &(shift, negative)) in terms.iter().enumerate() {
            let term = self.shifted(a, shift as usize, width, domain);
            let last = index + 1 == terms.len();
            acc = Some(match acc {
                None => {
                    if negative {
                        // acc = 0 - term
                        let gnd = self.gnd(domain);
                        let zero = vec![gnd; 1];
                        if last {
                            self.ripple(
                                &format!("{prefix}_neg"),
                                &zero,
                                &term,
                                true,
                                true,
                                out,
                                domain,
                            )?;
                            return Ok(());
                        }
                        self.ripple_fresh(
                            &format!("{prefix}_neg"),
                            &zero,
                            &term,
                            true,
                            true,
                            width,
                            domain,
                        )?
                    } else if last {
                        // Result is a pure shift of the input.
                        self.buffer_into(prefix, &term, out, domain)?;
                        return Ok(());
                    } else {
                        term
                    }
                }
                Some(current) => {
                    let name = format!("{prefix}_t{index}");
                    if last {
                        self.ripple(&name, &current, &term, negative, negative, out, domain)?;
                        return Ok(());
                    }
                    self.ripple_fresh(&name, &current, &term, negative, negative, width, domain)?
                }
            });
        }
        unreachable!("the final CSD term always drives the output nets");
    }
}

/// Canonical-signed-digit decomposition: returns `(shift, negative)` terms such
/// that `value = Σ ±2^shift`, with no two adjacent non-zero digits.
fn csd_terms(value: i64) -> Vec<(u32, bool)> {
    let mut terms = Vec::new();
    let mut v = value as i128;
    let mut shift = 0u32;
    while v != 0 {
        if v & 1 != 0 {
            // Choose the digit (+1 or -1) that makes the remaining value even
            // with the smaller magnitude (standard CSD recoding).
            let digit: i128 = if (v & 3) == 3 { -1 } else { 1 };
            terms.push((shift, digit < 0));
            v -= digit;
        }
        v >>= 1;
        shift += 1;
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    #[test]
    fn csd_decomposition_reconstructs_value() {
        for value in [
            -120i64, -73, -9, -6, -1, 0, 1, 3, 6, 9, 73, 120, 255, -255, 1023,
        ] {
            let terms = csd_terms(value);
            let sum: i64 = terms
                .iter()
                .map(|&(s, neg)| {
                    let term = 1i64 << s;
                    if neg {
                        -term
                    } else {
                        term
                    }
                })
                .sum();
            assert_eq!(sum, value, "CSD of {value}");
            // CSD property: no two adjacent non-zero digits.
            let mut shifts: Vec<u32> = terms.iter().map(|&(s, _)| s).collect();
            shifts.sort_unstable();
            for pair in shifts.windows(2) {
                assert!(pair[1] > pair[0] + 1, "adjacent digits in CSD of {value}");
            }
        }
    }

    #[test]
    fn lut3_init_matches_function() {
        let parity = lut3_init(|a, b, c| a ^ b ^ c);
        assert_eq!(parity, 0x96);
        let maj = lut3_init(|a, b, c| (a & b) | (a & c) | (b & c));
        assert_eq!(maj, 0xE8);
    }

    fn eval_design_and_netlist(design: &Design, stimuli: &[Map<String, i64>]) {
        let expected = design.evaluate(stimuli);
        let netlist = lower(design).expect("lowering succeeds");
        netlist
            .validate()
            .expect("lowered netlist is structurally valid");
        let actual = crate::test_util::simulate_netlist(&netlist, design, stimuli);
        assert_eq!(
            expected,
            actual,
            "gate-level mismatch for `{}`",
            design.name()
        );
    }

    #[test]
    fn adder_matches_reference() {
        let mut d = Design::new("add");
        let a = d.add_input("a", 6);
        let b = d.add_input("b", 6);
        let s = d.add_add("s", a, b, 7);
        d.add_output("y", s);
        let stim: Vec<Map<String, i64>> = [(0, 0), (1, 1), (31, 31), (-32, 1), (-1, -1), (17, -9)]
            .iter()
            .map(|&(a, b)| {
                let mut m = Map::new();
                m.insert("a".into(), a);
                m.insert("b".into(), b);
                m
            })
            .collect();
        eval_design_and_netlist(&d, &stim);
    }

    #[test]
    fn subtractor_matches_reference() {
        let mut d = Design::new("sub");
        let a = d.add_input("a", 6);
        let b = d.add_input("b", 6);
        let s = d.add_sub("s", a, b, 7);
        d.add_output("y", s);
        let stim: Vec<Map<String, i64>> = [(0, 0), (5, 9), (31, -32), (-32, 31), (-7, -7)]
            .iter()
            .map(|&(a, b)| {
                let mut m = Map::new();
                m.insert("a".into(), a);
                m.insert("b".into(), b);
                m
            })
            .collect();
        eval_design_and_netlist(&d, &stim);
    }

    #[test]
    fn constant_multipliers_match_reference() {
        for coeff in [-120i64, -9, -1, 0, 1, 6, 73, 120] {
            let mut d = Design::new(format!("mul_{coeff}"));
            let a = d.add_input("a", 9);
            let m = d.add_mul_const("m", a, coeff, 18);
            d.add_output("y", m);
            let stim: Vec<Map<String, i64>> = [-256i64, -100, -1, 0, 1, 100, 255]
                .iter()
                .map(|&a| {
                    let mut map = Map::new();
                    map.insert("a".into(), a);
                    map
                })
                .collect();
            eval_design_and_netlist(&d, &stim);
        }
    }

    #[test]
    fn register_pipeline_matches_reference() {
        let mut d = Design::new("pipe");
        let a = d.add_input("a", 5);
        let q1 = d.add_register("q1", a);
        let q2 = d.add_register("q2", q1);
        d.add_output("y", q2);
        let stim: Vec<Map<String, i64>> = [3i64, -4, 7, 0, 15, -16]
            .iter()
            .map(|&a| {
                let mut map = Map::new();
                map.insert("a".into(), a);
                map
            })
            .collect();
        eval_design_and_netlist(&d, &stim);
    }

    #[test]
    fn voter_matches_reference() {
        let mut d = Design::new("vote");
        let a = d.add_input("a", 4);
        let b = d.add_input("b", 4);
        let c = d.add_input("c", 4);
        let v = d.add_voter("v", a, b, c);
        d.add_output("y", v);
        let stim: Vec<Map<String, i64>> = [(1i64, 1i64, 7i64), (3, 3, 3), (-8, -8, 0), (5, 2, 2)]
            .iter()
            .map(|&(a, b, c)| {
                let mut m = Map::new();
                m.insert("a".into(), a);
                m.insert("b".into(), b);
                m.insert("c".into(), c);
                m
            })
            .collect();
        eval_design_and_netlist(&d, &stim);
    }

    #[test]
    fn undriven_signal_is_reported() {
        // Build a design with a dangling signal by hand.
        let mut d = Design::new("bad");
        let a = d.add_input("a", 4);
        d.add_output("y", a);
        // Manually corrupting a design is not possible through the public API,
        // so lowering a valid design must succeed.
        assert!(lower(&d).is_ok());
    }

    #[test]
    fn domains_propagate_to_cells() {
        let mut d = Design::new("dom");
        let a = d.add_input_in_domain("a", 4, Domain::Tr1);
        let (_, sum) = d
            .add_node_in_domain("s", WordOp::Add, vec![a, a], Some(5), Domain::Tr1)
            .unwrap();
        d.add_output_in_domain("y", sum.unwrap(), Domain::Tr1);
        let nl = lower(&d).unwrap();
        assert!(nl
            .cells()
            .filter(|(_, c)| !c.kind.is_constant())
            .all(|(_, c)| c.domain == Domain::Tr1));
    }
}
