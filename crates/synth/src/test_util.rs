//! Minimal gate-level simulator used by this crate's tests to check lowering
//! against the behavioural reference model (`Design::evaluate`).
//!
//! The full-featured 3-valued simulator lives in `tmr-sim`; this one is kept
//! deliberately independent so that lowering bugs and simulator bugs cannot
//! mask each other.

use crate::Design;
use std::collections::HashMap;
use tmr_netlist::{CellId, NetId, Netlist};

/// Simulates `netlist` with the named word-level stimuli and returns the
/// word-level outputs, using the port naming convention of the lowering pass
/// (`{signal}_{bit}`).
pub fn simulate_netlist(
    netlist: &Netlist,
    design: &Design,
    stimuli: &[HashMap<String, i64>],
) -> Vec<HashMap<String, i64>> {
    let levelization = netlist.levelize().expect("lowered netlists are acyclic");
    let mut net_values = vec![false; netlist.net_count()];
    let mut ff_state: HashMap<CellId, bool> = netlist
        .sequential_cells()
        .into_iter()
        .map(|id| {
            let init = match netlist.cell(id).kind {
                tmr_netlist::CellKind::Dff { init } => init,
                _ => unreachable!(),
            };
            (id, init)
        })
        .collect();

    // Port bit lookup tables.
    let input_bits: Vec<(String, u8, NetId)> = netlist
        .input_ports()
        .map(|(_, p)| {
            let (name, bit) = split_bit_name(&p.name);
            (name, bit, p.net)
        })
        .collect();
    let output_bits: Vec<(String, u8, NetId)> = netlist
        .output_ports()
        .map(|(_, p)| {
            let (name, bit) = split_bit_name(&p.name);
            (name, bit, p.net)
        })
        .collect();

    let mut results = Vec::with_capacity(stimuli.len());
    for cycle in stimuli {
        // Drive inputs.
        for (name, bit, net) in &input_bits {
            let value = cycle.get(name).copied().unwrap_or(0);
            net_values[net.index()] = (value >> bit) & 1 == 1;
        }
        // Drive flip-flop outputs from state.
        for (&cell, &state) in &ff_state {
            net_values[netlist.cell(cell).output.index()] = state;
        }
        // Combinational settle.
        for &cell_id in &levelization.order {
            let cell = netlist.cell(cell_id);
            let inputs: Vec<bool> = cell.inputs.iter().map(|&n| net_values[n.index()]).collect();
            net_values[cell.output.index()] = cell.kind.eval(&inputs);
        }
        // Sample outputs.
        let mut out: HashMap<String, (i64, u8)> = HashMap::new();
        for (name, bit, net) in &output_bits {
            let entry = out.entry(name.clone()).or_insert((0, 0));
            if net_values[net.index()] {
                entry.0 |= 1 << bit;
            }
            entry.1 = entry.1.max(bit + 1);
        }
        let signed: HashMap<String, i64> = out
            .into_iter()
            .map(|(name, (raw, width))| (name, sign_extend(raw, width)))
            .collect();
        // Sanity: output ports must match the design's declared outputs.
        debug_assert_eq!(signed.len(), design.outputs().len());
        results.push(signed);

        // Clock edge.
        let next: Vec<(CellId, bool)> = ff_state
            .keys()
            .map(|&cell| {
                let d = netlist.cell(cell).inputs[0];
                (cell, net_values[d.index()])
            })
            .collect();
        for (cell, value) in next {
            ff_state.insert(cell, value);
        }
    }
    results
}

fn split_bit_name(port: &str) -> (String, u8) {
    let (name, bit) = port
        .rsplit_once('_')
        .expect("lowered port names end in _<bit>");
    (name.to_string(), bit.parse().expect("bit index"))
}

fn sign_extend(raw: i64, width: u8) -> i64 {
    let shift = 64 - u32::from(width);
    (raw << shift) >> shift
}
