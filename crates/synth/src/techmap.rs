//! Technology mapping: generic gates → 4-input LUTs, plus I/O buffer insertion.
//!
//! The output of [`techmap`] is a netlist whose cells correspond one-to-one to
//! the site kinds of a `tmr-arch` device: `Lut` cells (and constant drivers,
//! which are configured as constant LUTs) map to LUT sites, `Dff` cells to FF
//! sites, and `Ibuf`/`Obuf` cells to IOB sites.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tmr_netlist::{CellKind, NetId, Netlist, NetlistError};

/// Errors produced during technology mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TechmapError {
    /// A combinational cell had more inputs than a device LUT provides.
    TooManyInputs {
        /// Offending cell name.
        cell: String,
        /// Its input count.
        inputs: usize,
    },
    /// The input netlist already contained I/O buffers.
    AlreadyMapped {
        /// Offending cell name.
        cell: String,
    },
    /// Internal netlist construction error.
    Netlist(NetlistError),
}

impl fmt::Display for TechmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechmapError::TooManyInputs { cell, inputs } => {
                write!(
                    f,
                    "cell `{cell}` has {inputs} inputs, more than a LUT4 provides"
                )
            }
            TechmapError::AlreadyMapped { cell } => {
                write!(
                    f,
                    "cell `{cell}` is an I/O buffer; the netlist is already mapped"
                )
            }
            TechmapError::Netlist(err) => write!(f, "netlist construction failed: {err}"),
        }
    }
}

impl Error for TechmapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TechmapError::Netlist(err) => Some(err),
            _ => None,
        }
    }
}

impl From<NetlistError> for TechmapError {
    fn from(err: NetlistError) -> Self {
        TechmapError::Netlist(err)
    }
}

/// Maximum LUT input count supported by the target architecture.
const LUT_K: usize = 4;

/// Maps a gate-level netlist onto LUT4 + DFF + IOB primitives.
///
/// Every combinational gate is converted into a `Lut` cell with the gate's
/// truth table; flip-flops and constants are kept; an `Ibuf` is inserted
/// behind every top-level input port and an `Obuf` in front of every output
/// port, so that each port maps to an IOB site of the device.
///
/// # Errors
///
/// Returns [`TechmapError::TooManyInputs`] if a gate needs more than 4 inputs
/// and [`TechmapError::AlreadyMapped`] if the netlist already contains I/O
/// buffers.
pub fn techmap(netlist: &Netlist) -> Result<Netlist, TechmapError> {
    let mut trace_span = tmr_trace::span("synth.techmap");
    let mut out = Netlist::new(netlist.name());
    let mut net_map: HashMap<NetId, NetId> = HashMap::new();

    // Ports: each input port gets a pad net (the port) plus a fabric net
    // (driven by an IBUF); consumers are rewired to the fabric net. Output
    // ports get a fabric net (what the logic drives) plus a pad net driven by
    // an OBUF.
    for (_, port) in netlist.input_ports() {
        let pad = out.add_input_in_domain(port.name.clone(), port.domain);
        let fabric = out.add_net_in_domain(format!("{}_ibuf", port.name), port.domain);
        out.add_cell_in_domain(
            format!("u_ibuf_{}", port.name),
            CellKind::Ibuf,
            vec![pad],
            fabric,
            port.domain,
        )?;
        net_map.insert(port.net, fabric);
    }

    let mut map_net = |old: NetId, out: &mut Netlist| -> NetId {
        if let Some(&mapped) = net_map.get(&old) {
            return mapped;
        }
        let net = netlist.net(old);
        let mapped = out.add_net_in_domain(net.name.clone(), net.domain);
        net_map.insert(old, mapped);
        mapped
    };

    // Cells.
    for (_, cell) in netlist.cells() {
        let inputs: Vec<NetId> = cell.inputs.iter().map(|&n| map_net(n, &mut out)).collect();
        let output = map_net(cell.output, &mut out);
        let kind = match cell.kind {
            CellKind::Lut { k, init } => {
                if usize::from(k) > LUT_K {
                    return Err(TechmapError::TooManyInputs {
                        cell: cell.name.clone(),
                        inputs: k as usize,
                    });
                }
                CellKind::Lut { k, init }
            }
            CellKind::Dff { init } => CellKind::Dff { init },
            CellKind::Gnd => CellKind::Gnd,
            CellKind::Vcc => CellKind::Vcc,
            CellKind::Ibuf | CellKind::Obuf => {
                return Err(TechmapError::AlreadyMapped {
                    cell: cell.name.clone(),
                })
            }
            gate => {
                let k = gate.input_count();
                if k > LUT_K {
                    return Err(TechmapError::TooManyInputs {
                        cell: cell.name.clone(),
                        inputs: k,
                    });
                }
                let init = gate
                    .truth_table()
                    .expect("generic gates are combinational and small");
                CellKind::Lut { k: k as u8, init }
            }
        };
        out.add_cell_in_domain(cell.name.clone(), kind, inputs, output, cell.domain)?;
    }

    // Output ports through OBUFs.
    for (_, port) in netlist.output_ports() {
        let fabric = map_net(port.net, &mut out);
        let pad = out.add_net_in_domain(format!("{}_obuf", port.name), port.domain);
        out.add_cell_in_domain(
            format!("u_obuf_{}", port.name),
            CellKind::Obuf,
            vec![fabric],
            pad,
            port.domain,
        )?;
        out.add_output_in_domain(port.name.clone(), pad, port.domain);
    }

    trace_span.attr("cells", out.cell_count());
    trace_span.attr("nets", out.net_count());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_netlist::{Domain, PortDir};

    fn gate_netlist() -> Netlist {
        let mut nl = Netlist::new("g");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_net("x");
        let v = nl.add_net_in_domain("v", Domain::Voter);
        let q = nl.add_net("q");
        nl.add_cell("u_and", CellKind::And2, vec![a, b], x).unwrap();
        nl.add_cell_in_domain("u_maj", CellKind::Maj3, vec![x, b, c], v, Domain::Voter)
            .unwrap();
        nl.add_cell("u_ff", CellKind::Dff { init: true }, vec![v], q)
            .unwrap();
        nl.add_output("y", q);
        nl
    }

    #[test]
    fn gates_become_luts_and_ios_are_inserted() {
        let mapped = techmap(&gate_netlist()).unwrap();
        mapped.validate().unwrap();
        let stats = mapped.stats();
        assert_eq!(stats.luts, 2, "AND2 and MAJ3 each map to one LUT");
        assert_eq!(stats.flip_flops, 1);
        assert_eq!(stats.io_buffers, 3 + 1);
        assert_eq!(stats.generic_gates, 0);
        // Domains survive mapping.
        let (_, maj) = mapped.find_cell("u_maj").unwrap();
        assert_eq!(maj.domain, Domain::Voter);
        assert!(matches!(maj.kind, CellKind::Lut { k: 3, .. }));
    }

    #[test]
    fn mapped_luts_preserve_function() {
        let mapped = techmap(&gate_netlist()).unwrap();
        let (_, and) = mapped.find_cell("u_and").unwrap();
        match and.kind {
            CellKind::Lut { k: 2, init } => assert_eq!(init, CellKind::And2.truth_table().unwrap()),
            other => panic!("expected LUT2, got {other}"),
        }
    }

    #[test]
    fn port_counts_are_preserved() {
        let original = gate_netlist();
        let mapped = techmap(&original).unwrap();
        assert_eq!(
            mapped.port_count(PortDir::Input),
            original.port_count(PortDir::Input)
        );
        assert_eq!(
            mapped.port_count(PortDir::Output),
            original.port_count(PortDir::Output)
        );
    }

    #[test]
    fn double_mapping_is_rejected() {
        let mapped = techmap(&gate_netlist()).unwrap();
        let err = techmap(&mapped).unwrap_err();
        assert!(matches!(err, TechmapError::AlreadyMapped { .. }));
    }
}
