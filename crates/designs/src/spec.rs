//! A self-contained, order-preserving textual representation of word-level
//! designs — the exchange format of the fuzzing corpus — plus the
//! delta-debugging shrinker that minimizes failing designs against an
//! arbitrary reproduction predicate.
//!
//! [`DesignSpec`] captures a [`Design`] as a list of node rows in insertion
//! order, wiring expressed by signal *names*. The round trip
//! `DesignSpec::from_design → to_design` rebuilds a structurally identical
//! design — same node order, operators, widths and wiring, including
//! registered feedback loops (rows whose inputs are defined later are
//! created against a placeholder and patched, exactly how such designs are
//! built through the [`Design`] API in the first place). Because the text
//! form is line-based and human-readable, a shrunken fuzzing failure checked
//! into the regression corpus documents itself.
//!
//! [`shrink`] is deliberately generic over the failure predicate: the fuzz
//! harness passes "the oracle mismatch still reproduces through the full
//! flow", while tests can pass cheap structural predicates. Reductions only
//! ever remove or simplify rows, so a shrunken spec is a (renamed) sub-graph
//! of the original.

use std::collections::{HashMap, HashSet};
use std::fmt;
use tmr_netlist::Domain;
use tmr_synth::{Design, DesignError, SignalId, WordOp};

/// Errors produced while converting, parsing or rebuilding a [`DesignSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line of the textual form could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Two rows produce a signal of the same name, so wiring by name would
    /// be ambiguous.
    DuplicateName(String),
    /// A row references a signal name no row produces.
    UnknownSignal {
        /// The referencing row's name.
        row: String,
        /// The unresolved signal name.
        signal: String,
    },
    /// A row's input is defined later (a feedback edge), but no
    /// already-created signal can serve as a width-compatible placeholder.
    NoPlaceholder {
        /// The row that needs the placeholder.
        row: String,
    },
    /// The design contains an operator the spec format does not model
    /// (voters only appear in TMR-transformed designs, which the corpus
    /// never stores — regression cases hold base designs).
    Unsupported(String),
    /// Rebuilding the design failed a [`Design`] API check.
    Design(DesignError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SpecError::DuplicateName(name) => write!(f, "duplicate signal name `{name}`"),
            SpecError::UnknownSignal { row, signal } => {
                write!(f, "row `{row}` references unknown signal `{signal}`")
            }
            SpecError::NoPlaceholder { row } => {
                write!(
                    f,
                    "row `{row}` has a feedback input but no placeholder candidate"
                )
            }
            SpecError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            SpecError::Design(err) => write!(f, "design rebuild failed: {err}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<DesignError> for SpecError {
    fn from(err: DesignError) -> Self {
        SpecError::Design(err)
    }
}

/// One node row of a [`DesignSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Row {
    /// A top-level input bus.
    Input {
        /// Signal name.
        name: String,
        /// Bus width.
        width: u8,
    },
    /// A constant bus.
    Const {
        /// Signal name.
        name: String,
        /// Constant value (two's complement of `width`).
        value: i64,
        /// Bus width.
        width: u8,
    },
    /// Signed addition.
    Add {
        /// Signal name.
        name: String,
        /// Left operand signal.
        a: String,
        /// Right operand signal.
        b: String,
        /// Output width.
        width: u8,
    },
    /// Signed subtraction `a - b`.
    Sub {
        /// Signal name.
        name: String,
        /// Left operand signal.
        a: String,
        /// Right operand signal.
        b: String,
        /// Output width.
        width: u8,
    },
    /// Multiplication by a compile-time constant.
    Mul {
        /// Signal name.
        name: String,
        /// Operand signal.
        a: String,
        /// The coefficient.
        coefficient: i64,
        /// Output width.
        width: u8,
    },
    /// A register; `input` may name a row defined later (feedback).
    Reg {
        /// Signal name.
        name: String,
        /// D-input signal.
        input: String,
        /// Power-up value.
        init: i64,
        /// Bus width (equal to the input's width).
        width: u8,
    },
    /// A top-level output port.
    Output {
        /// External port name.
        port: String,
        /// The exported signal.
        signal: String,
    },
}

impl Row {
    /// The name of the signal this row produces (`None` for outputs).
    pub fn signal_name(&self) -> Option<&str> {
        match self {
            Row::Input { name, .. }
            | Row::Const { name, .. }
            | Row::Add { name, .. }
            | Row::Sub { name, .. }
            | Row::Mul { name, .. }
            | Row::Reg { name, .. } => Some(name),
            Row::Output { .. } => None,
        }
    }

    /// The signal names this row reads.
    pub fn reads(&self) -> Vec<&str> {
        match self {
            Row::Input { .. } | Row::Const { .. } => Vec::new(),
            Row::Add { a, b, .. } | Row::Sub { a, b, .. } => vec![a, b],
            Row::Mul { a, .. } => vec![a],
            Row::Reg { input, .. } => vec![input],
            Row::Output { signal, .. } => vec![signal],
        }
    }

    /// Rewires every read of `from` to `to`.
    fn rename_reads(&mut self, from: &str, to: &str) {
        let rename = |s: &mut String| {
            if s == from {
                *s = to.to_string();
            }
        };
        match self {
            Row::Input { .. } | Row::Const { .. } => {}
            Row::Add { a, b, .. } | Row::Sub { a, b, .. } => {
                rename(a);
                rename(b);
            }
            Row::Mul { a, .. } => rename(a),
            Row::Reg { input, .. } => rename(input),
            Row::Output { signal, .. } => rename(signal),
        }
    }
}

/// An order-preserving, text-serializable description of a word-level
/// design. See the module documentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpec {
    /// Design name.
    pub name: String,
    /// Node rows in design insertion order.
    pub rows: Vec<Row>,
}

impl DesignSpec {
    /// Captures `design` as a spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::DuplicateName`] if two signals share a name and
    /// [`SpecError::Unsupported`] for operators outside the corpus format
    /// (voters).
    pub fn from_design(design: &Design) -> Result<Self, SpecError> {
        let mut seen: HashSet<&str> = HashSet::new();
        for (_, signal) in design.signals() {
            if !seen.insert(signal.name.as_str()) {
                return Err(SpecError::DuplicateName(signal.name.clone()));
            }
        }
        let signal_name = |id: SignalId| design.signal(id).name.clone();
        let mut rows = Vec::with_capacity(design.node_count());
        for (_, node) in design.nodes() {
            let width = node.output.map(|s| design.signal(s).width);
            let row = match &node.op {
                WordOp::Input => Row::Input {
                    name: node.name.clone(),
                    width: width.expect("inputs produce a signal"),
                },
                WordOp::Const { value } => Row::Const {
                    name: node.name.clone(),
                    value: *value,
                    width: width.expect("constants produce a signal"),
                },
                WordOp::Add => Row::Add {
                    name: node.name.clone(),
                    a: signal_name(node.inputs[0]),
                    b: signal_name(node.inputs[1]),
                    width: width.expect("adders produce a signal"),
                },
                WordOp::Sub => Row::Sub {
                    name: node.name.clone(),
                    a: signal_name(node.inputs[0]),
                    b: signal_name(node.inputs[1]),
                    width: width.expect("subtractors produce a signal"),
                },
                WordOp::MulConst { coefficient } => Row::Mul {
                    name: node.name.clone(),
                    a: signal_name(node.inputs[0]),
                    coefficient: *coefficient,
                    width: width.expect("multipliers produce a signal"),
                },
                WordOp::Register { init } => Row::Reg {
                    name: node.name.clone(),
                    input: signal_name(node.inputs[0]),
                    init: *init,
                    width: width.expect("registers produce a signal"),
                },
                WordOp::Output { port } => Row::Output {
                    port: port.clone(),
                    signal: signal_name(node.inputs[0]),
                },
                WordOp::Voter => {
                    return Err(SpecError::Unsupported(format!(
                        "voter node `{}` (specs store base designs)",
                        node.name
                    )))
                }
            };
            rows.push(row);
        }
        Ok(Self {
            name: design.name().to_string(),
            rows,
        })
    }

    /// Rebuilds the design: nodes are created in row order; a row input
    /// defined by a *later* row (feedback) is created against a
    /// width-compatible placeholder and patched afterwards — the same
    /// construction order the [`Design`] API mandates.
    ///
    /// # Errors
    ///
    /// Returns wiring errors ([`SpecError::UnknownSignal`],
    /// [`SpecError::NoPlaceholder`]) and propagated [`Design`] API errors.
    pub fn to_design(&self) -> Result<Design, SpecError> {
        let produced: HashSet<&str> = self.rows.iter().filter_map(|r| r.signal_name()).collect();
        let mut design = Design::new(self.name.clone());
        let mut defined: HashMap<String, SignalId> = HashMap::new();
        // (node, pin, name) inputs to patch once every row exists.
        let mut patches: Vec<(tmr_synth::WordNodeId, usize, String)> = Vec::new();

        // Resolves an operand: the defined signal, or a placeholder of the
        // given width (any width if `None`) recorded for patching.
        let resolve = |design: &Design,
                       defined: &HashMap<String, SignalId>,
                       patches_for_row: &mut Vec<(usize, String)>,
                       row_name: &str,
                       pin: usize,
                       operand: &str,
                       width: Option<u8>|
         -> Result<SignalId, SpecError> {
            if let Some(&id) = defined.get(operand) {
                return Ok(id);
            }
            if !produced.contains(operand) {
                return Err(SpecError::UnknownSignal {
                    row: row_name.to_string(),
                    signal: operand.to_string(),
                });
            }
            // Forward reference: use any already-created signal of a
            // compatible width as the placeholder.
            let placeholder = defined
                .values()
                .find(|&&id| width.is_none_or(|w| design.signal(id).width == w));
            match placeholder {
                Some(&id) => {
                    patches_for_row.push((pin, operand.to_string()));
                    Ok(id)
                }
                None => Err(SpecError::NoPlaceholder {
                    row: row_name.to_string(),
                }),
            }
        };

        for row in &self.rows {
            let mut row_patches: Vec<(usize, String)> = Vec::new();
            let (node, output) = match row {
                Row::Input { name, width } => {
                    let id = design.add_input(name.clone(), *width);
                    defined.insert(name.clone(), id);
                    continue;
                }
                Row::Const { name, value, width } => {
                    let id = design.add_const(name.clone(), *value, *width);
                    defined.insert(name.clone(), id);
                    continue;
                }
                Row::Add { name, a, b, width } => {
                    let a = resolve(&design, &defined, &mut row_patches, name, 0, a, None)?;
                    let b = resolve(&design, &defined, &mut row_patches, name, 1, b, None)?;
                    design.add_node_in_domain(
                        name.clone(),
                        WordOp::Add,
                        vec![a, b],
                        Some(*width),
                        Domain::None,
                    )?
                }
                Row::Sub { name, a, b, width } => {
                    let a = resolve(&design, &defined, &mut row_patches, name, 0, a, None)?;
                    let b = resolve(&design, &defined, &mut row_patches, name, 1, b, None)?;
                    design.add_node_in_domain(
                        name.clone(),
                        WordOp::Sub,
                        vec![a, b],
                        Some(*width),
                        Domain::None,
                    )?
                }
                Row::Mul {
                    name,
                    a,
                    coefficient,
                    width,
                } => {
                    let a = resolve(&design, &defined, &mut row_patches, name, 0, a, None)?;
                    design.add_node_in_domain(
                        name.clone(),
                        WordOp::MulConst {
                            coefficient: *coefficient,
                        },
                        vec![a],
                        Some(*width),
                        Domain::None,
                    )?
                }
                Row::Reg {
                    name,
                    input,
                    init,
                    width,
                } => {
                    let d = resolve(
                        &design,
                        &defined,
                        &mut row_patches,
                        name,
                        0,
                        input,
                        Some(*width),
                    )?;
                    design.add_node_in_domain(
                        name.clone(),
                        WordOp::Register { init: *init },
                        vec![d],
                        Some(*width),
                        Domain::None,
                    )?
                }
                Row::Output { port, signal } => {
                    let s = resolve(&design, &defined, &mut row_patches, port, 0, signal, None)?;
                    let node = design.add_output(port.clone(), s);
                    for (pin, operand) in row_patches {
                        patches.push((node, pin, operand));
                    }
                    continue;
                }
            };
            if let Some(output) = output {
                let name = row.signal_name().expect("producing rows have a name");
                defined.insert(name.to_string(), output);
            }
            for (pin, operand) in row_patches {
                patches.push((node, pin, operand));
            }
        }

        for (node, pin, operand) in patches {
            let signal = *defined.get(&operand).expect("patched names were produced");
            design.replace_input(node, pin, signal)?;
        }
        Ok(design)
    }

    /// Parses the textual form (the format [`fmt::Display`] emits).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] with the offending 1-based line number.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut name = String::from("design");
        let mut rows = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let error = |message: &str| SpecError::Parse {
                line,
                message: message.to_string(),
            };
            let tokens: Vec<&str> = trimmed.split_whitespace().collect();
            match tokens.as_slice() {
                ["design", n] => name = (*n).to_string(),
                ["input", n, w] => rows.push(Row::Input {
                    name: (*n).to_string(),
                    width: w.parse().map_err(|_| error("bad input width"))?,
                }),
                ["const", n, "=", v, ":", w] => rows.push(Row::Const {
                    name: (*n).to_string(),
                    value: v.parse().map_err(|_| error("bad constant value"))?,
                    width: w.parse().map_err(|_| error("bad constant width"))?,
                }),
                ["add", n, "=", a, "+", b, ":", w] => rows.push(Row::Add {
                    name: (*n).to_string(),
                    a: (*a).to_string(),
                    b: (*b).to_string(),
                    width: w.parse().map_err(|_| error("bad add width"))?,
                }),
                ["sub", n, "=", a, "-", b, ":", w] => rows.push(Row::Sub {
                    name: (*n).to_string(),
                    a: (*a).to_string(),
                    b: (*b).to_string(),
                    width: w.parse().map_err(|_| error("bad sub width"))?,
                }),
                ["mul", n, "=", a, "*", c, ":", w] => rows.push(Row::Mul {
                    name: (*n).to_string(),
                    a: (*a).to_string(),
                    coefficient: c.parse().map_err(|_| error("bad coefficient"))?,
                    width: w.parse().map_err(|_| error("bad mul width"))?,
                }),
                ["reg", n, "=", d, "init", i, ":", w] => rows.push(Row::Reg {
                    name: (*n).to_string(),
                    input: (*d).to_string(),
                    init: i.parse().map_err(|_| error("bad register init"))?,
                    width: w.parse().map_err(|_| error("bad register width"))?,
                }),
                ["output", p, "=", s] => rows.push(Row::Output {
                    port: (*p).to_string(),
                    signal: (*s).to_string(),
                }),
                _ => return Err(error("unrecognized row")),
            }
        }
        Ok(Self { name, rows })
    }
}

impl fmt::Display for DesignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design {}", self.name)?;
        for row in &self.rows {
            match row {
                Row::Input { name, width } => writeln!(f, "input {name} {width}")?,
                Row::Const { name, value, width } => {
                    writeln!(f, "const {name} = {value} : {width}")?
                }
                Row::Add { name, a, b, width } => writeln!(f, "add {name} = {a} + {b} : {width}")?,
                Row::Sub { name, a, b, width } => writeln!(f, "sub {name} = {a} - {b} : {width}")?,
                Row::Mul {
                    name,
                    a,
                    coefficient,
                    width,
                } => writeln!(f, "mul {name} = {a} * {coefficient} : {width}")?,
                Row::Reg {
                    name,
                    input,
                    init,
                    width,
                } => writeln!(f, "reg {name} = {input} init {init} : {width}")?,
                Row::Output { port, signal } => writeln!(f, "output {port} = {signal}")?,
            }
        }
        Ok(())
    }
}

/// Removes rows no output (transitively) reads. Register feedback edges
/// count as reads, so live state cones survive intact.
fn dead_row_elimination(spec: &DesignSpec) -> DesignSpec {
    let mut live: HashSet<String> = HashSet::new();
    let mut work: Vec<String> = spec
        .rows
        .iter()
        .filter(|r| matches!(r, Row::Output { .. }))
        .flat_map(|r| r.reads().into_iter().map(str::to_string))
        .collect();
    while let Some(name) = work.pop() {
        if !live.insert(name.clone()) {
            continue;
        }
        if let Some(row) = spec
            .rows
            .iter()
            .find(|r| r.signal_name() == Some(name.as_str()))
        {
            work.extend(row.reads().into_iter().map(str::to_string));
        }
    }
    DesignSpec {
        name: spec.name.clone(),
        rows: spec
            .rows
            .iter()
            .filter(|r| match r.signal_name() {
                Some(name) => live.contains(name),
                None => true,
            })
            .cloned()
            .collect(),
    }
}

/// Delta-debugs `spec` down to a (locally) minimal design that still
/// satisfies `reproduces`. The predicate receives candidate specs that are
/// guaranteed to rebuild (`to_design` succeeded); it should return `true`
/// iff the failure of interest still reproduces.
///
/// Reductions tried to fixpoint, cheapest-shrinkage first:
///
/// 1. dropping an output port (while more than one remains),
/// 2. *bypassing* a row — rewiring its readers to one of its operands and
///    deleting it (this is how register stages and adders disappear),
/// 3. replacing a row by `const 0` (cutting its whole fan-in cone),
///
/// each followed by dead-row elimination. The input spec must itself
/// satisfy the predicate; the result always does.
pub fn shrink<F>(spec: &DesignSpec, mut reproduces: F) -> DesignSpec
where
    F: FnMut(&DesignSpec) -> bool,
{
    let mut current = dead_row_elimination(spec);
    if current.rows.len() != spec.rows.len() && !accepts(&current, &mut reproduces) {
        current = spec.clone();
    }
    loop {
        let mut progressed = false;

        // 1. Drop outputs.
        loop {
            let outputs: Vec<usize> = current
                .rows
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, Row::Output { .. }))
                .map(|(i, _)| i)
                .collect();
            if outputs.len() <= 1 {
                break;
            }
            let mut dropped = false;
            for &index in &outputs {
                let mut candidate = current.clone();
                candidate.rows.remove(index);
                let candidate = dead_row_elimination(&candidate);
                if accepts(&candidate, &mut reproduces) {
                    current = candidate;
                    progressed = true;
                    dropped = true;
                    break;
                }
            }
            if !dropped {
                break;
            }
        }

        // 2. Bypass rows: readers of the row's signal read an operand
        //    instead.
        let mut index = 0;
        while index < current.rows.len() {
            let row = current.rows[index].clone();
            let (Some(name), reads) = (row.signal_name(), row.reads()) else {
                index += 1;
                continue;
            };
            let mut bypassed = false;
            for operand in reads {
                if operand == name {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.rows.remove(index);
                let operand = operand.to_string();
                for other in &mut candidate.rows {
                    other.rename_reads(name, &operand);
                }
                let candidate = dead_row_elimination(&candidate);
                if accepts(&candidate, &mut reproduces) {
                    current = candidate;
                    progressed = true;
                    bypassed = true;
                    break;
                }
            }
            if !bypassed {
                index += 1;
            }
        }

        // 3. Constify rows: cut the fan-in cone behind a row.
        let mut index = 0;
        while index < current.rows.len() {
            let row = current.rows[index].clone();
            let constified = match &row {
                Row::Add { name, width, .. }
                | Row::Sub { name, width, .. }
                | Row::Mul { name, width, .. }
                | Row::Reg { name, width, .. } => Some(Row::Const {
                    name: name.clone(),
                    value: 0,
                    width: *width,
                }),
                _ => None,
            };
            if let Some(constified) = constified {
                let mut candidate = current.clone();
                candidate.rows[index] = constified;
                let candidate = dead_row_elimination(&candidate);
                if accepts(&candidate, &mut reproduces) {
                    current = candidate;
                    progressed = true;
                    continue;
                }
            }
            index += 1;
        }

        if !progressed {
            return current;
        }
    }
}

/// A candidate is accepted when it still rebuilds into a design and the
/// failure predicate holds on it.
fn accepts<F>(candidate: &DesignSpec, reproduces: &mut F) -> bool
where
    F: FnMut(&DesignSpec) -> bool,
{
    candidate.to_design().is_ok() && reproduces(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};

    fn nodes_of(design: &Design) -> Vec<tmr_synth::WordNode> {
        design.nodes().map(|(_, n)| n.clone()).collect()
    }

    #[test]
    fn round_trips_generated_designs_exactly() {
        let config = GeneratorConfig {
            feedback: 0.8,
            ff_density: 0.5,
            ..GeneratorConfig::default()
        };
        for seed in 0..24 {
            let design = generate(seed, &config);
            let spec = DesignSpec::from_design(&design).expect("generator names are unique");
            let rebuilt = spec.to_design().expect("spec rebuilds");
            assert_eq!(design.name(), rebuilt.name());
            assert_eq!(nodes_of(&design), nodes_of(&rebuilt), "seed {seed}");
            let reparsed = DesignSpec::parse(&spec.to_string()).expect("text parses");
            assert_eq!(spec, reparsed, "seed {seed}");
        }
    }

    #[test]
    fn round_trips_feedback_loops() {
        let design = crate::accumulator(5);
        let spec = DesignSpec::from_design(&design).unwrap();
        let rebuilt = spec.to_design().unwrap();
        assert_eq!(nodes_of(&design), nodes_of(&rebuilt));
        // The feedback edge survives the text form too.
        let reparsed = DesignSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(nodes_of(&reparsed.to_design().unwrap()), nodes_of(&design));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = DesignSpec::parse("design d\nbogus line here\n").unwrap_err();
        match err {
            SpecError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn shrink_reduces_to_the_marked_cone() {
        // Predicate: the design still contains a register named "keep".
        let mut design = Design::new("toshrink");
        let x = design.add_input("x", 4);
        let a = design.add_add("a1", x, x, 5);
        let b = design.add_mul_const("m1", a, 3, 8);
        let keep = design.add_register("keep", b);
        let dead = design.add_sub("s1", keep, a, 6);
        let dead2 = design.add_register("r2", dead);
        design.add_output("y0", keep);
        design.add_output("y1", dead2);

        let spec = DesignSpec::from_design(&design).unwrap();
        let shrunk = shrink(&spec, |candidate| {
            candidate
                .rows
                .iter()
                .any(|r| matches!(r, Row::Reg { name, .. } if name == "keep"))
        });
        // The keep register and one output must survive; the dead cone and
        // the second output must not. The keep register's fan-in is
        // constified away.
        assert!(shrunk
            .rows
            .iter()
            .any(|r| matches!(r, Row::Reg { name, .. } if name == "keep")));
        assert!(shrunk.rows.len() <= 3, "shrunk to {shrunk}");
        assert!(shrunk.to_design().is_ok());
    }
}
