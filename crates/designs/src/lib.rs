//! # tmr-designs
//!
//! Workload generators for the `tmr-fpga` workspace: the 11-tap, 9-bit FIR
//! low-pass filter that is the case-study circuit of the DATE 2005 paper, plus
//! a few smaller designs (accumulator, counter, moving-sum) used by examples,
//! tests and ablation benchmarks.
//!
//! All generators produce word-level [`tmr_synth::Design`] graphs; apply the
//! TMR transformation from `tmr-core` and the synthesis flow from `tmr-synth`
//! to obtain mapped netlists.
//!
//! ## Example
//!
//! ```
//! use tmr_designs::FirFilter;
//!
//! let fir = FirFilter::paper_filter();
//! assert_eq!(fir.taps().len(), 11);
//! let design = fir.to_design();
//! // Eleven dedicated multipliers, ten adders, ten registers — as in the paper.
//! let stats = design.stats();
//! assert_eq!(stats.multipliers, 11);
//! assert_eq!(stats.adders, 10);
//! assert_eq!(stats.registers, 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fir;
pub mod generate;
mod simple;
pub mod spec;

pub use fir::FirFilter;
pub use generate::{generate, GeneratorConfig};
pub use simple::{accumulator, counter, moving_sum};
pub use spec::{DesignSpec, SpecError};
