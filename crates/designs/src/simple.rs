//! Small auxiliary workloads: accumulator, counter and moving-sum designs.
//!
//! These exercise the "state-machine logic" structure of the paper's taxonomy
//! (registered feedback loops), complementing the FIR filter which is pure
//! throughput logic.

use tmr_netlist::Domain;
use tmr_synth::{Design, WordOp};

/// An accumulator `acc <= acc + x` with the given data width — a registered
/// feedback loop ("state-machine logic" in the paper's classification, which
/// requires voted registers so the state can recover from an upset).
pub fn accumulator(width: u8) -> Design {
    let mut design = Design::new(format!("accumulator{width}"));
    let x = design.add_input("x", width);
    // Close the feedback loop in three steps: create the register with a
    // placeholder input, build the adder that reads the register output, then
    // patch the register input to the adder output.
    let (reg_node, acc) = design
        .add_node_in_domain(
            "acc",
            WordOp::Register { init: 0 },
            vec![x],
            None,
            Domain::None,
        )
        .expect("register construction");
    let acc = acc.expect("registers produce a signal");
    let sum = design.add_add("sum", acc, x, width);
    design
        .replace_input(reg_node, 0, sum)
        .expect("feedback widths match");
    design.add_output("y", acc);
    design
}

/// A registered incrementer `count <= step + 1` of the given width: a tiny
/// throughput-logic design with one adder, one constant and one register, used
/// as the smallest placeable workload in tests and examples.
pub fn counter(width: u8) -> Design {
    let mut design = Design::new(format!("counter{width}"));
    let one = design.add_const("one", 1, width);
    let step = design.add_input("step", width);
    let sum = design.add_add("sum", step, one, width);
    let q = design.add_register("count", sum);
    design.add_output("y", q);
    design
}

/// A moving sum of the last `taps` samples (a boxcar filter): pure throughput
/// logic like the FIR filter but without multipliers, useful for isolating
/// the contribution of adders in ablation experiments.
pub fn moving_sum(taps: usize, input_width: u8, sum_width: u8) -> Design {
    assert!(taps >= 2, "a moving sum needs at least two taps");
    let mut design = Design::new(format!("movsum{taps}"));
    let x = design.add_input("x", input_width);
    let mut delayed = vec![x];
    for i in 1..taps {
        let prev = delayed[i - 1];
        delayed.push(design.add_register(format!("dl{i}"), prev));
    }
    let mut sum = delayed[0];
    for (i, &d) in delayed.iter().enumerate().skip(1) {
        sum = design.add_add(format!("s{i}"), sum, d, sum_width);
    }
    design.add_output("y", sum);
    design
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn stim(name: &str, values: &[i64]) -> Vec<HashMap<String, i64>> {
        values
            .iter()
            .map(|&v| {
                let mut m = HashMap::new();
                m.insert(name.to_string(), v);
                m
            })
            .collect()
    }

    #[test]
    fn counter_increments_registered_value() {
        let design = counter(8);
        let out = design.evaluate(&stim("step", &[0, 5, 10, 20]));
        // Register holds (step + 1) from the previous cycle.
        assert_eq!(out[0]["y"], 0);
        assert_eq!(out[1]["y"], 1);
        assert_eq!(out[2]["y"], 6);
        assert_eq!(out[3]["y"], 11);
    }

    #[test]
    fn moving_sum_sums_last_samples() {
        let design = moving_sum(3, 6, 9);
        let out = design.evaluate(&stim("x", &[1, 2, 3, 4, 5]));
        // Window contents: [x, x[-1], x[-2]].
        assert_eq!(out[0]["y"], 1);
        assert_eq!(out[1]["y"], 3);
        assert_eq!(out[2]["y"], 6);
        assert_eq!(out[3]["y"], 9);
        assert_eq!(out[4]["y"], 12);
    }

    #[test]
    fn accumulator_accumulates() {
        let design = accumulator(8);
        let stats = design.stats();
        assert_eq!(stats.registers, 1);
        assert_eq!(stats.adders, 1);
        assert_eq!(stats.outputs, 1);
        let out = design.evaluate(&stim("x", &[1, 2, 3, 4]));
        // acc is registered: outputs are the running sum delayed by one cycle.
        assert_eq!(out[0]["y"], 0);
        assert_eq!(out[1]["y"], 1);
        assert_eq!(out[2]["y"], 3);
        assert_eq!(out[3]["y"], 6);
    }

    #[test]
    #[should_panic(expected = "at least two taps")]
    fn moving_sum_rejects_single_tap() {
        let _ = moving_sum(1, 4, 8);
    }
}
