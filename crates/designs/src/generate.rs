//! Seeded random synthesizable-design generator — the design corpus behind
//! the differential fuzzing of the whole flow.
//!
//! [`generate`] produces word-level [`Design`] graphs from a seed and a
//! [`GeneratorConfig`]. The generator is built for fuzzing, so its contract
//! is stronger than "some random circuit":
//!
//! * **Deterministic** — the output is a pure function of `(seed, config)`,
//!   identical across platforms and runs (the vendored [`rand`] stream is
//!   seed-stable by construction).
//! * **Synthesizable** — every output survives the full
//!   `lower → optimize → techmap` pipeline and the mapped netlist passes
//!   [`Netlist::validate`](tmr_netlist::Netlist::validate); the construction
//!   only uses the checked [`Design`] API, so no invalid graph can be
//!   expressed.
//! * **Monotone in its size knobs** — growing [`GeneratorConfig::nodes`],
//!   [`GeneratorConfig::inputs`] or [`GeneratorConfig::outputs`] (with the
//!   seed and every other knob fixed) never shrinks the generated design:
//!   the construction consumes the random stream in a strict per-step
//!   sequence, so a larger budget extends the smaller design's prefix.
//!
//! The knobs deliberately cover the design shapes the paper's FIR filter
//! never exercises: deep unregistered ripple/CSD cones (`comb_depth`,
//! `lut_mix`), register-dense state machines (`ff_density`), hub nets whose
//! fan-out dwarfs anything in the FIR (`fanout_skew`), and registered
//! feedback loops with reconvergent paths (`feedback`) — the topology class
//! where bridging faults and event-driven settling are hardest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmr_netlist::Domain;
use tmr_synth::{Design, SignalId, WordOp};

/// The knobs of the random design generator.
///
/// All probabilities are clamped to `0.0..=1.0` and all size knobs to sane
/// floors at generation time, so any configuration (for example one drawn
/// from a fuzzer seed) is usable as-is.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of operation steps (size knob). Each step adds at least one
    /// node (an adder, subtractor, constant multiplier, constant, or
    /// register), so the generated node count grows monotonically with this.
    pub nodes: usize,
    /// Number of top-level input buses (size knob).
    pub inputs: usize,
    /// Number of top-level output ports (size knob).
    pub outputs: usize,
    /// Maximum bus width in bits; widths are sampled from `1..=bus_width`
    /// (clamped to `1..=32`). Wider buses mean longer ripple-carry chains
    /// and more I/O pads per port.
    pub bus_width: u8,
    /// Maximum number of combinational operations along any input-to-register
    /// path: a result whose combinational depth reaches this bound is
    /// registered immediately, so the knob bounds the logic depth between
    /// flip-flop stages.
    pub comb_depth: usize,
    /// Probability that a step produces a register (flip-flop density). The
    /// effective density is higher when `comb_depth` is small, because deep
    /// results force extra pipeline registers.
    pub ff_density: f64,
    /// Fan-out skew: probability that an operand is drawn from the small
    /// "hub" subset of signals instead of uniformly. At `0.0` fan-out is
    /// near-uniform; towards `1.0` a few hub nets accumulate most of the
    /// fan-out (the high-fanout cones the FIR lacks).
    pub fanout_skew: f64,
    /// LUT-size mix: probability that a combinational step is a CSD
    /// constant multiplier (deep cones of 3-input sum/carry LUTs) rather
    /// than a plain adder/subtractor (whose low bits map to 1- and 2-input
    /// LUTs). Together with `bus_width` this shapes the LUT1/LUT2/LUT3
    /// histogram of the mapped netlist.
    pub lut_mix: f64,
    /// Feedback / bridged-topology probability: the chance that a register
    /// closes a feedback loop through later combinational logic (accumulator
    /// style), and that an operation draws both operands from the hub subset
    /// (reconvergent fan-in). Both create the cyclic, heavily shared cones
    /// that stress bridged-fault settling and event-driven scheduling.
    pub feedback: f64,
}

impl Default for GeneratorConfig {
    /// A mid-sized profile: a few dozen cells to a few hundred LUTs after
    /// mapping, with every structural feature enabled at moderate rates.
    fn default() -> Self {
        Self {
            nodes: 12,
            inputs: 2,
            outputs: 2,
            bus_width: 6,
            comb_depth: 4,
            ff_density: 0.3,
            fanout_skew: 0.3,
            lut_mix: 0.3,
            feedback: 0.3,
        }
    }
}

impl GeneratorConfig {
    /// The configuration with every knob forced into its valid range.
    fn clamped(&self) -> Self {
        Self {
            nodes: self.nodes.max(1),
            inputs: self.inputs.max(1),
            outputs: self.outputs.max(1),
            bus_width: self.bus_width.clamp(1, tmr_synth::MAX_WIDTH),
            comb_depth: self.comb_depth.max(1),
            ff_density: self.ff_density.clamp(0.0, 1.0),
            fanout_skew: self.fanout_skew.clamp(0.0, 1.0),
            lut_mix: self.lut_mix.clamp(0.0, 1.0),
            feedback: self.feedback.clamp(0.0, 1.0),
        }
    }

    /// Derives a full configuration from a fuzzer seed: every knob is
    /// sampled across its useful range, deterministically per seed, so a
    /// seed sweep covers the corner profiles (narrow/wide, shallow/deep,
    /// combinational/register-dense, uniform/hub-dominated) without a
    /// hand-written configuration matrix.
    pub fn sampled(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6765_6e63_6667_5f31);
        Self {
            nodes: rng.gen_range(4usize..=24),
            inputs: rng.gen_range(1usize..=3),
            outputs: rng.gen_range(1usize..=3),
            bus_width: rng.gen_range(1u8..=10),
            comb_depth: rng.gen_range(1usize..=8),
            ff_density: rng.gen_range(0u32..=10) as f64 / 10.0,
            fanout_skew: rng.gen_range(0u32..=10) as f64 / 10.0,
            lut_mix: rng.gen_range(0u32..=10) as f64 / 10.0,
            feedback: rng.gen_range(0u32..=10) as f64 / 10.0,
        }
    }
}

/// One available signal during generation.
struct Produced {
    id: SignalId,
    width: u8,
    /// Combinational operations since the last register (or input) on the
    /// deepest path into this signal.
    depth: usize,
}

/// A feedback register whose input still points at its placeholder.
struct OpenLoop {
    node: tmr_synth::WordNodeId,
    width: u8,
    /// Index into the produced-signal pool of the placeholder, so loop
    /// closing can prefer a different, later signal.
    placeholder: usize,
}

/// Generates one random synthesizable design from a seed and a
/// configuration. See the module documentation for the guarantees.
pub fn generate(seed: u64, config: &GeneratorConfig) -> Design {
    let cfg = config.clamped();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut design = Design::new(format!("gen{seed}"));
    let mut pool: Vec<Produced> = Vec::new();

    for i in 0..cfg.inputs {
        let width = rng.gen_range(1u8..=cfg.bus_width);
        let id = design.add_input(format!("x{i}"), width);
        pool.push(Produced {
            id,
            width,
            depth: 0,
        });
    }

    let mut open_loops: Vec<OpenLoop> = Vec::new();
    for step in 0..cfg.nodes {
        // Operand picker: hub-skewed or uniform. The hub subset is the
        // oldest eighth of the pool (at least one signal), so early signals
        // accumulate fan-out as the design grows.
        let hub_len = (pool.len() / 8).max(1).min(pool.len());
        let pick = |rng: &mut StdRng, pool: &[Produced], force_hub: bool| -> usize {
            if force_hub || rng.gen::<f64>() < cfg.fanout_skew {
                rng.gen_range(0..hub_len)
            } else {
                rng.gen_range(0..pool.len())
            }
        };

        let roll: f64 = rng.gen();
        let produced = if roll < cfg.ff_density {
            // A register step. With probability `feedback` the register is
            // created against a placeholder and its input patched to a
            // later combinational result, closing a feedback loop.
            let src = pick(&mut rng, &pool, false);
            let feedback_loop: f64 = rng.gen();
            let init = rng.gen_range(-8i64..=8);
            let width = pool[src].width;
            let (node, out) = design
                .add_node_in_domain(
                    format!("r{step}"),
                    WordOp::Register { init },
                    vec![pool[src].id],
                    None,
                    Domain::None,
                )
                .expect("register construction over pool signals is valid");
            let out = out.expect("registers produce a signal");
            if feedback_loop < cfg.feedback {
                open_loops.push(OpenLoop {
                    node,
                    width,
                    placeholder: src,
                });
            }
            Produced {
                id: out,
                width,
                depth: 0,
            }
        } else {
            // A combinational step: constant multiplier (CSD cone) or
            // adder/subtractor. With probability `feedback` both operands
            // come from the hub subset, forcing reconvergent fan-in.
            let reconverge: f64 = rng.gen();
            let reconverge = reconverge < cfg.feedback;
            let a = pick(&mut rng, &pool, reconverge);
            let width = rng.gen_range(1u8..=cfg.bus_width);
            let kind: f64 = rng.gen();
            let (id, depth) = if kind < cfg.lut_mix {
                // Non-zero coefficient with a CSD form of a few terms.
                let mut coefficient = rng.gen_range(-15i64..=15);
                if coefficient == 0 {
                    coefficient = 7;
                }
                let id = design.add_mul_const(format!("m{step}"), pool[a].id, coefficient, width);
                (id, pool[a].depth + 1)
            } else {
                let b = pick(&mut rng, &pool, reconverge);
                let subtract = rng.gen::<bool>();
                let id = if subtract {
                    design.add_sub(format!("s{step}"), pool[a].id, pool[b].id, width)
                } else {
                    design.add_add(format!("a{step}"), pool[a].id, pool[b].id, width)
                };
                (id, pool[a].depth.max(pool[b].depth) + 1)
            };
            if depth >= cfg.comb_depth {
                // Bound the combinational depth: pipeline the result.
                let q = design.add_register(format!("p{step}"), id);
                Produced {
                    id: q,
                    width,
                    depth: 0,
                }
            } else {
                Produced { id, width, depth }
            }
        };
        pool.push(produced);
    }

    // Close the feedback loops: patch each open register input to the most
    // recent width-matching signal produced after it (preferring one other
    // than the placeholder). A loop with no later candidate keeps its
    // placeholder — still a valid, merely feed-forward register.
    for open in &open_loops {
        let candidate = pool
            .iter()
            .enumerate()
            .rev()
            .find(|(i, p)| p.width == open.width && *i != open.placeholder)
            .map(|(_, p)| p.id);
        if let Some(signal) = candidate {
            design
                .replace_input(open.node, 0, signal)
                .expect("candidate width was matched");
        }
    }

    // Outputs: sample with a bias towards the most recently produced (and
    // therefore deepest) signals, skipping already-exported ones when
    // possible so ports stay distinct.
    let mut exported: Vec<SignalId> = Vec::new();
    for i in 0..cfg.outputs {
        let fresh: Vec<&Produced> = pool.iter().filter(|p| !exported.contains(&p.id)).collect();
        let id = if fresh.is_empty() {
            pool[rng.gen_range(0..pool.len())].id
        } else {
            // Quadratic bias towards the tail of the pool.
            let r: f64 = rng.gen();
            let index = ((r * r) * fresh.len() as f64) as usize;
            fresh[fresh.len() - 1 - index.min(fresh.len() - 1)].id
        };
        exported.push(id);
        design.add_output(format!("y{i}"), id);
    }

    design
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = GeneratorConfig::default();
        for seed in 0..16 {
            let a = generate(seed, &config);
            let b = generate(seed, &config);
            assert_eq!(a.node_count(), b.node_count());
            assert_eq!(a.signal_count(), b.signal_count());
            let nodes_a: Vec<_> = a.nodes().map(|(_, n)| n.clone()).collect();
            let nodes_b: Vec<_> = b.nodes().map(|(_, n)| n.clone()).collect();
            assert_eq!(nodes_a, nodes_b);
        }
    }

    #[test]
    fn node_budget_is_monotone() {
        let mut config = GeneratorConfig::default();
        let mut last = 0;
        for nodes in [1usize, 4, 8, 16, 32] {
            config.nodes = nodes;
            let design = generate(7, &config);
            assert!(design.node_count() >= last);
            last = design.node_count();
        }
    }

    #[test]
    fn sampled_configs_cover_the_knob_ranges() {
        let mut any_feedback = false;
        let mut any_wide = false;
        for seed in 0..64 {
            let config = GeneratorConfig::sampled(seed);
            assert!(config.nodes >= 4 && config.nodes <= 24);
            assert!((1..=10).contains(&config.bus_width));
            any_feedback |= config.feedback > 0.5;
            any_wide |= config.bus_width > 6;
        }
        assert!(any_feedback && any_wide);
    }

    #[test]
    fn generated_designs_evaluate() {
        // The word-level reference model must accept every generated design
        // (a cheap structural sanity check; full synthesis is covered by the
        // fuzz-flow tests).
        for seed in 0..8 {
            let design = generate(seed, &GeneratorConfig::default());
            let stim: Vec<std::collections::HashMap<String, i64>> = (0..4)
                .map(|cycle| {
                    design
                        .inputs()
                        .iter()
                        .map(|(_, sig)| (design.signal(*sig).name.clone(), cycle as i64 * 3 - 5))
                        .collect()
                })
                .collect();
            let out = design.evaluate(&stim);
            assert_eq!(out.len(), 4);
            assert!(!out[0].is_empty());
        }
    }
}
