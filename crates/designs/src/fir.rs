//! The direct-form FIR filter generator — the paper's case-study circuit.

use tmr_synth::{Design, SignalId};

/// A direct-form FIR filter description.
///
/// The paper's case study is an 11-tap, 9-bit low-pass filter whose Matlab
/// coefficients were scaled by 512 and rounded to
/// `[1, -1, -9, 6, 73, 120, 73, 6, -9, -1, 1]`; see
/// [`FirFilter::paper_filter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirFilter {
    name: String,
    taps: Vec<i64>,
    input_width: u8,
    accumulator_width: u8,
}

impl FirFilter {
    /// Creates a filter with the given coefficients and bus widths.
    ///
    /// `input_width` is the sample width (the paper uses 9 bits) and
    /// `accumulator_width` the width of the products and of the adder chain
    /// (the paper uses 18-bit adders).
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(
        name: impl Into<String>,
        taps: Vec<i64>,
        input_width: u8,
        accumulator_width: u8,
    ) -> Self {
        assert!(!taps.is_empty(), "a FIR filter needs at least one tap");
        Self {
            name: name.into(),
            taps,
            input_width,
            accumulator_width,
        }
    }

    /// The 11-tap, 9-bit low-pass filter of the paper (coefficients ×512:
    /// 1, -1, -9, 6, 73, 120 and symmetric), with 18-bit adders.
    pub fn paper_filter() -> Self {
        Self::new(
            "fir11",
            vec![1, -1, -9, 6, 73, 120, 73, 6, -9, -1, 1],
            9,
            18,
        )
    }

    /// A reduced 5-tap variant used by fast tests and Criterion benches.
    pub fn small_filter() -> Self {
        Self::new("fir5", vec![1, -2, 5, -2, 1], 6, 12)
    }

    /// The filter coefficients.
    pub fn taps(&self) -> &[i64] {
        &self.taps
    }

    /// The sample (input) width in bits.
    pub fn input_width(&self) -> u8 {
        self.input_width
    }

    /// The product/adder width in bits.
    pub fn accumulator_width(&self) -> u8 {
        self.accumulator_width
    }

    /// Builds the word-level design: an input delay line of `taps-1`
    /// registers, one dedicated constant multiplier per tap and a chain of
    /// two-input adders, exactly the structure in Fig. 4 of the paper.
    pub fn to_design(&self) -> Design {
        let mut design = Design::new(self.name.clone());
        let x = design.add_input("x", self.input_width);

        // Input delay line.
        let mut delayed: Vec<SignalId> = Vec::with_capacity(self.taps.len());
        delayed.push(x);
        for i in 1..self.taps.len() {
            let prev = delayed[i - 1];
            delayed.push(design.add_register(format!("dl{i}"), prev));
        }

        // One dedicated multiplier per tap.
        let products: Vec<SignalId> = self
            .taps
            .iter()
            .enumerate()
            .map(|(i, &coeff)| {
                design.add_mul_const(format!("p{i}"), delayed[i], coeff, self.accumulator_width)
            })
            .collect();

        // Adder chain.
        let mut sum = products[0];
        for (i, &product) in products.iter().enumerate().skip(1) {
            sum = design.add_add(format!("s{i}"), sum, product, self.accumulator_width);
        }

        design.add_output("y", sum);
        design
    }

    /// The bit-true reference response of the filter to `samples`, one output
    /// per input cycle (matching [`tmr_synth::Design::evaluate`] semantics:
    /// the delay line updates on the clock edge *after* each sample).
    pub fn reference_response(&self, samples: &[i64]) -> Vec<i64> {
        let width = self.accumulator_width;
        let mask = |v: i64| {
            let shift = 64 - u32::from(width);
            (v << shift) >> shift
        };
        let in_mask = |v: i64| {
            let shift = 64 - u32::from(self.input_width);
            (v << shift) >> shift
        };
        let mut delay = vec![0i64; self.taps.len()];
        let mut out = Vec::with_capacity(samples.len());
        for &sample in samples {
            delay[0] = in_mask(sample);
            let mut acc = 0i64;
            for (i, &coeff) in self.taps.iter().enumerate() {
                acc = mask(acc + mask(delay[i] * coeff));
            }
            out.push(acc);
            // Shift the delay line.
            for i in (1..delay.len()).rev() {
                delay[i] = delay[i - 1];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn paper_filter_matches_paper_structure() {
        let fir = FirFilter::paper_filter();
        assert_eq!(fir.taps().len(), 11);
        assert_eq!(fir.input_width(), 9);
        assert_eq!(fir.accumulator_width(), 18);
        let stats = fir.to_design().stats();
        assert_eq!(stats.multipliers, 11, "eleven dedicated multipliers");
        assert_eq!(stats.adders, 10, "ten adders");
        assert_eq!(stats.registers, 10, "ten registers in the delay line");
        assert_eq!(stats.inputs, 1);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.voters, 0, "the unprotected filter has no voters");
    }

    #[test]
    fn coefficients_are_symmetric_low_pass() {
        let fir = FirFilter::paper_filter();
        let taps = fir.taps();
        for i in 0..taps.len() {
            assert_eq!(taps[i], taps[taps.len() - 1 - i], "symmetric coefficients");
        }
        // DC gain is the coefficient sum: 2*(1-1-9+6+73)+120 = 260.
        assert_eq!(taps.iter().sum::<i64>(), 260);
    }

    #[test]
    fn design_evaluation_matches_reference_response() {
        let fir = FirFilter::paper_filter();
        let design = fir.to_design();
        let samples: Vec<i64> = vec![
            0, 10, -20, 255, -256, 100, 0, 0, 37, -1, 5, 9, -200, 13, 0, 0, 0,
        ];
        let stimuli: Vec<HashMap<String, i64>> = samples
            .iter()
            .map(|&s| {
                let mut m = HashMap::new();
                m.insert("x".to_string(), s);
                m
            })
            .collect();
        let outputs = design.evaluate(&stimuli);
        let reference = fir.reference_response(&samples);
        for (cycle, (out, expected)) in outputs.iter().zip(reference.iter()).enumerate() {
            assert_eq!(out["y"], *expected, "cycle {cycle}");
        }
    }

    #[test]
    fn impulse_response_reproduces_coefficients() {
        let fir = FirFilter::paper_filter();
        let mut samples = vec![1i64];
        samples.extend(std::iter::repeat_n(0, 12));
        let response = fir.reference_response(&samples);
        for (i, &coeff) in fir.taps().iter().enumerate() {
            assert_eq!(response[i], coeff, "impulse response tap {i}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_are_rejected() {
        let _ = FirFilter::new("bad", vec![], 8, 16);
    }

    #[test]
    fn small_filter_is_smaller() {
        let small = FirFilter::small_filter().to_design();
        let full = FirFilter::paper_filter().to_design();
        assert!(small.node_count() < full.node_count());
    }
}
