//! # tmr-arch
//!
//! A generic island-style SRAM-based FPGA device model, standing in for the
//! Xilinx Spartan-II XC2S200E used by the DATE 2005 paper *"On the Optimal
//! Design of Triple Modular Redundancy Logic for SRAM-based FPGAs"*.
//!
//! The model provides everything the rest of the workspace needs to reproduce
//! the paper's bitstream fault-injection experiments:
//!
//! * a tile grid with logic **sites** (4-input LUTs, flip-flops, I/O blocks),
//! * a **routing graph** of wires and programmable interconnect points
//!   ([`Pip`]s), every PIP controlled by exactly one configuration bit,
//! * a **configuration-memory layout** ([`ConfigLayout`]) that assigns every
//!   configurable resource (LUT truth-table bits, flip-flop initialisation
//!   bits, PIPs) a frame/offset address, mirroring the frame-organised
//!   configuration memory of the real device, and
//! * a [`Bitstream`] value that can be mutated one bit at a time — the fault
//!   model of the paper (a Single Event Upset flips one configuration bit).
//!
//! The default [`Device::xc2s200e_like`] preset is calibrated so that the
//! *proportions* of configuration bits match the ones the paper reports for
//! the XC2S200E: roughly 80–85 % general routing, 6–10 % CLB customization
//! (input multiplexers), 7–9 % LUT contents and < 1 % flip-flop bits.
//!
//! ## Example
//!
//! ```
//! use tmr_arch::Device;
//!
//! let device = Device::small(4, 4);
//! assert!(device.pip_count() > 0);
//! let layout = device.config_layout();
//! // Every configuration bit maps back to exactly one resource.
//! let bit = layout.bit_count() / 2;
//! let resource = layout.resource_at(bit).expect("in range");
//! assert_eq!(layout.bit_of(&resource), Some(bit));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitstream;
mod config;
mod device;
mod geom;
mod mbu;
mod node;
mod site;

pub use bitstream::Bitstream;
pub use config::{BitAddr, BitCategory, ConfigLayout, ConfigResource};
pub use device::{Device, DeviceParams};
pub use geom::TileCoord;
pub use mbu::{BitGeometry, MbuPattern};
pub use node::{NodeId, Pip, PipCategory, PipId, RouteNode};
pub use site::{Site, SiteId, SiteKind, LUT_INPUTS};
