//! Configuration-memory layout: the bit → resource database.
//!
//! The paper's Fault List Manager relies on "a data base of the programmed
//! resources (LUTs and configuration routing cells) we developed by decoding
//! the Xilinx bitstream". [`ConfigLayout`] is that database for our device
//! model: every programmable resource of a [`crate::Device`] owns exactly one
//! configuration bit, addressed both linearly and as (frame, offset).

use crate::{BitGeometry, DeviceParams, Pip, PipId, Site, SiteId, SiteKind};
use std::collections::BTreeMap;

/// Number of truth-table bits per 4-input LUT.
const LUT_BITS: usize = 16;

/// A programmable resource controlled by one configuration bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigResource {
    /// Bit `bit` (0..16) of the truth table of the LUT placed at `site`.
    LutBit {
        /// The LUT site.
        site: SiteId,
        /// Truth-table bit index.
        bit: u8,
    },
    /// The power-up / initialisation value of the flip-flop at `site`.
    FfInit {
        /// The FF site.
        site: SiteId,
    },
    /// The enable bit of a programmable interconnect point.
    Pip(PipId),
}

/// The coarse category of a configuration bit, matching the taxonomy of
/// Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BitCategory {
    /// LUT truth-table contents ("logic").
    LutContents,
    /// Flip-flop initialisation bits.
    FlipFlop,
    /// CLB customization (input multiplexers, intra-CLB connections).
    ClbCustomization,
    /// General routing (switch matrices, output multiplexers onto wires).
    GeneralRouting,
}

impl BitCategory {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            BitCategory::LutContents => "LUT",
            BitCategory::FlipFlop => "flip-flop",
            BitCategory::ClbCustomization => "CLB customization",
            BitCategory::GeneralRouting => "general routing",
        }
    }
}

/// The address of a configuration bit in the frame-organised memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitAddr {
    /// Frame index.
    pub frame: u32,
    /// Bit offset within the frame.
    pub offset: u32,
}

/// The complete configuration-memory layout of a device.
#[derive(Debug, Clone)]
pub struct ConfigLayout {
    frame_bits: u32,
    resources: Vec<ConfigResource>,
    categories: Vec<BitCategory>,
    pip_bit: Vec<u32>,
    lut_bit_base: Vec<u32>,
    ff_bit: Vec<u32>,
}

impl ConfigLayout {
    /// Builds the layout for a device: iterates tiles in raster order and
    /// assigns consecutive bit addresses to the PIPs, LUT truth tables and FF
    /// init bits of each tile, then chops the linear space into frames of
    /// `frame_bits`.
    pub(crate) fn build(params: &DeviceParams, sites: &[Site], pips: &[Pip]) -> Self {
        const UNASSIGNED: u32 = u32::MAX;
        let mut resources = Vec::new();
        let mut categories = Vec::new();
        let mut pip_bit = vec![UNASSIGNED; pips.len()];
        let mut lut_bit_base = vec![UNASSIGNED; sites.len()];
        let mut ff_bit = vec![UNASSIGNED; sites.len()];

        // Group resources by tile so the frame address space has the same
        // geographic locality as a real bitstream.
        let tile_key =
            |x: u16, y: u16| (usize::from(y) * usize::from(params.cols)) + usize::from(x);
        let tile_count = usize::from(params.cols) * usize::from(params.rows);
        let mut pips_by_tile: Vec<Vec<usize>> = vec![Vec::new(); tile_count];
        for (i, pip) in pips.iter().enumerate() {
            pips_by_tile[tile_key(pip.tile.x, pip.tile.y)].push(i);
        }
        let mut sites_by_tile: Vec<Vec<usize>> = vec![Vec::new(); tile_count];
        for (i, site) in sites.iter().enumerate() {
            sites_by_tile[tile_key(site.tile.x, site.tile.y)].push(i);
        }

        for tile in 0..tile_count {
            for &pip_index in &pips_by_tile[tile] {
                pip_bit[pip_index] = resources.len() as u32;
                resources.push(ConfigResource::Pip(PipId::from_index(pip_index)));
                categories.push(if pips[pip_index].category.is_general_routing() {
                    BitCategory::GeneralRouting
                } else {
                    BitCategory::ClbCustomization
                });
            }
            for &site_index in &sites_by_tile[tile] {
                let site_id = SiteId::from_index(site_index);
                match sites[site_index].kind {
                    SiteKind::Lut => {
                        lut_bit_base[site_index] = resources.len() as u32;
                        for bit in 0..LUT_BITS as u8 {
                            resources.push(ConfigResource::LutBit { site: site_id, bit });
                            categories.push(BitCategory::LutContents);
                        }
                    }
                    SiteKind::Ff => {
                        ff_bit[site_index] = resources.len() as u32;
                        resources.push(ConfigResource::FfInit { site: site_id });
                        categories.push(BitCategory::FlipFlop);
                    }
                    SiteKind::Iob => {}
                }
            }
        }

        Self {
            frame_bits: params.frame_bits,
            resources,
            categories,
            pip_bit,
            lut_bit_base,
            ff_bit,
        }
    }

    /// Total number of configuration bits.
    pub fn bit_count(&self) -> usize {
        self.resources.len()
    }

    /// Frame size in bits.
    pub fn frame_bits(&self) -> u32 {
        self.frame_bits
    }

    /// Number of frames (the last frame may be partially used).
    pub fn frame_count(&self) -> usize {
        self.bit_count().div_ceil(self.frame_bits as usize)
    }

    /// The resource controlled by linear bit `bit`, if in range.
    pub fn resource_at(&self, bit: usize) -> Option<ConfigResource> {
        self.resources.get(bit).copied()
    }

    /// The category of linear bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn category_at(&self, bit: usize) -> BitCategory {
        self.categories[bit]
    }

    /// The frame/offset geometry of this configuration memory: the
    /// coordinate map the multi-bit fault models expand their clusters in
    /// (see [`crate::MbuPattern`]).
    pub fn geometry(&self) -> BitGeometry {
        BitGeometry::new(self.frame_bits, self.bit_count())
    }

    /// The frame/offset address of a linear bit index.
    pub fn addr_of(&self, bit: usize) -> BitAddr {
        BitAddr {
            frame: (bit / self.frame_bits as usize) as u32,
            offset: (bit % self.frame_bits as usize) as u32,
        }
    }

    /// The linear bit index of a frame/offset address.
    pub fn bit_at(&self, addr: BitAddr) -> usize {
        addr.frame as usize * self.frame_bits as usize + addr.offset as usize
    }

    /// The linear bit controlling a resource, if that resource exists in this
    /// device (e.g. `FfInit` of a LUT site returns `None`).
    pub fn bit_of(&self, resource: &ConfigResource) -> Option<usize> {
        const UNASSIGNED: u32 = u32::MAX;
        match *resource {
            ConfigResource::Pip(pip) => {
                let bit = *self.pip_bit.get(pip.index())?;
                (bit != UNASSIGNED).then_some(bit as usize)
            }
            ConfigResource::LutBit { site, bit } => {
                let base = *self.lut_bit_base.get(site.index())?;
                (base != UNASSIGNED && (bit as usize) < LUT_BITS)
                    .then_some(base as usize + bit as usize)
            }
            ConfigResource::FfInit { site } => {
                let bit = *self.ff_bit.get(site.index())?;
                (bit != UNASSIGNED).then_some(bit as usize)
            }
        }
    }

    /// The linear bit controlling a PIP.
    pub fn pip_bit(&self, pip: PipId) -> usize {
        self.pip_bit[pip.index()] as usize
    }

    /// Number of configuration bits per category.
    pub fn counts_by_category(&self) -> BTreeMap<BitCategory, usize> {
        let mut counts = BTreeMap::new();
        for &cat in &self.categories {
            *counts.entry(cat).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    #[test]
    fn every_bit_maps_to_a_resource_and_back() {
        let d = Device::small(3, 2);
        let layout = d.config_layout();
        for bit in 0..layout.bit_count() {
            let resource = layout.resource_at(bit).expect("bit in range");
            assert_eq!(layout.bit_of(&resource), Some(bit), "bit {bit} round-trip");
        }
        assert!(layout.resource_at(layout.bit_count()).is_none());
    }

    #[test]
    fn frame_addressing_round_trips() {
        let d = Device::small(3, 2);
        let layout = d.config_layout();
        for bit in (0..layout.bit_count()).step_by(97) {
            let addr = layout.addr_of(bit);
            assert_eq!(layout.bit_at(addr), bit);
            assert!(addr.offset < layout.frame_bits());
        }
        assert!(layout.frame_count() * layout.frame_bits() as usize >= layout.bit_count());
    }

    #[test]
    fn geometry_matches_the_layout_addressing() {
        let d = Device::small(3, 2);
        let layout = d.config_layout();
        let geometry = layout.geometry();
        assert_eq!(geometry.bit_count(), layout.bit_count());
        assert_eq!(geometry.frame_bits(), layout.frame_bits());
        for bit in (0..layout.bit_count()).step_by(61) {
            assert_eq!(geometry.addr_of(bit), layout.addr_of(bit));
            assert_eq!(geometry.bit_at(layout.addr_of(bit)), Some(bit));
        }
    }

    #[test]
    fn pip_bits_match_pip_category() {
        let d = Device::small(3, 2);
        let layout = d.config_layout();
        for i in 0..d.pip_count() {
            let pip_id = PipId::from_index(i);
            let bit = layout.pip_bit(pip_id);
            assert_eq!(layout.resource_at(bit), Some(ConfigResource::Pip(pip_id)));
            let expected = if d.pip(pip_id).category.is_general_routing() {
                BitCategory::GeneralRouting
            } else {
                BitCategory::ClbCustomization
            };
            assert_eq!(layout.category_at(bit), expected);
        }
    }

    #[test]
    fn lut_sites_have_16_bits_each() {
        let d = Device::small(2, 2);
        let layout = d.config_layout();
        let counts = layout.counts_by_category();
        assert_eq!(counts[&BitCategory::LutContents], d.lut_sites().len() * 16);
        assert_eq!(counts[&BitCategory::FlipFlop], d.ff_sites().len());
    }

    #[test]
    fn ff_init_of_lut_site_is_none() {
        let d = Device::small(2, 2);
        let layout = d.config_layout();
        let lut_site = d.lut_sites()[0];
        assert!(layout
            .bit_of(&ConfigResource::FfInit { site: lut_site })
            .is_none());
        let ff_site = d.ff_sites()[0];
        assert!(layout
            .bit_of(&ConfigResource::LutBit {
                site: ff_site,
                bit: 0
            })
            .is_none());
    }
}
