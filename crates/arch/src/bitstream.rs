//! The configuration bitstream: a mutable bit vector addressed by the
//! [`crate::ConfigLayout`].

use std::fmt;

/// A device configuration: one bit per programmable resource.
///
/// The fault model of the paper is "flip one configuration bit and observe the
/// behaviour of the configured circuit"; [`Bitstream::flip`] is that operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    words: Vec<u64>,
    len: usize,
}

impl Bitstream {
    /// Creates an all-zero bitstream with `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Rebuilds a bitstream from its backing words (see
    /// [`Bitstream::words`]) — the inverse used by the `tmr-store` codec.
    /// Bits at or beyond `len` in the last word must be zero, matching what
    /// [`Bitstream::words`] produces.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly `len.div_ceil(64)` words long or a
    /// bit beyond `len` is set.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last() {
                assert_eq!(last >> (len % 64), 0, "bits set beyond len");
            }
        }
        Self { words, len }
    }

    /// The backing 64-bit words, least-significant bit first; bits at or
    /// beyond [`Bitstream::len`] in the last word are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitstream has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len()`.
    pub fn get(&self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of range ({})", self.len);
        (self.words[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Writes bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len()`.
    pub fn set(&mut self, bit: usize, value: bool) {
        assert!(bit < self.len, "bit {bit} out of range ({})", self.len);
        let mask = 1u64 << (bit % 64);
        if value {
            self.words[bit / 64] |= mask;
        } else {
            self.words[bit / 64] &= !mask;
        }
    }

    /// Inverts bit `bit` and returns its new value — a Single Event Upset.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len()`.
    pub fn flip(&mut self, bit: usize) -> bool {
        let new = !self.get(bit);
        self.set(bit, new);
        new
    }

    /// Inverts every bit in `bits` — one multi-bit upset, or the accumulated
    /// upsets of one scrub interval. Flipping the same set again restores the
    /// original bitstream exactly (an involution over *sets* of distinct
    /// bits), which is what a configuration scrubber relies on.
    ///
    /// # Panics
    ///
    /// Panics if any bit is out of range.
    pub fn flip_all(&mut self, bits: &[usize]) {
        for &bit in bits {
            self.flip(bit);
        }
    }

    /// Restores this bitstream from a pristine reference — a full
    /// configuration scrub. After `scrub(&golden)` the two bitstreams are
    /// identical, no matter how many upsets accumulated in between.
    ///
    /// # Panics
    ///
    /// Panics if the two bitstreams have different lengths.
    pub fn scrub(&mut self, pristine: &Bitstream) {
        assert_eq!(self.len, pristine.len, "bitstream length mismatch");
        self.words.copy_from_slice(&pristine.words);
    }

    /// Number of bits set to 1 (the *programmed* bits — the paper's Fault List
    /// Manager injects faults only into bits actually used by the design, plus
    /// the zero bits whose resources belong to the design; see `tmr-faultsim`).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of all bits set to 1.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let len = self.len;
            (0..64).filter_map(move |b| {
                let bit = wi * 64 + b;
                (bit < len && (word >> b) & 1 == 1).then_some(bit)
            })
        })
    }

    /// Returns the indices where `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if the two bitstreams have different lengths.
    pub fn diff(&self, other: &Bitstream) -> Vec<usize> {
        assert_eq!(self.len, other.len, "bitstream length mismatch");
        let mut out = Vec::new();
        for (wi, (a, b)) in self.words.iter().zip(other.words.iter()).enumerate() {
            let mut delta = a ^ b;
            while delta != 0 {
                let b = delta.trailing_zeros() as usize;
                let bit = wi * 64 + b;
                if bit < self.len {
                    out.push(bit);
                }
                delta &= delta - 1;
            }
        }
        out
    }
}

impl fmt::Display for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bitstream: {} bits, {} programmed",
            self.len,
            self.count_ones()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut bs = Bitstream::zeros(130);
        assert_eq!(bs.len(), 130);
        assert!(!bs.get(129));
        bs.set(129, true);
        assert!(bs.get(129));
        assert!(!bs.flip(129));
        assert!(bs.flip(0));
        assert_eq!(bs.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bs = Bitstream::zeros(10);
        bs.get(10);
    }

    #[test]
    fn iter_ones_lists_set_bits() {
        let mut bs = Bitstream::zeros(200);
        for bit in [0, 63, 64, 130, 199] {
            bs.set(bit, true);
        }
        let ones: Vec<usize> = bs.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 130, 199]);
    }

    #[test]
    fn diff_finds_single_flip() {
        let mut a = Bitstream::zeros(100);
        a.set(7, true);
        a.set(70, true);
        let mut b = a.clone();
        b.flip(42);
        assert_eq!(a.diff(&b), vec![42]);
        assert_eq!(a.diff(&a), Vec::<usize>::new());
    }

    #[test]
    fn flip_all_is_an_involution_and_scrub_restores() {
        let mut bs = Bitstream::zeros(150);
        bs.set(3, true);
        bs.set(100, true);
        let pristine = bs.clone();
        let upsets = [3usize, 64, 65, 149];
        bs.flip_all(&upsets);
        assert_eq!(pristine.diff(&bs).len(), upsets.len());
        let mut copy = bs.clone();
        copy.flip_all(&upsets);
        assert_eq!(copy, pristine, "double multi-flip restores");
        bs.scrub(&pristine);
        assert_eq!(bs, pristine, "a scrub restores regardless of the upsets");
    }

    #[test]
    fn empty_bitstream() {
        let bs = Bitstream::zeros(0);
        assert!(bs.is_empty());
        assert_eq!(bs.iter_ones().count(), 0);
    }
}
