//! Tile coordinates on the device grid.

use std::fmt;

/// A tile position on the device grid.
///
/// `x` grows to the east (column index), `y` grows to the north (row index).
/// Tile `(0, 0)` is the south-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileCoord {
    /// Column (0-based, west to east).
    pub x: u16,
    /// Row (0-based, south to north).
    pub y: u16,
}

impl TileCoord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another tile — the wirelength metric used by the
    /// placer and the router's A* heuristic.
    pub fn manhattan(self, other: TileCoord) -> u32 {
        let dx = (i32::from(self.x) - i32::from(other.x)).unsigned_abs();
        let dy = (i32::from(self.y) - i32::from(other.y)).unsigned_abs();
        dx + dy
    }

    /// The four cardinal neighbours that lie within a `cols` × `rows` grid.
    pub fn neighbors(self, cols: u16, rows: u16) -> Vec<TileCoord> {
        let mut out = Vec::with_capacity(4);
        if self.x > 0 {
            out.push(TileCoord::new(self.x - 1, self.y));
        }
        if self.x + 1 < cols {
            out.push(TileCoord::new(self.x + 1, self.y));
        }
        if self.y > 0 {
            out.push(TileCoord::new(self.x, self.y - 1));
        }
        if self.y + 1 < rows {
            out.push(TileCoord::new(self.x, self.y + 1));
        }
        out
    }

    /// Returns `true` if the tile lies on the perimeter of a `cols` × `rows`
    /// grid (where the I/O blocks live).
    pub fn is_perimeter(self, cols: u16, rows: u16) -> bool {
        self.x == 0 || self.y == 0 || self.x + 1 == cols || self.y + 1 == rows
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = TileCoord::new(1, 2);
        let b = TileCoord::new(4, 0);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn neighbors_respect_grid_bounds() {
        let corner = TileCoord::new(0, 0);
        assert_eq!(corner.neighbors(4, 4).len(), 2);
        let center = TileCoord::new(1, 1);
        assert_eq!(center.neighbors(4, 4).len(), 4);
        let edge = TileCoord::new(3, 1);
        assert_eq!(edge.neighbors(4, 4).len(), 3);
    }

    #[test]
    fn perimeter_detection() {
        assert!(TileCoord::new(0, 2).is_perimeter(5, 5));
        assert!(TileCoord::new(4, 2).is_perimeter(5, 5));
        assert!(TileCoord::new(2, 0).is_perimeter(5, 5));
        assert!(!TileCoord::new(2, 2).is_perimeter(5, 5));
    }
}
