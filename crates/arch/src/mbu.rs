//! Geometry-aware multi-bit upset patterns over the configuration memory.
//!
//! Modern SRAM FPGAs see an increasing fraction of multi-cell upsets: one
//! particle strike flips a small *cluster* of physically adjacent
//! configuration cells. Physical adjacency maps onto the frame-organised
//! configuration memory as adjacency in the (frame, offset) plane — two bits
//! at consecutive offsets of the same frame are vertical neighbours, two
//! bits at the same offset of consecutive frames are horizontal neighbours.
//!
//! [`BitGeometry`] is that plane: a lightweight view of a
//! [`ConfigLayout`](crate::ConfigLayout)'s frame organisation that expands an
//! anchor bit into the cluster an [`MbuPattern`] would flip. Clusters are
//! clipped at the memory boundary (a strike at the last offset of a frame
//! flips fewer cells), so every returned bit is in bounds and distinct.

use crate::BitAddr;
use std::fmt;

/// The shape of a multi-bit upset cluster in the (frame, offset) plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MbuPattern {
    /// A single cell — degenerates to the paper's single-bit fault model.
    Single,
    /// Two cells at consecutive offsets of the same frame.
    PairInFrame,
    /// Two cells at the same offset of consecutive frames.
    PairAcrossFrames,
    /// A 2×2 tile: both offsets × both frames.
    Tile2x2,
}

impl MbuPattern {
    /// All patterns, smallest cluster first.
    pub const ALL: [MbuPattern; 4] = [
        MbuPattern::Single,
        MbuPattern::PairInFrame,
        MbuPattern::PairAcrossFrames,
        MbuPattern::Tile2x2,
    ];

    /// The (frame, offset) deltas of the cluster relative to its anchor.
    /// Every pattern grows toward higher frames/offsets, so the anchor is
    /// always the lowest linear bit of the cluster.
    pub fn offsets(self) -> &'static [(u32, u32)] {
        match self {
            MbuPattern::Single => &[(0, 0)],
            MbuPattern::PairInFrame => &[(0, 0), (0, 1)],
            MbuPattern::PairAcrossFrames => &[(0, 0), (1, 0)],
            MbuPattern::Tile2x2 => &[(0, 0), (0, 1), (1, 0), (1, 1)],
        }
    }

    /// Number of cells the pattern flips away from the memory boundary.
    pub fn size(self) -> usize {
        self.offsets().len()
    }

    /// Short label used in reports (`1`, `2h`, `2v`, `2x2`).
    pub fn label(self) -> &'static str {
        match self {
            MbuPattern::Single => "1",
            MbuPattern::PairInFrame => "2-in-frame",
            MbuPattern::PairAcrossFrames => "2-across-frames",
            MbuPattern::Tile2x2 => "2x2",
        }
    }
}

impl fmt::Display for MbuPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The frame/offset geometry of a device's configuration memory: the map
/// from linear bit indices to (frame, offset) coordinates and back, plus the
/// cluster expansion of the multi-bit fault models.
///
/// Obtained from [`ConfigLayout::geometry`](crate::ConfigLayout::geometry);
/// the view is tiny (two integers) and freely copyable into fault samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitGeometry {
    frame_bits: u32,
    bit_count: usize,
}

impl BitGeometry {
    pub(crate) fn new(frame_bits: u32, bit_count: usize) -> Self {
        assert!(frame_bits > 0, "frames must hold at least one bit");
        Self {
            frame_bits,
            bit_count,
        }
    }

    /// Total number of configuration bits.
    pub fn bit_count(&self) -> usize {
        self.bit_count
    }

    /// Frame size in bits.
    pub fn frame_bits(&self) -> u32 {
        self.frame_bits
    }

    /// The frame/offset address of a linear bit index.
    pub fn addr_of(&self, bit: usize) -> BitAddr {
        BitAddr {
            frame: (bit / self.frame_bits as usize) as u32,
            offset: (bit % self.frame_bits as usize) as u32,
        }
    }

    /// The linear bit index of a frame/offset address, if it lies inside the
    /// configuration memory (the last frame may be partially used).
    pub fn bit_at(&self, addr: BitAddr) -> Option<usize> {
        if addr.offset >= self.frame_bits {
            return None;
        }
        let bit = addr.frame as usize * self.frame_bits as usize + addr.offset as usize;
        (bit < self.bit_count).then_some(bit)
    }

    /// Expands an anchor bit into the cluster of bits an [`MbuPattern`]
    /// strike at that cell flips: sorted ascending, distinct, all in bounds
    /// (cells beyond the memory boundary are clipped), always containing the
    /// anchor as its lowest element.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is outside the configuration memory.
    pub fn cluster(&self, anchor: usize, pattern: MbuPattern) -> Vec<usize> {
        assert!(
            anchor < self.bit_count,
            "anchor bit {anchor} out of range ({})",
            self.bit_count
        );
        let base = self.addr_of(anchor);
        let mut bits: Vec<usize> = pattern
            .offsets()
            .iter()
            .filter_map(|&(df, doff)| {
                self.bit_at(BitAddr {
                    frame: base.frame + df,
                    offset: base.offset + doff,
                })
            })
            .collect();
        bits.sort_unstable();
        bits.dedup();
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> BitGeometry {
        // 3 frames of 8 bits, last frame holding only 5 (21 bits total).
        BitGeometry::new(8, 21)
    }

    #[test]
    fn addresses_round_trip() {
        let g = geometry();
        for bit in 0..g.bit_count() {
            let addr = g.addr_of(bit);
            assert_eq!(g.bit_at(addr), Some(bit));
            assert!(addr.offset < g.frame_bits());
        }
        assert_eq!(
            g.bit_at(BitAddr {
                frame: 2,
                offset: 5
            }),
            None,
            "the last frame is partial"
        );
        assert_eq!(
            g.bit_at(BitAddr {
                frame: 0,
                offset: 8
            }),
            None,
            "offsets are bounded by the frame size"
        );
    }

    #[test]
    fn single_pattern_is_the_anchor() {
        let g = geometry();
        for bit in 0..g.bit_count() {
            assert_eq!(g.cluster(bit, MbuPattern::Single), vec![bit]);
        }
    }

    #[test]
    fn pair_in_frame_clips_at_the_frame_boundary() {
        let g = geometry();
        assert_eq!(g.cluster(0, MbuPattern::PairInFrame), vec![0, 1]);
        // Offset 7 is the last of frame 0: the neighbour would spill into
        // offset 8, which does not exist.
        assert_eq!(g.cluster(7, MbuPattern::PairInFrame), vec![7]);
    }

    #[test]
    fn pair_across_frames_clips_at_the_memory_end() {
        let g = geometry();
        assert_eq!(g.cluster(3, MbuPattern::PairAcrossFrames), vec![3, 11]);
        // Frame 2 bit 4 (linear 20) has no frame-3 neighbour.
        assert_eq!(g.cluster(20, MbuPattern::PairAcrossFrames), vec![20]);
        // Frame 1 offset 6 (linear 14): frame 2 offset 6 would be linear 22,
        // beyond the 21-bit memory.
        assert_eq!(g.cluster(14, MbuPattern::PairAcrossFrames), vec![14]);
    }

    #[test]
    fn tile_is_sorted_distinct_and_contains_the_anchor() {
        let g = geometry();
        let cluster = g.cluster(2, MbuPattern::Tile2x2);
        assert_eq!(cluster, vec![2, 3, 10, 11]);
        for bit in 0..g.bit_count() {
            let cluster = g.cluster(bit, MbuPattern::Tile2x2);
            assert_eq!(cluster[0], bit, "the anchor is the lowest bit");
            assert!(cluster.windows(2).all(|pair| pair[0] < pair[1]));
            assert!(cluster.iter().all(|&b| b < g.bit_count()));
        }
    }

    #[test]
    fn patterns_have_stable_labels_and_sizes() {
        for pattern in MbuPattern::ALL {
            assert!(!pattern.label().is_empty());
            assert_eq!(pattern.size(), pattern.offsets().len());
            assert_eq!(pattern.offsets()[0], (0, 0));
        }
        assert_eq!(MbuPattern::Single.size(), 1);
        assert_eq!(MbuPattern::Tile2x2.size(), 4);
        assert_eq!(MbuPattern::PairInFrame.to_string(), "2-in-frame");
    }
}
