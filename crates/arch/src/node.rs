//! Routing-graph nodes and programmable interconnect points (PIPs).

use crate::{SiteId, TileCoord};
use std::fmt;

/// Identifier of a routing-graph node within a [`crate::Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        Self(index as u32)
    }

    /// Returns the dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nd{}", self.0)
    }
}

/// Identifier of a [`Pip`] within a [`crate::Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipId(u32);

impl PipId {
    /// Creates a PIP id from a dense index.
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        Self(index as u32)
    }

    /// Returns the dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pip{}", self.0)
    }
}

/// A node of the routing graph.
///
/// Signals travel from an [`RouteNode::OutPin`] through zero or more
/// [`RouteNode::Wire`]s to one or more [`RouteNode::InPin`]s; every hop is a
/// [`Pip`] enabled by one configuration bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteNode {
    /// The fabric-facing output pin of a site (LUT output, FF Q, or the
    /// pad→fabric output of an IOB used as an input pad).
    OutPin {
        /// The owning site.
        site: SiteId,
    },
    /// An input pin of a site (LUT input `pin`, FF D, or the fabric→pad input
    /// of an IOB used as an output pad).
    InPin {
        /// The owning site.
        site: SiteId,
        /// Zero-based pin index (`0..SiteKind::input_pins()`).
        pin: u8,
    },
    /// A general routing wire segment. Each tile owns `tracks` wires.
    Wire {
        /// Tile that owns the wire.
        tile: TileCoord,
        /// Track index within the tile (`0..DeviceParams::tracks`).
        track: u16,
    },
}

impl RouteNode {
    /// Returns `true` for general routing wires.
    pub fn is_wire(self) -> bool {
        matches!(self, RouteNode::Wire { .. })
    }

    /// Returns `true` for site input pins.
    pub fn is_in_pin(self) -> bool {
        matches!(self, RouteNode::InPin { .. })
    }

    /// Returns `true` for site output pins.
    pub fn is_out_pin(self) -> bool {
        matches!(self, RouteNode::OutPin { .. })
    }
}

/// The architectural category of a PIP, used to assign its configuration bit
/// to the right region of the configuration memory.
///
/// The DATE 2005 paper distinguishes configuration bits that customise the
/// *general routing* (switch matrices between CLBs — 82.9 % of the device)
/// from the *customization logic inside the CLB* (input multiplexers — 6.36 %).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipCategory {
    /// A PIP from a site output pin onto a general routing wire.
    OutputMux,
    /// A wire-to-wire PIP inside a switch matrix (same tile or to a neighbour).
    Switchbox,
    /// A PIP from a general routing wire onto a site input pin, or a dedicated
    /// intra-CLB connection (LUT output → FF D). These model the CLB input
    /// multiplexers ("customization logic in the CLB").
    InputMux,
    /// A PIP from a *neighbouring tile's* wire directly onto a site input pin
    /// (wire segments that span into the CLB). Architecturally part of the
    /// general routing, not of the CLB customization.
    LongInput,
}

impl PipCategory {
    /// Returns `true` if bits of this category count as *general routing* in
    /// the paper's taxonomy (as opposed to CLB customization).
    pub fn is_general_routing(self) -> bool {
        matches!(
            self,
            PipCategory::OutputMux | PipCategory::Switchbox | PipCategory::LongInput
        )
    }
}

/// A programmable interconnect point: a unidirectional, buffered connection
/// from `src` to `dst` that is enabled when its configuration bit is 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pip {
    /// Driving node.
    pub src: NodeId,
    /// Driven node.
    pub dst: NodeId,
    /// Architectural category (decides the configuration-bit region).
    pub category: PipCategory,
    /// The tile whose configuration frames hold this PIP's bit.
    pub tile: TileCoord,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_predicates() {
        let wire = RouteNode::Wire {
            tile: TileCoord::new(0, 0),
            track: 3,
        };
        let inp = RouteNode::InPin {
            site: SiteId::from_index(0),
            pin: 1,
        };
        let outp = RouteNode::OutPin {
            site: SiteId::from_index(0),
        };
        assert!(wire.is_wire() && !wire.is_in_pin() && !wire.is_out_pin());
        assert!(inp.is_in_pin());
        assert!(outp.is_out_pin());
    }

    #[test]
    fn category_routing_split() {
        assert!(PipCategory::Switchbox.is_general_routing());
        assert!(PipCategory::OutputMux.is_general_routing());
        assert!(!PipCategory::InputMux.is_general_routing());
    }

    #[test]
    fn ids_round_trip() {
        assert_eq!(NodeId::from_index(9).index(), 9);
        assert_eq!(PipId::from_index(11).index(), 11);
        assert_eq!(PipId::from_index(11).to_string(), "pip11");
    }
}
