//! The device model: tile grid, sites, routing graph and presets.

use crate::config::ConfigLayout;
use crate::{NodeId, Pip, PipCategory, PipId, RouteNode, Site, SiteId, SiteKind, TileCoord};
use std::collections::HashMap;

/// Architectural parameters of a device family.
///
/// The defaults produced by [`DeviceParams::xc2s200e_like`] are calibrated so
/// that the proportion of configuration bits per category matches the numbers
/// the paper reports for the Spartan-II XC2S200E (≈83 % general routing,
/// ≈6 % CLB customization, ≈7 % LUT contents, <1 % flip-flops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceParams {
    /// Number of tile columns.
    pub cols: u16,
    /// Number of tile rows.
    pub rows: u16,
    /// Slices per CLB tile; each slice provides 2 LUT sites and 2 FF sites.
    pub slices_per_tile: u8,
    /// General routing wires (tracks) owned by each tile.
    pub tracks: u16,
    /// Number of tracks reachable from each site output pin (output PIPs).
    pub out_pin_candidates: u16,
    /// Number of tracks that can feed each site input pin (input-mux PIPs).
    pub in_pin_candidates: u16,
    /// Same-tile track-to-track hops per track in the switch matrix.
    pub sb_same_tile: u16,
    /// Track-to-track hops per track towards each cardinal neighbour.
    pub sb_neighbor: u16,
    /// I/O blocks available on each perimeter tile.
    pub iobs_per_perimeter_tile: u8,
    /// Configuration-frame size in bits (the XC2S200E uses 576-bit frames).
    pub frame_bits: u32,
}

impl DeviceParams {
    /// Parameters approximating the Spartan-II XC2S200E of the paper:
    /// a 42 × 28 CLB array, two slices per CLB (4 LUT4 + 4 FF per tile).
    pub fn xc2s200e_like() -> Self {
        Self {
            cols: 42,
            rows: 28,
            slices_per_tile: 2,
            tracks: 36,
            out_pin_candidates: 8,
            in_pin_candidates: 4,
            sb_same_tile: 3,
            sb_neighbor: 4,
            iobs_per_perimeter_tile: 2,
            frame_bits: 576,
        }
    }

    /// Small parameters for unit tests and examples: fewer tracks and a single
    /// slice per tile, so graphs stay tiny.
    ///
    /// The channel width and pin connectivity are provisioned so that even a
    /// near-fully-utilised tile grid remains routable: TMR designs pack three
    /// redundant copies plus voters into the fabric, and with fewer track or
    /// pin candidates the PathFinder negotiation cannot resolve the resulting
    /// congestion no matter how large the grid is.
    pub fn small(cols: u16, rows: u16) -> Self {
        Self {
            cols,
            rows,
            slices_per_tile: 1,
            tracks: 32,
            out_pin_candidates: 8,
            in_pin_candidates: 6,
            sb_same_tile: 3,
            sb_neighbor: 3,
            iobs_per_perimeter_tile: 2,
            frame_bits: 64,
        }
    }

    /// LUT sites per tile (2 per slice).
    pub fn luts_per_tile(&self) -> usize {
        self.slices_per_tile as usize * 2
    }

    /// FF sites per tile (2 per slice).
    pub fn ffs_per_tile(&self) -> usize {
        self.slices_per_tile as usize * 2
    }
}

/// An island-style SRAM FPGA device: sites, routing graph and configuration
/// layout.
///
/// Construction enumerates every site, routing node and PIP of the device and
/// builds the adjacency lists used by the router, plus the
/// [`ConfigLayout`] that assigns one configuration bit to every programmable
/// resource.
#[derive(Debug, Clone)]
pub struct Device {
    params: DeviceParams,
    sites: Vec<Site>,
    nodes: Vec<RouteNode>,
    pips: Vec<Pip>,
    node_index: HashMap<RouteNode, NodeId>,
    pips_from: Vec<Vec<PipId>>,
    pips_to: Vec<Vec<PipId>>,
    out_pin_of_site: Vec<NodeId>,
    in_pins_of_site: Vec<Vec<NodeId>>,
    lut_sites: Vec<SiteId>,
    ff_sites: Vec<SiteId>,
    iob_sites: Vec<SiteId>,
    layout: ConfigLayout,
}

impl Device {
    /// Builds a device from explicit parameters.
    pub fn new(params: DeviceParams) -> Self {
        DeviceBuilder::new(params).build()
    }

    /// Builds the XC2S200E-like device used for the paper's tables.
    pub fn xc2s200e_like() -> Self {
        Self::new(DeviceParams::xc2s200e_like())
    }

    /// Builds a small test device.
    pub fn small(cols: u16, rows: u16) -> Self {
        Self::new(DeviceParams::small(cols, rows))
    }

    /// The parameters this device was built from.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Number of tile columns.
    pub fn cols(&self) -> u16 {
        self.params.cols
    }

    /// Number of tile rows.
    pub fn rows(&self) -> u16 {
        self.params.rows
    }

    /// Iterates over every tile coordinate of the grid.
    pub fn tiles(&self) -> impl Iterator<Item = TileCoord> + '_ {
        let cols = self.params.cols;
        let rows = self.params.rows;
        (0..rows).flat_map(move |y| (0..cols).map(move |x| TileCoord::new(x, y)))
    }

    /// All sites of the device.
    pub fn sites(&self) -> impl Iterator<Item = (SiteId, &Site)> {
        self.sites
            .iter()
            .enumerate()
            .map(|(i, s)| (SiteId::from_index(i), s))
    }

    /// The site with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// All LUT sites.
    pub fn lut_sites(&self) -> &[SiteId] {
        &self.lut_sites
    }

    /// All flip-flop sites.
    pub fn ff_sites(&self) -> &[SiteId] {
        &self.ff_sites
    }

    /// All I/O block sites (on the perimeter).
    pub fn iob_sites(&self) -> &[SiteId] {
        &self.iob_sites
    }

    /// Sites of a given kind.
    pub fn sites_of_kind(&self, kind: SiteKind) -> &[SiteId] {
        match kind {
            SiteKind::Lut => &self.lut_sites,
            SiteKind::Ff => &self.ff_sites,
            SiteKind::Iob => &self.iob_sites,
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of routing-graph nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of PIPs.
    pub fn pip_count(&self) -> usize {
        self.pips.len()
    }

    /// The routing node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> RouteNode {
        self.nodes[id.index()]
    }

    /// Looks up the id of a routing node.
    pub fn node_id(&self, node: RouteNode) -> Option<NodeId> {
        self.node_index.get(&node).copied()
    }

    /// The PIP with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pip(&self, id: PipId) -> Pip {
        self.pips[id.index()]
    }

    /// All PIPs leaving `node`.
    pub fn pips_from(&self, node: NodeId) -> &[PipId] {
        &self.pips_from[node.index()]
    }

    /// All PIPs arriving at `node`.
    pub fn pips_to(&self, node: NodeId) -> &[PipId] {
        &self.pips_to[node.index()]
    }

    /// The output-pin node of a site.
    pub fn out_pin(&self, site: SiteId) -> NodeId {
        self.out_pin_of_site[site.index()]
    }

    /// The input-pin nodes of a site, indexed by pin.
    pub fn in_pins(&self, site: SiteId) -> &[NodeId] {
        &self.in_pins_of_site[site.index()]
    }

    /// The tile a routing node geometrically belongs to (used by the router's
    /// A* heuristic and by congestion maps).
    pub fn node_tile(&self, id: NodeId) -> TileCoord {
        match self.node(id) {
            RouteNode::Wire { tile, .. } => tile,
            RouteNode::OutPin { site } | RouteNode::InPin { site, .. } => self.site(site).tile,
        }
    }

    /// The configuration-memory layout of this device.
    pub fn config_layout(&self) -> &ConfigLayout {
        &self.layout
    }
}

struct DeviceBuilder {
    params: DeviceParams,
    sites: Vec<Site>,
    nodes: Vec<RouteNode>,
    pips: Vec<Pip>,
    node_index: HashMap<RouteNode, NodeId>,
    out_pin_of_site: Vec<NodeId>,
    in_pins_of_site: Vec<Vec<NodeId>>,
    lut_sites: Vec<SiteId>,
    ff_sites: Vec<SiteId>,
    iob_sites: Vec<SiteId>,
}

impl DeviceBuilder {
    fn new(params: DeviceParams) -> Self {
        Self {
            params,
            sites: Vec::new(),
            nodes: Vec::new(),
            pips: Vec::new(),
            node_index: HashMap::new(),
            out_pin_of_site: Vec::new(),
            in_pins_of_site: Vec::new(),
            lut_sites: Vec::new(),
            ff_sites: Vec::new(),
            iob_sites: Vec::new(),
        }
    }

    fn intern_node(&mut self, node: RouteNode) -> NodeId {
        if let Some(&id) = self.node_index.get(&node) {
            return id;
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        self.node_index.insert(node, id);
        id
    }

    fn add_site(&mut self, kind: SiteKind, tile: TileCoord, index_in_tile: u8) -> SiteId {
        let id = SiteId::from_index(self.sites.len());
        self.sites.push(Site {
            kind,
            tile,
            index_in_tile,
        });
        let out = self.intern_node(RouteNode::OutPin { site: id });
        self.out_pin_of_site.push(out);
        let pins = (0..kind.input_pins())
            .map(|p| {
                self.intern_node(RouteNode::InPin {
                    site: id,
                    pin: p as u8,
                })
            })
            .collect();
        self.in_pins_of_site.push(pins);
        match kind {
            SiteKind::Lut => self.lut_sites.push(id),
            SiteKind::Ff => self.ff_sites.push(id),
            SiteKind::Iob => self.iob_sites.push(id),
        }
        id
    }

    fn add_pip(&mut self, src: NodeId, dst: NodeId, category: PipCategory, tile: TileCoord) {
        self.pips.push(Pip {
            src,
            dst,
            category,
            tile,
        });
    }

    fn wire(&mut self, tile: TileCoord, track: u16) -> NodeId {
        self.intern_node(RouteNode::Wire { tile, track })
    }

    fn build(mut self) -> Device {
        let p = self.params;

        // 1. Sites and wires, tile by tile.
        for y in 0..p.rows {
            for x in 0..p.cols {
                let tile = TileCoord::new(x, y);
                for track in 0..p.tracks {
                    self.wire(tile, track);
                }
                for slice in 0..p.slices_per_tile {
                    for i in 0..2u8 {
                        self.add_site(SiteKind::Lut, tile, slice * 2 + i);
                    }
                    for i in 0..2u8 {
                        self.add_site(SiteKind::Ff, tile, slice * 2 + i);
                    }
                }
                if tile.is_perimeter(p.cols, p.rows) {
                    for i in 0..p.iobs_per_perimeter_tile {
                        self.add_site(SiteKind::Iob, tile, i);
                    }
                }
            }
        }

        // 2. PIPs. Iterate sites and tiles deterministically so PIP ids (and
        //    therefore configuration-bit addresses) are stable.
        let site_count = self.sites.len();
        for site_index in 0..site_count {
            let site = self.sites[site_index];
            let tile = site.tile;
            let tracks = p.tracks as usize;

            // Output PIPs: output pin -> a spread of tracks in the same tile.
            let out_node = self.out_pin_of_site[site_index];
            let base = (site_index * 7 + usize::from(tile.x) + usize::from(tile.y) * 3) % tracks;
            let step = (tracks / p.out_pin_candidates.max(1) as usize).max(1);
            for i in 0..p.out_pin_candidates as usize {
                let track = ((base + i * step) % tracks) as u16;
                let wire = self.wire(tile, track);
                self.add_pip(out_node, wire, PipCategory::OutputMux, tile);
            }

            // Input-mux PIPs: a small set of tracks -> each input pin.
            for pin in 0..site.kind.input_pins() {
                let pin_node = self.in_pins_of_site[site_index][pin];
                let pin_base =
                    (site_index * 5 + pin * 11 + usize::from(tile.x) * 2 + usize::from(tile.y))
                        % tracks;
                let pin_step = (tracks / p.in_pin_candidates.max(1) as usize).max(1);
                for i in 0..p.in_pin_candidates as usize {
                    let track = ((pin_base + i * pin_step + i) % tracks) as u16;
                    let wire = self.wire(tile, track);
                    self.add_pip(wire, pin_node, PipCategory::InputMux, tile);
                }
                // One additional candidate from each neighbouring tile (wire
                // segments spanning into the CLB) — part of the general
                // routing, and essential for routability.
                for (n, neighbor) in tile.neighbors(p.cols, p.rows).into_iter().enumerate() {
                    let track = ((pin_base + n * 7 + 2) % tracks) as u16;
                    let wire = self.wire(neighbor, track);
                    self.add_pip(wire, pin_node, PipCategory::LongInput, tile);
                }
            }
        }

        // Dedicated LUT -> FF connections inside a slice (the "FF mux" of the
        // CLB): LUT `i` of a tile can drive FF `i` of the same tile directly.
        for y in 0..p.rows {
            for x in 0..p.cols {
                let tile = TileCoord::new(x, y);
                let luts: Vec<SiteId> = self
                    .lut_sites
                    .iter()
                    .copied()
                    .filter(|s| self.sites[s.index()].tile == tile)
                    .collect();
                let ffs: Vec<SiteId> = self
                    .ff_sites
                    .iter()
                    .copied()
                    .filter(|s| self.sites[s.index()].tile == tile)
                    .collect();
                for (lut, ff) in luts.iter().zip(ffs.iter()) {
                    let src = self.out_pin_of_site[lut.index()];
                    let dst = self.in_pins_of_site[ff.index()][0];
                    self.add_pip(src, dst, PipCategory::InputMux, tile);
                }
            }
        }

        // 3. Switch matrices: same-tile and neighbour track-to-track PIPs.
        let same_offsets = [1usize, 5, 13, 7, 3];
        let neigh_offsets = [0usize, 3, 9, 17, 6];
        for y in 0..p.rows {
            for x in 0..p.cols {
                let tile = TileCoord::new(x, y);
                let tracks = p.tracks as usize;
                for track in 0..p.tracks {
                    let src = self.wire(tile, track);
                    for &off in same_offsets.iter().take(p.sb_same_tile as usize) {
                        let dst_track = ((track as usize + off) % tracks) as u16;
                        let dst = self.wire(tile, dst_track);
                        if dst != src {
                            self.add_pip(src, dst, PipCategory::Switchbox, tile);
                        }
                    }
                    for neighbor in tile.neighbors(p.cols, p.rows) {
                        for &off in neigh_offsets.iter().take(p.sb_neighbor as usize) {
                            let dst_track = ((track as usize + off) % tracks) as u16;
                            let dst = self.wire(neighbor, dst_track);
                            self.add_pip(src, dst, PipCategory::Switchbox, tile);
                        }
                    }
                }
            }
        }

        // 4. Adjacency lists.
        let mut pips_from = vec![Vec::new(); self.nodes.len()];
        let mut pips_to = vec![Vec::new(); self.nodes.len()];
        for (i, pip) in self.pips.iter().enumerate() {
            let id = PipId::from_index(i);
            pips_from[pip.src.index()].push(id);
            pips_to[pip.dst.index()].push(id);
        }

        // 5. Configuration layout.
        let layout = ConfigLayout::build(&self.params, &self.sites, &self.pips);

        Device {
            params: self.params,
            sites: self.sites,
            nodes: self.nodes,
            pips: self.pips,
            node_index: self.node_index,
            pips_from,
            pips_to,
            out_pin_of_site: self.out_pin_of_site,
            in_pins_of_site: self.in_pins_of_site,
            lut_sites: self.lut_sites,
            ff_sites: self.ff_sites,
            iob_sites: self.iob_sites,
            layout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitCategory;
    use std::collections::HashSet;

    #[test]
    fn small_device_has_expected_site_counts() {
        let d = Device::small(4, 3);
        // 12 tiles, 1 slice each: 2 LUTs + 2 FFs per tile.
        assert_eq!(d.lut_sites().len(), 4 * 3 * 2);
        assert_eq!(d.ff_sites().len(), 4 * 3 * 2);
        // A 4x3 grid has 2 interior tiles, so 10 perimeter tiles * 2 IOBs.
        assert_eq!(d.iob_sites().len(), 20);
        assert_eq!(d.site_count(), 24 + 24 + 20);
    }

    #[test]
    fn pips_reference_valid_nodes() {
        let d = Device::small(3, 3);
        for i in 0..d.pip_count() {
            let pip = d.pip(PipId::from_index(i));
            assert!(pip.src.index() < d.node_count());
            assert!(pip.dst.index() < d.node_count());
            assert_ne!(pip.src, pip.dst);
        }
    }

    #[test]
    fn adjacency_lists_are_consistent() {
        let d = Device::small(3, 3);
        let mut from_count = 0;
        let mut to_count = 0;
        for n in 0..d.node_count() {
            let id = NodeId::from_index(n);
            from_count += d.pips_from(id).len();
            to_count += d.pips_to(id).len();
            for &pip in d.pips_from(id) {
                assert_eq!(d.pip(pip).src, id);
            }
            for &pip in d.pips_to(id) {
                assert_eq!(d.pip(pip).dst, id);
            }
        }
        assert_eq!(from_count, d.pip_count());
        assert_eq!(to_count, d.pip_count());
    }

    #[test]
    fn every_input_pin_is_reachable_from_some_wire() {
        let d = Device::small(3, 3);
        for (id, site) in d.sites() {
            for pin in 0..site.kind.input_pins() {
                let node = d.in_pins(id)[pin];
                assert!(
                    !d.pips_to(node).is_empty(),
                    "input pin {pin} of site {site} has no input-mux PIPs"
                );
            }
            assert!(
                !d.pips_from(d.out_pin(id)).is_empty(),
                "output pin of {site} drives no wires"
            );
        }
    }

    #[test]
    fn out_pin_candidates_hit_distinct_tracks() {
        let d = Device::small(3, 3);
        let site = d.lut_sites()[0];
        let tracks: HashSet<_> = d
            .pips_from(d.out_pin(site))
            .iter()
            .map(|&p| d.pip(p).dst)
            .filter(|&n| d.node(n).is_wire())
            .collect();
        assert_eq!(tracks.len(), d.params().out_pin_candidates as usize);
    }

    #[test]
    fn xc2s200e_like_bit_proportions_match_paper() {
        let d = Device::xc2s200e_like();
        let layout = d.config_layout();
        let counts = layout.counts_by_category();
        let total: usize = counts.values().sum();
        let frac = |cat: BitCategory| counts.get(&cat).copied().unwrap_or(0) as f64 / total as f64;
        // Paper: routing 82.9 %, CLB customization 6.36 %, LUTs 7.4 %, FFs 0.46 %.
        let routing = frac(BitCategory::GeneralRouting);
        let clb = frac(BitCategory::ClbCustomization);
        let lut = frac(BitCategory::LutContents);
        let ff = frac(BitCategory::FlipFlop);
        assert!(
            routing > 0.75 && routing < 0.90,
            "routing fraction {routing}"
        );
        assert!(clb > 0.03 && clb < 0.12, "clb fraction {clb}");
        assert!(lut > 0.05 && lut < 0.12, "lut fraction {lut}");
        assert!(ff < 0.02, "ff fraction {ff}");
        // Sanity check on absolute size: same order of magnitude as the
        // XC2S200E's 1,442,016 configuration bits.
        assert!(total > 300_000 && total < 3_000_000, "total bits {total}");
    }

    #[test]
    fn node_tile_matches_site_tile() {
        let d = Device::small(3, 3);
        let site = d.lut_sites()[5];
        let tile = d.site(site).tile;
        assert_eq!(d.node_tile(d.out_pin(site)), tile);
        assert_eq!(d.node_tile(d.in_pins(site)[2]), tile);
    }

    #[test]
    fn node_lookup_round_trips() {
        let d = Device::small(3, 3);
        let node = RouteNode::Wire {
            tile: TileCoord::new(1, 1),
            track: 3,
        };
        let id = d.node_id(node).expect("wire exists");
        assert_eq!(d.node(id), node);
        assert!(d
            .node_id(RouteNode::Wire {
                tile: TileCoord::new(1, 1),
                track: 999
            })
            .is_none());
    }
}
