//! Logic sites: the placeable locations of the device (LUTs, flip-flops, IOBs).

use crate::TileCoord;
use std::fmt;

/// Number of inputs of every lookup-table site in the device (Spartan-II CLBs
/// use 4-input LUTs).
pub const LUT_INPUTS: usize = 4;

/// The kind of logic resource a [`Site`] provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A 4-input lookup table.
    Lut,
    /// A D flip-flop clocked by the implicit global clock.
    Ff,
    /// An input/output block on the device perimeter. An IOB can be used
    /// either as an input pad (driving the fabric) or an output pad (driven by
    /// the fabric), not both.
    Iob,
}

impl SiteKind {
    /// Number of routable input pins of the site.
    pub fn input_pins(self) -> usize {
        match self {
            SiteKind::Lut => LUT_INPUTS,
            SiteKind::Ff => 1,
            SiteKind::Iob => 1,
        }
    }

    /// Returns `true` if the site has a fabric-facing output pin.
    ///
    /// Every site kind does: LUT and FF outputs drive the fabric, and an IOB
    /// used as an input pad drives the fabric with the pad value.
    pub fn has_output_pin(self) -> bool {
        true
    }
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteKind::Lut => f.write_str("LUT"),
            SiteKind::Ff => f.write_str("FF"),
            SiteKind::Iob => f.write_str("IOB"),
        }
    }
}

/// Identifier of a [`Site`] within a [`crate::Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(u32);

impl SiteId {
    /// Creates a site id from a dense index.
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        Self(index as u32)
    }

    /// Returns the dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A placeable logic location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// What the site can implement.
    pub kind: SiteKind,
    /// The tile that owns the site.
    pub tile: TileCoord,
    /// Index of the site within its tile and kind (e.g. "LUT 3 of tile (2,5)").
    pub index_in_tile: u8,
}

impl Site {
    /// Human-readable name, e.g. `LUT_X2Y5_3`.
    pub fn name(&self) -> String {
        format!(
            "{}_X{}Y{}_{}",
            self.kind, self.tile.x, self.tile.y, self.index_in_tile
        )
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts() {
        assert_eq!(SiteKind::Lut.input_pins(), 4);
        assert_eq!(SiteKind::Ff.input_pins(), 1);
        assert_eq!(SiteKind::Iob.input_pins(), 1);
        assert!(SiteKind::Lut.has_output_pin());
    }

    #[test]
    fn site_names_are_descriptive() {
        let site = Site {
            kind: SiteKind::Lut,
            tile: TileCoord::new(2, 5),
            index_in_tile: 3,
        };
        assert_eq!(site.name(), "LUT_X2Y5_3");
        assert_eq!(site.to_string(), "LUT_X2Y5_3");
    }
}
