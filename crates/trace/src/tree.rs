//! Deterministic reconstruction of the span tree from merged records.

use crate::attr::AttrValue;
use crate::record::Record;
use std::collections::HashMap;

/// One node of the reconstructed trace: a span (with a duration) or an
/// instant event (without one).
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// Span or event name, e.g. `stage.route`.
    pub name: String,
    /// Task label of the recording thread (`main`, `shard-03`, …).
    pub task: String,
    /// Wall-clock duration; `None` for instant events.
    pub dur_ns: Option<u64>,
    /// Attributes in the order they were attached.
    pub attrs: Vec<(String, AttrValue)>,
    /// Child spans and events, in deterministic `(task, seq)` order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// The value of the named attribute, if attached.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, value)| value)
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|child| child.find(name))
    }

    /// Number of descendants (including self) named `name`.
    pub fn count(&self, name: &str) -> usize {
        usize::from(self.name == name)
            + self
                .children
                .iter()
                .map(|child| child.count(name))
                .sum::<usize>()
    }

    fn structure_into(&self, out: &mut String) {
        out.push_str(&self.name);
        out.push('[');
        out.push_str(&self.task);
        out.push(']');
        if !self.children.is_empty() {
            out.push('(');
            for (index, child) in self.children.iter().enumerate() {
                if index > 0 {
                    out.push(' ');
                }
                child.structure_into(out);
            }
            out.push(')');
        }
    }
}

/// The merged trace: root spans in deterministic order plus a snapshot of
/// the counter registry. Built by [`drain_tree`](crate::drain_tree).
#[derive(Debug, Clone, Default)]
pub struct TraceTree {
    /// Top-level spans and events.
    pub roots: Vec<TraceNode>,
    /// Counter registry snapshot, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl TraceTree {
    /// Builds the tree from records already sorted by `(task, seq)`.
    /// Children attach to parents by span id; sibling order is the sorted
    /// record order, so the result is independent of thread scheduling.
    pub(crate) fn build(records: Vec<Record>, counters: Vec<(String, u64)>) -> TraceTree {
        struct Slot {
            node: Option<TraceNode>,
            parent: u64,
            children: Vec<usize>,
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(records.len());
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        for record in records {
            let index = slots.len();
            if record.id != 0 {
                by_id.insert(record.id, index);
            }
            slots.push(Slot {
                node: Some(TraceNode {
                    name: record.name.into_owned(),
                    task: record.task.to_string(),
                    dur_ns: record.dur_ns,
                    attrs: record
                        .attrs
                        .into_iter()
                        .map(|(key, value)| (key.into_owned(), value))
                        .collect(),
                    children: Vec::new(),
                }),
                parent: record.parent,
                children: Vec::new(),
            });
        }
        let mut roots: Vec<usize> = Vec::new();
        for index in 0..slots.len() {
            match by_id.get(&slots[index].parent) {
                // A span can't be its own ancestor (ids are unique and
                // parents are assigned at open), so this attachment is
                // acyclic by construction.
                Some(&parent_index) if parent_index != index => {
                    slots[parent_index].children.push(index)
                }
                _ => roots.push(index),
            }
        }
        fn assemble(slots: &mut [Slot], index: usize) -> TraceNode {
            let children = std::mem::take(&mut slots[index].children);
            let mut node = slots[index].node.take().expect("node assembled twice");
            node.children = children
                .into_iter()
                .map(|child| assemble(slots, child))
                .collect();
            node
        }
        TraceTree {
            roots: roots
                .into_iter()
                .map(|index| assemble(&mut slots, index))
                .collect(),
            counters,
        }
    }

    /// Depth-first search across all roots for the first node named `name`.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        self.roots.iter().find_map(|root| root.find(name))
    }

    /// Total number of nodes named `name` in the tree.
    pub fn count(&self, name: &str) -> usize {
        self.roots.iter().map(|root| root.count(name)).sum()
    }

    /// A compact rendering of the tree's shape — names, tasks and nesting,
    /// with ids and timings elided. Two runs tracing the same work produce
    /// the same structure string regardless of thread interleaving; the
    /// determinism proptests compare exactly this.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        for (index, root) in self.roots.iter().enumerate() {
            if index > 0 {
                out.push(' ');
            }
            root.structure_into(&mut out);
        }
        out
    }
}
