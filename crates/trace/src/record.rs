//! Per-thread record buffers, span/event guards and cross-thread task
//! adoption.
//!
//! Every thread records into a thread-local buffer: opening a span assigns
//! it a process-unique id and a per-thread sequence number; closing it turns
//! it into a [`Record`]. Buffers publish into the global collector whenever
//! the thread's span stack empties, when a [`TaskGuard`] ends, and at thread
//! exit — so by the time a flush happens on the coordinating thread, every
//! finished worker's records are visible.
//!
//! Determinism: records are merged by `(task label, seq)`, never by wall
//! clock or publish order, so concurrently running workers must install
//! distinct task labels via [`task`] (the campaign engine labels its workers
//! `shard-00`, `shard-01`, …). The sequence number is assigned at span-open
//! on the owning thread, which makes the merged tree a pure function of what
//! was traced.

use crate::attr::AttrValue;
use crate::{now_ns, publish_records};
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One finished span or instant event.
#[derive(Debug, Clone)]
pub(crate) struct Record {
    pub name: Cow<'static, str>,
    pub task: Arc<str>,
    pub seq: u64,
    /// Process-unique span id; 0 for instant events.
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    pub start_ns: u64,
    /// `None` marks an instant event.
    pub dur_ns: Option<u64>,
    pub attrs: Vec<(Cow<'static, str>, AttrValue)>,
}

struct OpenSpan {
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    seq: u64,
    start_ns: u64,
    attrs: Vec<(Cow<'static, str>, AttrValue)>,
}

struct ThreadBuffer {
    task: Arc<str>,
    /// Span id adopted from the spawning thread; parent of this thread's
    /// root spans.
    task_parent: u64,
    next_seq: u64,
    open: Vec<OpenSpan>,
    records: Vec<Record>,
}

impl ThreadBuffer {
    fn new() -> Self {
        ThreadBuffer {
            task: Arc::from("main"),
            task_parent: 0,
            next_seq: 0,
            open: Vec::new(),
            records: Vec::new(),
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        // A thread dying with open spans (early return, panic) still records
        // them, closed at the time of death.
        let end = now_ns();
        while let Some(open) = self.open.pop() {
            self.records.push(Record {
                name: open.name,
                task: self.task.clone(),
                seq: open.seq,
                id: open.id,
                parent: open.parent,
                start_ns: open.start_ns,
                dur_ns: Some(end.saturating_sub(open.start_ns)),
                attrs: open.attrs,
            });
        }
        publish_records(&mut self.records);
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer::new());
}

fn next_id() -> u64 {
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// An opaque span identity, used to adopt a parent span across threads
/// ([`task`]) — see [`current_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

/// The identity of the innermost span open on this thread (or the span this
/// thread's task adopted, if none is open locally). Capture it on the
/// spawning thread and pass it to [`task`] in the worker so the worker's
/// spans merge under the right parent.
pub fn current_span() -> Option<SpanId> {
    BUFFER
        .try_with(|cell| {
            let buffer = cell.borrow();
            match buffer.open.last() {
                Some(open) => Some(SpanId(open.id)),
                None if buffer.task_parent != 0 => Some(SpanId(buffer.task_parent)),
                None => None,
            }
        })
        .ok()
        .flatten()
}

pub(crate) fn open_span(name: Cow<'static, str>) -> SpanGuard {
    BUFFER
        .try_with(|cell| {
            let mut buffer = cell.borrow_mut();
            let id = next_id();
            let parent = buffer
                .open
                .last()
                .map(|open| open.id)
                .unwrap_or(buffer.task_parent);
            let seq = buffer.next_seq;
            buffer.next_seq += 1;
            buffer.open.push(OpenSpan {
                id,
                parent,
                name,
                seq,
                start_ns: now_ns(),
                attrs: Vec::new(),
            });
            SpanGuard { id }
        })
        .unwrap_or(SpanGuard { id: 0 })
}

fn close_span(id: u64) {
    let end = now_ns();
    let _ = BUFFER.try_with(|cell| {
        let mut buffer = cell.borrow_mut();
        // Guards normally drop innermost-first; if one is dropped out of
        // order, everything opened inside it closes with it.
        while let Some(open) = buffer.open.pop() {
            let found = open.id == id;
            let task = buffer.task.clone();
            buffer.records.push(Record {
                name: open.name,
                task,
                seq: open.seq,
                id: open.id,
                parent: open.parent,
                start_ns: open.start_ns,
                dur_ns: Some(end.saturating_sub(open.start_ns)),
                attrs: open.attrs,
            });
            if found {
                break;
            }
        }
        if buffer.open.is_empty() {
            publish_records(&mut buffer.records);
        }
    });
}

pub(crate) fn attr_innermost(key: Cow<'static, str>, value: AttrValue) {
    let _ = BUFFER.try_with(|cell| {
        if let Some(open) = cell.borrow_mut().open.last_mut() {
            open.attrs.push((key, value));
        }
    });
}

/// Publishes this thread's finished records into the global collector.
pub(crate) fn publish_current_thread() {
    let _ = BUFFER.try_with(|cell| {
        publish_records(&mut cell.borrow_mut().records);
    });
}

/// RAII guard for an open span; created by [`span`](crate::span). Dropping
/// it closes the span. When tracing is disabled the guard is inert.
#[must_use = "dropping the guard closes the span"]
pub struct SpanGuard {
    /// 0 when tracing was disabled at creation.
    id: u64,
}

impl SpanGuard {
    pub(crate) fn disabled() -> Self {
        SpanGuard { id: 0 }
    }

    /// Attaches an attribute to this span (no-op on an inert guard).
    pub fn attr(&mut self, key: impl Into<Cow<'static, str>>, value: impl Into<AttrValue>) {
        if self.id == 0 {
            return;
        }
        let id = self.id;
        let key = key.into();
        let value = value.into();
        let _ = BUFFER.try_with(|cell| {
            let mut buffer = cell.borrow_mut();
            if let Some(open) = buffer.open.iter_mut().rev().find(|open| open.id == id) {
                open.attrs.push((key, value));
            }
        });
    }

    /// This span's identity, for cross-thread adoption via [`task`]. `None`
    /// on an inert guard.
    pub fn id(&self) -> Option<SpanId> {
        (self.id != 0).then_some(SpanId(self.id))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id != 0 {
            close_span(self.id);
        }
    }
}

/// A pending instant event; created by [`event`](crate::event). Attributes
/// chain with [`Event::attr`]; the event is recorded when the value drops —
/// usually immediately, at the end of the expression statement.
pub struct Event {
    pending: Option<Record>,
}

impl Event {
    pub(crate) fn disabled() -> Self {
        Event { pending: None }
    }

    /// Attaches an attribute to the pending event.
    pub fn attr(mut self, key: impl Into<Cow<'static, str>>, value: impl Into<AttrValue>) -> Self {
        if let Some(record) = &mut self.pending {
            record.attrs.push((key.into(), value.into()));
        }
        self
    }
}

impl Drop for Event {
    fn drop(&mut self) {
        let Some(record) = self.pending.take() else {
            return;
        };
        let _ = BUFFER.try_with(|cell| {
            let mut buffer = cell.borrow_mut();
            buffer.records.push(record);
            if buffer.open.is_empty() {
                publish_records(&mut buffer.records);
            }
        });
    }
}

pub(crate) fn open_event(name: Cow<'static, str>) -> Event {
    BUFFER
        .try_with(|cell| {
            let mut buffer = cell.borrow_mut();
            let parent = buffer
                .open
                .last()
                .map(|open| open.id)
                .unwrap_or(buffer.task_parent);
            let seq = buffer.next_seq;
            buffer.next_seq += 1;
            let task = buffer.task.clone();
            Event {
                pending: Some(Record {
                    name,
                    task,
                    seq,
                    id: 0,
                    parent,
                    start_ns: now_ns(),
                    dur_ns: None,
                    attrs: Vec::new(),
                }),
            }
        })
        .unwrap_or(Event { pending: None })
}

/// Labels this thread's records and adopts a parent span from another
/// thread, until the returned guard drops. Worker threads call this first:
///
/// ```
/// # tmr_trace::configure(tmr_trace::TraceConfig::memory());
/// let root = tmr_trace::span("campaign");
/// let parent = tmr_trace::current_span();
/// std::thread::scope(|scope| {
///     scope.spawn(move || {
///         let _task = tmr_trace::task("shard-00", parent);
///         let _span = tmr_trace::span("campaign.shard");
///     });
/// });
/// # drop(root);
/// # tmr_trace::configure(tmr_trace::TraceConfig::off());
/// ```
///
/// Concurrent workers must use distinct labels — the label (with the
/// per-thread sequence number) is the deterministic merge key.
pub fn task(label: impl Into<String>, parent: Option<SpanId>) -> TaskGuard {
    if !crate::enabled() {
        return TaskGuard { prev: None };
    }
    let label: Arc<str> = Arc::from(label.into());
    BUFFER
        .try_with(|cell| {
            let mut buffer = cell.borrow_mut();
            publish_records(&mut buffer.records);
            let prev_task = std::mem::replace(&mut buffer.task, label);
            let prev_parent = std::mem::replace(
                &mut buffer.task_parent,
                parent.map(|span| span.0).unwrap_or(0),
            );
            TaskGuard {
                prev: Some((prev_task, prev_parent)),
            }
        })
        .unwrap_or(TaskGuard { prev: None })
}

/// RAII guard restoring the thread's previous task label; created by
/// [`task`]. Publishes the task's records when dropped.
#[must_use = "dropping the guard ends the task"]
pub struct TaskGuard {
    prev: Option<(Arc<str>, u64)>,
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        let Some((task, parent)) = self.prev.take() else {
            return;
        };
        let _ = BUFFER.try_with(|cell| {
            let mut buffer = cell.borrow_mut();
            publish_records(&mut buffer.records);
            buffer.task = task;
            buffer.task_parent = parent;
        });
    }
}
