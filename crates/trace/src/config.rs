//! Tracer configuration: sink selection and output path, from the
//! environment (`TMR_TRACE`, `TMR_TRACE_FILE`) or programmatically.

use std::path::PathBuf;

/// Where rendered trace output goes on [`flush`](crate::flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Tracing disabled; instrumentation is a single atomic branch.
    Off,
    /// Indented span tree plus counters on stderr.
    Human,
    /// One JSON object per record, to a `.jsonl` file.
    Jsonl,
    /// Chrome `trace_event` JSON, loadable in Perfetto / `chrome://tracing`.
    Chrome,
    /// Records retained in memory for [`drain_tree`](crate::drain_tree);
    /// used by tests and embedding tools.
    Memory,
}

/// Programmatic tracer configuration. Install with
/// [`configure`](crate::configure), or let the first instrumentation call
/// read [`TraceConfig::from_env`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    sink: Sink,
    file: Option<PathBuf>,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig {
            sink: Sink::Off,
            file: None,
        }
    }

    /// Human-readable stderr output.
    pub fn human() -> Self {
        TraceConfig {
            sink: Sink::Human,
            file: None,
        }
    }

    /// JSONL event-log output.
    pub fn jsonl() -> Self {
        TraceConfig {
            sink: Sink::Jsonl,
            file: None,
        }
    }

    /// Chrome `trace_event` output.
    pub fn chrome() -> Self {
        TraceConfig {
            sink: Sink::Chrome,
            file: None,
        }
    }

    /// In-memory collection for [`drain_tree`](crate::drain_tree).
    pub fn memory() -> Self {
        TraceConfig {
            sink: Sink::Memory,
            file: None,
        }
    }

    /// Reads `TMR_TRACE` (`off|human|jsonl|chrome|memory`; unset, empty or
    /// unknown values mean off) and `TMR_TRACE_FILE`.
    pub fn from_env() -> Self {
        let sink = match std::env::var("TMR_TRACE").as_deref() {
            Ok("human") => Sink::Human,
            Ok("jsonl") => Sink::Jsonl,
            Ok("chrome") => Sink::Chrome,
            Ok("memory") => Sink::Memory,
            _ => Sink::Off,
        };
        let file = std::env::var_os("TMR_TRACE_FILE")
            .filter(|path| !path.is_empty())
            .map(PathBuf::from);
        TraceConfig { sink, file }
    }

    /// Overrides the output path of the file sinks.
    pub fn with_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.file = Some(path.into());
        self
    }

    /// The configured sink.
    pub fn sink(&self) -> Sink {
        self.sink
    }

    /// The output path for file sinks: the configured one, or the sink's
    /// default (`tmr_trace.json` for Chrome, `tmr_trace.jsonl` for JSONL).
    pub fn file_or_default(&self) -> PathBuf {
        if let Some(path) = &self.file {
            return path.clone();
        }
        match self.sink {
            Sink::Jsonl => PathBuf::from("tmr_trace.jsonl"),
            _ => PathBuf::from("tmr_trace.json"),
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_with_sinkwise_file_names() {
        assert_eq!(TraceConfig::default().sink(), Sink::Off);
        assert_eq!(
            TraceConfig::chrome().file_or_default(),
            PathBuf::from("tmr_trace.json")
        );
        assert_eq!(
            TraceConfig::jsonl().file_or_default(),
            PathBuf::from("tmr_trace.jsonl")
        );
        assert_eq!(
            TraceConfig::chrome()
                .with_file("/tmp/t.json")
                .file_or_default(),
            PathBuf::from("/tmp/t.json")
        );
    }
}
