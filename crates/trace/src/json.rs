//! Minimal JSON helpers: string escaping for the sinks and a recursive
//! descent validator used by tests and the `trace_check` CI gate to assert
//! emitted documents are well-formed without a JSON dependency.

/// Escapes `text` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

/// Validates that `text` is one complete, well-formed JSON value. Returns
/// the byte offset and a message on the first error.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> String {
    format!("{what} at byte {pos}")
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(_) => Err(fail(*pos, "unexpected character")),
        None => Err(fail(*pos, "unexpected end of input")),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, expected: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(expected) {
        *pos += expected.len();
        Ok(())
    } else {
        Err(fail(*pos, "malformed literal"))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(fail(*pos, "expected object key"));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(fail(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected ',' or '}'")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected ',' or ']'")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&byte) = bytes.get(*pos) {
        match byte {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).is_some_and(|byte| byte.is_ascii_hexdigit()) {
                                return Err(fail(*pos, "bad \\u escape"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(fail(*pos, "bad escape")),
                }
            }
            byte if byte < 0x20 => return Err(fail(*pos, "control character in string")),
            _ => *pos += 1,
        }
    }
    Err(fail(*pos, "unterminated string"))
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while bytes.get(*pos).is_some_and(|byte| byte.is_ascii_digit()) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(bytes, pos) {
        return Err(fail(start, "malformed number"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(fail(*pos, "malformed fraction"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(fail(*pos, "malformed exponent"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for text in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"c\nd"}],"e":true}"#,
            r#"  {"traceEvents":[{"ph":"X","ts":0.5,"dur":1.25}]} "#,
        ] {
            assert_eq!(validate(text), Ok(()), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,]", "{\"a\":}", "01x", "\"abc", "{}extra"] {
            assert!(validate(text).is_err(), "{text}");
        }
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), r#""a\"b\\c\nd\u0001""#);
        assert_eq!(validate(&escape("any\ntext\u{7}")), Ok(()));
    }
}
