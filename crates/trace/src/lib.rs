//! # tmr-trace
//!
//! Dependency-free structured instrumentation for the `tmr-fpga` workspace:
//! hierarchical spans with monotonic timings, counters and events, recorded
//! into per-thread buffers and merged deterministically, with sinks for
//! human-readable stderr, JSONL event logs and Chrome `trace_event` JSON
//! (loadable in Perfetto / `chrome://tracing`).
//!
//! The container this workspace builds in is offline, so this crate stands in
//! for the usual `tracing` ecosystem with only `std`.
//!
//! ## The disabled path is one atomic branch
//!
//! Tracing is **off by default**. Every instrumentation entry point —
//! [`span`], [`event`], [`counter_add`], [`attr_current`] — starts with a
//! single relaxed [`std::sync::atomic::AtomicU8`] load and returns
//! immediately when tracing is off: no allocation, no lock, no clock read.
//! Campaign results are bit-identical with tracing on, off, or at any sink —
//! instrumentation only ever *observes*.
//!
//! ## Configuration
//!
//! The tracer is process-global. It initializes lazily from the environment
//! (`TMR_TRACE=off|human|jsonl|chrome` plus `TMR_TRACE_FILE=<path>`) on the
//! first instrumentation call, or explicitly through
//! [`configure`] / [`TraceConfig`] (the facade's `FlowBuilder::trace` and
//! `CampaignBuilder::trace` forward here).
//!
//! ## Deterministic merge
//!
//! Every thread records into its own buffer; records carry a *task label*
//! (e.g. `shard-03`, installed with [`task`] when a worker thread adopts a
//! parent span from the spawning thread) and a per-thread sequence number.
//! Merging sorts by `(task, seq)`, so the reconstructed span tree depends
//! only on what was traced, never on the thread schedule — the property the
//! crate's proptests pin.
//!
//! ```
//! use tmr_trace::{configure, drain_tree, span, TraceConfig};
//!
//! configure(TraceConfig::memory());
//! {
//!     let mut outer = span("flow");
//!     outer.attr("design", "fir");
//!     let _inner = span("synth");
//! }
//! let tree = drain_tree();
//! assert_eq!(tree.roots[0].name, "flow");
//! assert_eq!(tree.roots[0].children[0].name, "synth");
//! configure(TraceConfig::off());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attr;
mod config;
// The JSON module is the workspace-shared one that lives in `tmr-core`
// (`crates/core/src/json.rs`). `tmr-core` depends on this crate, so the file
// is compiled into both via `#[path]` instead of a dependency edge — it is
// deliberately self-contained (std only, no doctests).
#[path = "../../core/src/json.rs"]
pub mod json;
mod record;
mod sink;
mod tree;

pub use attr::AttrValue;
pub use config::{Sink, TraceConfig};
pub use record::{current_span, task, Event, SpanGuard, SpanId, TaskGuard};
pub use tree::{TraceNode, TraceTree};

use record::Record;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// The one-branch fast path: 0 = not yet initialized from the environment,
/// 1 = tracing off, 2 = tracing on.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Everything behind the fast path, created on first (enabled) use.
struct Globals {
    config: Mutex<TraceConfig>,
    /// Records published by finished tasks/threads, awaiting a flush.
    records: Mutex<Vec<Record>>,
    /// The metrics registry: named monotonic counters.
    counters: Mutex<BTreeMap<String, u64>>,
    /// Monotonic origin of every timestamp in this process.
    epoch: Instant,
}

fn globals() -> &'static Globals {
    static GLOBALS: OnceLock<Globals> = OnceLock::new();
    GLOBALS.get_or_init(|| Globals {
        config: Mutex::new(TraceConfig::off()),
        records: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        epoch: Instant::now(),
    })
}

/// Nanoseconds since the process trace epoch (monotonic).
pub(crate) fn now_ns() -> u64 {
    globals().epoch.elapsed().as_nanos() as u64
}

pub(crate) fn publish_records(records: &mut Vec<Record>) {
    if records.is_empty() {
        return;
    }
    globals()
        .records
        .lock()
        .expect("trace record store poisoned")
        .append(records);
}

/// Whether tracing is currently enabled. This is the fast path every
/// instrumentation site branches on: one relaxed atomic load (plus a one-time
/// environment lookup on the very first call of the process).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let config = TraceConfig::from_env();
    configure(config);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Installs a process-global trace configuration, replacing the current one
/// (and pre-empting environment initialization). Does not clear records
/// already collected.
pub fn configure(config: TraceConfig) {
    let on = config.sink() != Sink::Off;
    *globals().config.lock().expect("trace config poisoned") = config;
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// The currently installed configuration (the environment default if nothing
/// was configured yet).
pub fn config() -> TraceConfig {
    enabled(); // force lazy initialization so the answer is the effective one
    globals()
        .config
        .lock()
        .expect("trace config poisoned")
        .clone()
}

/// Opens a hierarchical span. The returned guard closes the span when
/// dropped; [`SpanGuard::attr`] attaches key/value attributes. A no-op (no
/// allocation, no clock read) when tracing is disabled.
pub fn span(name: impl Into<std::borrow::Cow<'static, str>>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    record::open_span(name.into())
}

/// Emits an instant event under the current span. Attach attributes by
/// chaining [`Event::attr`]; the event is recorded when the builder drops:
///
/// ```
/// # tmr_trace::configure(tmr_trace::TraceConfig::memory());
/// tmr_trace::event("route.iteration").attr("overused", 3u64);
/// # tmr_trace::configure(tmr_trace::TraceConfig::off());
/// ```
pub fn event(name: impl Into<std::borrow::Cow<'static, str>>) -> Event {
    if !enabled() {
        return Event::disabled();
    }
    record::open_event(name.into())
}

/// Attaches an attribute to the innermost span currently open on this
/// thread (a no-op when tracing is disabled or no span is open). This lets
/// code deep inside a traced computation annotate the span that wraps it —
/// e.g. a pipeline stage attaching artifact sizes to the cache span.
pub fn attr_current(key: impl Into<std::borrow::Cow<'static, str>>, value: impl Into<AttrValue>) {
    if !enabled() {
        return;
    }
    record::attr_innermost(key.into(), value.into());
}

/// Adds to a named monotonic counter in the process-global metrics registry
/// (a no-op when tracing is disabled). Counters are included in every sink's
/// output and in [`drain_tree`] snapshots.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut counters = globals().counters.lock().expect("trace counters poisoned");
    *counters.entry(name.to_string()).or_insert(0) += delta;
}

/// A snapshot of the metrics registry, sorted by counter name.
pub fn metrics_snapshot() -> Vec<(String, u64)> {
    globals()
        .counters
        .lock()
        .expect("trace counters poisoned")
        .iter()
        .map(|(name, &value)| (name.clone(), value))
        .collect()
}

/// Takes every published record (after publishing the calling thread's
/// buffer) plus the counter registry, leaving both empty. Records come back
/// sorted by `(task, seq)` — the deterministic merge order.
fn take_records() -> (Vec<Record>, Vec<(String, u64)>) {
    record::publish_current_thread();
    let mut records = std::mem::take(
        &mut *globals()
            .records
            .lock()
            .expect("trace record store poisoned"),
    );
    records.sort_by(|a, b| (&*a.task, a.seq).cmp(&(&*b.task, b.seq)));
    let counters =
        std::mem::take(&mut *globals().counters.lock().expect("trace counters poisoned"));
    (records, counters.into_iter().collect())
}

/// Merges everything recorded so far into a [`TraceTree`] and clears the
/// collector (records *and* counters). This is the programmatic sink used by
/// tests and the [`Sink::Memory`] configuration.
pub fn drain_tree() -> TraceTree {
    let (records, counters) = take_records();
    TraceTree::build(records, counters)
}

/// Renders everything recorded so far to the configured sink and clears the
/// collector:
///
/// * [`Sink::Human`] — an indented span tree plus the counter registry, on
///   stderr;
/// * [`Sink::Jsonl`] — one JSON object per record (plus a final `metrics`
///   line), written to `TMR_TRACE_FILE` or `tmr_trace.jsonl`;
/// * [`Sink::Chrome`] — a Chrome `trace_event` document loadable in
///   Perfetto, written to `TMR_TRACE_FILE` or `tmr_trace.json`;
/// * [`Sink::Memory`] — records are retained for [`drain_tree`];
/// * [`Sink::Off`] — records are discarded.
///
/// Returns the path written, for the file sinks. I/O errors are reported on
/// stderr and swallowed — tracing must never fail the traced program.
pub fn flush() -> Option<PathBuf> {
    let config = config();
    match config.sink() {
        Sink::Memory => return None,
        Sink::Off => {
            let _ = take_records();
            return None;
        }
        _ => {}
    }
    let (records, counters) = take_records();
    let (rendered, path) = match config.sink() {
        Sink::Human => {
            let tree = TraceTree::build(records, counters);
            eprint!("{}", sink::render_human(&tree));
            return None;
        }
        Sink::Jsonl => (
            sink::render_jsonl(&records, &counters),
            config.file_or_default(),
        ),
        Sink::Chrome => (
            sink::render_chrome(&records, &counters),
            config.file_or_default(),
        ),
        Sink::Off | Sink::Memory => unreachable!("handled above"),
    };
    match std::fs::write(&path, rendered) {
        Ok(()) => Some(path),
        Err(error) => {
            eprintln!("tmr-trace: cannot write {}: {error}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests that enable it must serialize.
    /// Acquiring the lock also drops anything a previous test left behind.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        configure(TraceConfig::memory());
        let _ = drain_tree();
        guard
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = lock();
        configure(TraceConfig::off());
        {
            let mut span = span("ignored");
            span.attr("key", 1u64);
            event("ignored.event").attr("k", true);
            counter_add("ignored.counter", 3);
        }
        configure(TraceConfig::memory());
        let tree = drain_tree();
        assert!(tree.roots.is_empty());
        assert!(tree.counters.is_empty());
        configure(TraceConfig::off());
    }

    #[test]
    fn spans_nest_and_carry_attrs() {
        let _guard = lock();
        configure(TraceConfig::memory());
        {
            let mut outer = span("outer");
            outer.attr("design", "fir");
            {
                let mut inner = span("inner");
                inner.attr("count", 7u64);
                event("tick").attr("at", 3u64);
            }
            attr_current("late", true);
        }
        counter_add("widgets", 2);
        counter_add("widgets", 3);
        let tree = drain_tree();
        assert_eq!(tree.roots.len(), 1);
        let outer = &tree.roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.attr("design").unwrap().to_string(), "fir");
        assert_eq!(outer.attr("late").unwrap().to_string(), "true");
        assert!(outer.dur_ns.is_some());
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.attr("count").unwrap().to_string(), "7");
        assert_eq!(inner.children[0].name, "tick");
        assert!(inner.children[0].dur_ns.is_none(), "events are instants");
        assert_eq!(tree.counters, vec![("widgets".to_string(), 5)]);
        configure(TraceConfig::off());
    }

    #[test]
    fn worker_tasks_adopt_parents_across_threads() {
        let _guard = lock();
        configure(TraceConfig::memory());
        {
            let root = span("campaign");
            let parent = current_span();
            std::thread::scope(|scope| {
                for index in 0..3 {
                    scope.spawn(move || {
                        let _task = task(format!("shard-{index:02}"), parent);
                        let mut shard = span("campaign.shard");
                        shard.attr("shard", index as u64);
                    });
                }
            });
            drop(root);
        }
        let tree = drain_tree();
        let root = &tree.roots[0];
        assert_eq!(root.name, "campaign");
        assert_eq!(root.children.len(), 3);
        // Children are merged by task label, not by thread-completion order.
        let tasks: Vec<&str> = root.children.iter().map(|c| c.task.as_str()).collect();
        assert_eq!(tasks, ["shard-00", "shard-01", "shard-02"]);
        configure(TraceConfig::off());
    }

    #[test]
    fn human_sink_flushes_to_stderr_without_files() {
        let _guard = lock();
        configure(TraceConfig::human());
        {
            let _span = span("only");
        }
        assert_eq!(flush(), None);
        configure(TraceConfig::off());
    }
}
