//! Renderers for the three output sinks: human-readable stderr, JSONL event
//! logs, and Chrome `trace_event` JSON (Perfetto / `chrome://tracing`).

use crate::attr::AttrValue;
use crate::json::escape;
use crate::record::Record;
use crate::tree::{TraceNode, TraceTree};
use std::fmt::Write as _;

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_attrs(attrs: &[(String, AttrValue)]) -> String {
    let mut out = String::new();
    for (key, value) in attrs {
        let _ = write!(out, " {key}={value}");
    }
    out
}

fn render_node(node: &TraceNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    match node.dur_ns {
        Some(dur) => {
            let _ = writeln!(
                out,
                "{} ({}){}",
                node.name,
                fmt_dur(dur),
                fmt_attrs(&node.attrs)
            );
        }
        None => {
            let _ = writeln!(out, "· {}{}", node.name, fmt_attrs(&node.attrs));
        }
    }
    for child in &node.children {
        render_node(child, depth + 1, out);
    }
}

/// The `Sink::Human` rendering: an indented span tree (durations and
/// attributes inline, events marked `·`) followed by the counter registry.
pub(crate) fn render_human(tree: &TraceTree) -> String {
    let mut out = String::from("trace:\n");
    for root in &tree.roots {
        render_node(root, 1, &mut out);
    }
    if !tree.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &tree.counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    out
}

fn attrs_json(attrs: &[(std::borrow::Cow<'static, str>, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (index, (key, value)) in attrs.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", escape(key), value.to_json());
    }
    out.push('}');
    out
}

/// The `Sink::Jsonl` rendering: one JSON object per record (spans carry
/// `dur_ns`, events don't), terminated by a `metrics` line with the counter
/// registry. Every line is independently parseable.
pub(crate) fn render_jsonl(records: &[Record], counters: &[(String, u64)]) -> String {
    let mut out = String::new();
    for record in records {
        let kind = if record.dur_ns.is_some() {
            "span"
        } else {
            "event"
        };
        let _ = write!(
            out,
            "{{\"type\":{},\"name\":{},\"task\":{},\"seq\":{},\"start_ns\":{}",
            escape(kind),
            escape(&record.name),
            escape(&record.task),
            record.seq,
            record.start_ns,
        );
        if let Some(dur) = record.dur_ns {
            let _ = write!(out, ",\"dur_ns\":{dur}");
        }
        let _ = writeln!(out, ",\"attrs\":{}}}", attrs_json(&record.attrs));
    }
    let mut metrics = String::from("{");
    for (index, (name, value)) in counters.iter().enumerate() {
        if index > 0 {
            metrics.push(',');
        }
        let _ = write!(metrics, "{}:{}", escape(name), value);
    }
    metrics.push('}');
    let _ = writeln!(out, "{{\"type\":\"metrics\",\"counters\":{metrics}}}");
    out
}

/// The `Sink::Chrome` rendering: a `trace_event` document. Spans become
/// complete (`"ph":"X"`) events, instants become `"ph":"i"`, each task label
/// becomes a named `tid` row, and counters are appended as `"ph":"C"`
/// samples — drop the file on <https://ui.perfetto.dev> to browse it.
pub(crate) fn render_chrome(records: &[Record], counters: &[(String, u64)]) -> String {
    // Stable tid per task label, in first-appearance order of the sorted
    // record stream (so numbering is deterministic too).
    let mut tids: Vec<&str> = Vec::new();
    for record in records {
        if !tids.iter().any(|task| *task == &*record.task) {
            tids.push(&record.task);
        }
    }
    let tid_of = |task: &str| tids.iter().position(|t| *t == task).unwrap_or(0);
    let mut events: Vec<String> = Vec::new();
    for (tid, task) in tids.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
            escape(task)
        ));
    }
    let mut last_ts = 0u64;
    for record in records {
        last_ts = last_ts.max(record.start_ns + record.dur_ns.unwrap_or(0));
        let ts = record.start_ns as f64 / 1e3;
        let tid = tid_of(&record.task);
        let args = attrs_json(&record.attrs);
        let event = match record.dur_ns {
            Some(dur) => format!(
                "{{\"name\":{},\"cat\":\"tmr\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                escape(&record.name),
                dur as f64 / 1e3,
            ),
            None => format!(
                "{{\"name\":{},\"cat\":\"tmr\",\"ph\":\"i\",\"ts\":{ts:.3},\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                escape(&record.name),
            ),
        };
        events.push(event);
    }
    for (name, value) in counters {
        events.push(format!(
            "{{\"name\":{},\"ph\":\"C\",\"ts\":{:.3},\"pid\":1,\"args\":{{\"value\":{value}}}}}",
            escape(name),
            last_ts as f64 / 1e3,
        ));
    }
    let mut out = String::from("{\"traceEvents\":[");
    for (index, event) in events.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(event);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use std::borrow::Cow;
    use std::sync::Arc;

    fn sample() -> Vec<Record> {
        let task: Arc<str> = Arc::from("main");
        vec![
            Record {
                name: Cow::Borrowed("flow"),
                task: task.clone(),
                seq: 0,
                id: 1,
                parent: 0,
                start_ns: 100,
                dur_ns: Some(5_000),
                attrs: vec![(Cow::Borrowed("design"), AttrValue::from("fir \"8\""))],
            },
            Record {
                name: Cow::Borrowed("cache.hit"),
                task,
                seq: 1,
                id: 0,
                parent: 1,
                start_ns: 400,
                dur_ns: None,
                attrs: vec![(Cow::Borrowed("stage"), AttrValue::from("route"))],
            },
        ]
    }

    #[test]
    fn chrome_sink_is_valid_json_with_complete_and_instant_events() {
        let rendered = render_chrome(&sample(), &[("faults".to_string(), 7)]);
        validate(&rendered).expect("chrome trace must be well-formed JSON");
        assert!(rendered.contains("\"traceEvents\""));
        assert!(rendered.contains("\"ph\":\"X\""));
        assert!(rendered.contains("\"ph\":\"i\""));
        assert!(rendered.contains("\"ph\":\"C\""));
        assert!(rendered.contains("\"thread_name\""));
    }

    #[test]
    fn jsonl_sink_emits_one_valid_object_per_line() {
        let rendered = render_jsonl(&sample(), &[("faults".to_string(), 7)]);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            validate(line).expect("every JSONL line must be valid JSON");
        }
        assert!(lines[0].contains("\"dur_ns\":5000"));
        assert!(!lines[1].contains("dur_ns"), "events have no duration");
        assert!(lines[2].contains("\"type\":\"metrics\""));
    }

    #[test]
    fn human_sink_indents_children_and_lists_counters() {
        let tree = TraceTree::build(sample(), vec![("faults".to_string(), 7)]);
        let rendered = render_human(&tree);
        assert!(rendered.contains("  flow (5.0"));
        assert!(rendered.contains("    · cache.hit stage=route"));
        assert!(rendered.contains("  faults = 7"));
    }
}
