//! Attribute values attached to spans and events.

use std::fmt;

/// A typed attribute value. Conversions exist from the primitive types the
/// instrumentation sites use, so call sites write `span.attr("faults", n)`
/// without ceremony.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A boolean flag.
    Bool(bool),
    /// An unsigned count or size.
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A rate or ratio.
    F64(f64),
    /// Free-form text.
    Str(String),
}

impl AttrValue {
    /// Renders the value as a JSON fragment (numbers bare, strings escaped,
    /// non-finite floats as `null` so the output stays valid JSON).
    pub fn to_json(&self) -> String {
        match self {
            AttrValue::Bool(value) => value.to_string(),
            AttrValue::U64(value) => value.to_string(),
            AttrValue::I64(value) => value.to_string(),
            AttrValue::F64(value) if value.is_finite() => format!("{value:?}"),
            AttrValue::F64(_) => "null".to_string(),
            AttrValue::Str(value) => crate::json::escape(value),
        }
    }

    /// The value as `u64`, when it is an unsigned count.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(value) => Some(*value),
            _ => None,
        }
    }

    /// The value as `f64`, when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::U64(value) => Some(*value as f64),
            AttrValue::I64(value) => Some(*value as f64),
            AttrValue::F64(value) => Some(*value),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Bool(value) => write!(f, "{value}"),
            AttrValue::U64(value) => write!(f, "{value}"),
            AttrValue::I64(value) => write!(f, "{value}"),
            AttrValue::F64(value) => write!(f, "{value:.3}"),
            AttrValue::Str(value) => write!(f, "{value}"),
        }
    }
}

impl From<bool> for AttrValue {
    fn from(value: bool) -> Self {
        AttrValue::Bool(value)
    }
}

impl From<u64> for AttrValue {
    fn from(value: u64) -> Self {
        AttrValue::U64(value)
    }
}

impl From<u32> for AttrValue {
    fn from(value: u32) -> Self {
        AttrValue::U64(value as u64)
    }
}

impl From<usize> for AttrValue {
    fn from(value: usize) -> Self {
        AttrValue::U64(value as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(value: i64) -> Self {
        AttrValue::I64(value)
    }
}

impl From<i32> for AttrValue {
    fn from(value: i32) -> Self {
        AttrValue::I64(value as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(value: f64) -> Self {
        AttrValue::F64(value)
    }
}

impl From<&str> for AttrValue {
    fn from(value: &str) -> Self {
        AttrValue::Str(value.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(value: String) -> Self {
        AttrValue::Str(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_keeps_types() {
        assert_eq!(AttrValue::from(3usize).to_json(), "3");
        assert_eq!(AttrValue::from(true).to_json(), "true");
        assert_eq!(AttrValue::from(-2i64).to_json(), "-2");
        assert_eq!(AttrValue::from(1.5).to_json(), "1.5");
        assert_eq!(AttrValue::from(f64::NAN).to_json(), "null");
        assert_eq!(AttrValue::from("a\"b").to_json(), "\"a\\\"b\"");
    }
}
