//! The deterministic-merge contract: concurrent per-thread span buffers
//! merge to the same tree regardless of shard count, thread interleaving, or
//! whether the work ran on threads at all.

use proptest::prelude::*;
use std::sync::Mutex;
use tmr_trace::{configure, current_span, drain_tree, span, task, TraceConfig};

/// The tracer is process-global; every test in this binary serializes on
/// this lock.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One shard's scripted work: open a `shard` span, then run `ops` — even
/// values record an event, odd values open (and close) a nested span.
fn run_shard(index: usize, ops: &[u8], jitter: u64) {
    let mut shard = span("shard");
    shard.attr("index", index);
    for (step, &op) in ops.iter().enumerate() {
        if jitter > 0 && (step as u64 + jitter).is_multiple_of(3) {
            // Perturb the interleaving, not the recorded content.
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_micros(jitter % 50));
        }
        if op % 2 == 0 {
            tmr_trace::event("tick").attr("op", op as u64);
        } else {
            let mut inner = span("work");
            inner.attr("op", op as u64);
        }
    }
}

/// Runs the whole workload and returns the merged tree's structure string.
/// `parallel` runs each shard on its own scoped thread (with per-run timing
/// `jitter`); otherwise shards run sequentially on the calling thread under
/// the same task labels.
fn run_workload(shards: &[Vec<u8>], parallel: bool, jitter: u64) -> String {
    configure(TraceConfig::memory());
    {
        let root = span("campaign");
        let parent = current_span();
        if parallel {
            std::thread::scope(|scope| {
                for (index, ops) in shards.iter().enumerate() {
                    scope.spawn(move || {
                        let _task = task(format!("shard-{index:02}"), parent);
                        run_shard(index, ops, jitter.wrapping_add(index as u64 * 7));
                    });
                }
            });
        } else {
            for (index, ops) in shards.iter().enumerate() {
                let _task = task(format!("shard-{index:02}"), parent);
                run_shard(index, ops, 0);
            }
        }
        drop(root);
    }
    let tree = drain_tree();
    configure(TraceConfig::off());
    tree.structure()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merged_tree_is_independent_of_interleaving(
        shards in prop::collection::vec(prop::collection::vec(0u8..8, 0..6), 1..7),
        jitter_a in 0u64..1000,
        jitter_b in 0u64..1000,
    ) {
        let _guard = lock();
        let sequential = run_workload(&shards, false, 0);
        let parallel_a = run_workload(&shards, true, jitter_a);
        let parallel_b = run_workload(&shards, true, jitter_b);
        prop_assert_eq!(&parallel_a, &sequential);
        prop_assert_eq!(&parallel_b, &sequential);
    }
}

#[test]
fn structure_shows_shards_in_label_order() {
    let _guard = lock();
    let shards = vec![vec![1u8], vec![2u8], vec![3u8]];
    let structure = run_workload(&shards, true, 123);
    assert_eq!(
        structure,
        "campaign[main](shard[shard-00](work[shard-00]) \
         shard[shard-01](tick[shard-01]) \
         shard[shard-02](work[shard-02]))"
    );
}
