//! The static fan-out cone index: precompiled reachability for incremental
//! fault re-simulation.
//!
//! A configuration upset perturbs a handful of cells and nets; everything the
//! perturbation can ever influence — across any number of clock cycles — is
//! the *transitive fan-out cone* of those seeds, following net → sink edges
//! and passing **through** flip-flops (a corrupted `D` input surfaces on `Q`
//! one cycle later, so registers do not stop the closure the way they stop
//! combinational levelization). Cells outside the cone provably carry their
//! fault-free values in every cycle of a faulty simulation, which is what
//! lets the compiled simulator re-evaluate only the cone and read everything
//! else from the cached golden run.
//!
//! [`FanoutIndex`] packs the netlist's sink relation into flat CSR arrays
//! once; [`FanoutIndex::cone`] then computes the closure of any seed set with
//! a single allocation-light breadth-first sweep, fast enough to run once per
//! 64-experiment word of a fault-injection campaign.

use crate::{CellId, NetDriver, NetId, NetSink, Netlist, PortId};

/// The transitive fan-out closure of a set of seed cells and nets.
///
/// Produced by [`FanoutIndex::cone`]. `cells` contains every cell (both
/// combinational and sequential) whose value can differ from the fault-free
/// run; `ports` contains every top-level output port that reads a net inside
/// the cone (or was seeded directly). Both lists are sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutCone {
    /// Cells reachable from the seeds (sorted by id).
    pub cells: Vec<CellId>,
    /// Output ports reading a cone net or seeded directly (sorted by id).
    pub ports: Vec<PortId>,
}

impl FanoutCone {
    /// Returns `true` if the cone contains no cells and no ports.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty() && self.ports.is_empty()
    }
}

/// A compiled, immutable index of the netlist's fan-out relation.
///
/// The index borrows nothing: it stores net/cell/port relations as flat
/// `u32` CSR arrays, so it can live inside long-lived compiled artifacts
/// (`tmr-sim`'s compiled netlist) and be shared across threads.
#[derive(Debug, Clone)]
pub struct FanoutIndex {
    /// CSR offsets into `net_cells`, one slot per net plus a tail sentinel.
    net_cells_start: Vec<u32>,
    /// Cell sinks of each net, grouped by net.
    net_cells: Vec<u32>,
    /// CSR offsets into `net_ports`, one slot per net plus a tail sentinel.
    net_ports_start: Vec<u32>,
    /// Output-port sinks of each net, grouped by net.
    net_ports: Vec<u32>,
    /// Output net of every cell.
    cell_output: Vec<u32>,
}

impl FanoutIndex {
    /// Builds the fan-out index of `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        let net_count = netlist.net_count();
        let mut cell_counts = vec![0u32; net_count + 1];
        let mut port_counts = vec![0u32; net_count + 1];
        for (id, net) in netlist.nets() {
            for sink in &net.sinks {
                match sink {
                    NetSink::CellPin { .. } => cell_counts[id.index() + 1] += 1,
                    NetSink::Output(_) => port_counts[id.index() + 1] += 1,
                }
            }
        }
        for i in 1..=net_count {
            cell_counts[i] += cell_counts[i - 1];
            port_counts[i] += port_counts[i - 1];
        }
        let mut net_cells = vec![0u32; cell_counts[net_count] as usize];
        let mut net_ports = vec![0u32; port_counts[net_count] as usize];
        let mut cell_cursor = cell_counts.clone();
        let mut port_cursor = port_counts.clone();
        for (id, net) in netlist.nets() {
            for sink in &net.sinks {
                match sink {
                    NetSink::CellPin { cell, .. } => {
                        let slot = &mut cell_cursor[id.index()];
                        net_cells[*slot as usize] = cell.index() as u32;
                        *slot += 1;
                    }
                    NetSink::Output(port) => {
                        let slot = &mut port_cursor[id.index()];
                        net_ports[*slot as usize] = port.index() as u32;
                        *slot += 1;
                    }
                }
            }
        }
        let cell_output = netlist
            .cells()
            .map(|(_, c)| c.output.index() as u32)
            .collect();
        Self {
            net_cells_start: cell_counts,
            net_cells,
            net_ports_start: port_counts,
            net_ports,
            cell_output,
        }
    }

    /// Number of nets the index was built over.
    pub fn net_count(&self) -> usize {
        self.net_cells_start.len() - 1
    }

    /// Number of cells the index was built over.
    pub fn cell_count(&self) -> usize {
        self.cell_output.len()
    }

    /// The cell sinks of `net`.
    fn cells_of(&self, net: usize) -> &[u32] {
        let start = self.net_cells_start[net] as usize;
        let end = self.net_cells_start[net + 1] as usize;
        &self.net_cells[start..end]
    }

    /// The cell sinks of `net` (by raw net index), as raw cell indices —
    /// the direct successor relation the compiled simulator derives its
    /// per-instruction wake levels (and its cone fingerprints) from.
    pub fn cell_sinks(&self, net: usize) -> &[u32] {
        self.cells_of(net)
    }

    /// The output-port sinks of `net`.
    fn ports_of(&self, net: usize) -> &[u32] {
        let start = self.net_ports_start[net] as usize;
        let end = self.net_ports_start[net + 1] as usize;
        &self.net_ports[start..end]
    }

    /// Computes the transitive fan-out closure of the given seed cells and
    /// seed nets.
    ///
    /// Seed cells enter the cone directly (their outputs may differ); seed
    /// nets contribute their *readers* — the stored value of a seed net is
    /// not itself considered faulty, which matches how read-side fault
    /// overlays (opens, corrupted nets) perturb consumers without changing
    /// the driver. The closure follows every net → sink edge and passes
    /// through flip-flops, so it is closed under multi-cycle propagation.
    pub fn cone(
        &self,
        seed_cells: impl IntoIterator<Item = CellId>,
        seed_nets: impl IntoIterator<Item = NetId>,
    ) -> FanoutCone {
        let mut in_cone = vec![false; self.cell_count()];
        let mut net_seen = vec![false; self.net_count()];
        let mut ports = Vec::new();
        let mut stack: Vec<u32> = Vec::new();

        let visit_net = |net: usize,
                         net_seen: &mut Vec<bool>,
                         in_cone: &mut Vec<bool>,
                         stack: &mut Vec<u32>,
                         ports: &mut Vec<PortId>| {
            if std::mem::replace(&mut net_seen[net], true) {
                return;
            }
            for &cell in self.cells_of(net) {
                if !std::mem::replace(&mut in_cone[cell as usize], true) {
                    stack.push(cell);
                }
            }
            for &port in self.ports_of(net) {
                ports.push(PortId::from_index(port as usize));
            }
        };

        for cell in seed_cells {
            if !std::mem::replace(&mut in_cone[cell.index()], true) {
                stack.push(cell.index() as u32);
            }
        }
        for net in seed_nets {
            visit_net(
                net.index(),
                &mut net_seen,
                &mut in_cone,
                &mut stack,
                &mut ports,
            );
        }
        while let Some(cell) = stack.pop() {
            let out = self.cell_output[cell as usize] as usize;
            visit_net(out, &mut net_seen, &mut in_cone, &mut stack, &mut ports);
        }

        let cells = in_cone
            .iter()
            .enumerate()
            .filter(|&(_, &inside)| inside)
            .map(|(i, _)| CellId::from_index(i))
            .collect();
        ports.sort_unstable();
        ports.dedup();
        FanoutCone { cells, ports }
    }
}

impl Netlist {
    /// Builds the [`FanoutIndex`] of this netlist. Convenience wrapper around
    /// [`FanoutIndex::new`].
    pub fn fanout_index(&self) -> FanoutIndex {
        FanoutIndex::new(self)
    }

    /// Returns the driver cell of `net`, if it is driven by a cell.
    pub fn net_driver_cell(&self, net: NetId) -> Option<CellId> {
        match self.net(net).driver {
            Some(NetDriver::Cell(cell)) => Some(cell),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, PortDir};

    /// q = reg((a & b) ^ c) with an extra side output on the AND, plus an
    /// unrelated buffer chain.
    fn sample() -> Netlist {
        let mut nl = Netlist::new("cone");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        let z = nl.add_net("z");
        nl.add_cell("u_and", CellKind::And2, vec![a, b], ab)
            .unwrap();
        nl.add_cell("u_xor", CellKind::Xor2, vec![ab, c], y)
            .unwrap();
        nl.add_cell("u_reg", CellKind::Dff { init: false }, vec![y], q)
            .unwrap();
        nl.add_cell("u_buf", CellKind::Buf, vec![d], z).unwrap();
        nl.add_output("ab", ab);
        nl.add_output("q", q);
        nl.add_output("z", z);
        nl
    }

    #[test]
    fn cone_from_a_net_reaches_through_registers() {
        let nl = sample();
        let index = nl.fanout_index();
        assert_eq!(index.cell_count(), nl.cell_count());
        assert_eq!(index.net_count(), nl.net_count());
        let a = nl.find_port("a", PortDir::Input).unwrap().1.net;
        let cone = index.cone([], [a]);
        let names: Vec<&str> = cone
            .cells
            .iter()
            .map(|&id| nl.cell(id).name.as_str())
            .collect();
        assert_eq!(names, ["u_and", "u_xor", "u_reg"]);
        // The cone crosses the register and picks up both downstream output
        // ports, but not the unrelated buffer's.
        let port_names: Vec<&str> = cone
            .ports
            .iter()
            .map(|&id| nl.port(id).name.as_str())
            .collect();
        assert_eq!(port_names, ["ab", "q"]);
    }

    #[test]
    fn cone_from_a_cell_excludes_the_cell_inputs() {
        let nl = sample();
        let index = nl.fanout_index();
        let xor = nl.find_cell("u_xor").unwrap().0;
        let cone = index.cone([xor], []);
        let names: Vec<&str> = cone
            .cells
            .iter()
            .map(|&id| nl.cell(id).name.as_str())
            .collect();
        assert_eq!(names, ["u_xor", "u_reg"]);
        assert_eq!(cone.ports.len(), 1, "only q is downstream of the XOR");
    }

    #[test]
    fn seed_net_readers_enter_but_driver_does_not() {
        let nl = sample();
        let index = nl.fanout_index();
        let ab = nl.find_cell("u_and").unwrap().1.output;
        let cone = index.cone([], [ab]);
        let names: Vec<&str> = cone
            .cells
            .iter()
            .map(|&id| nl.cell(id).name.as_str())
            .collect();
        // A corrupted net perturbs its readers, not its driver.
        assert_eq!(names, ["u_xor", "u_reg"]);
    }

    #[test]
    fn empty_seeds_give_an_empty_cone() {
        let nl = sample();
        let cone = nl.fanout_index().cone([], []);
        assert!(cone.is_empty());
    }

    #[test]
    fn feedback_loops_terminate() {
        // Accumulator: q = reg(q ^ a) — the cone of `a` must include the
        // whole loop exactly once.
        let mut nl = Netlist::new("acc");
        let a = nl.add_input("a");
        let sum = nl.add_net("sum");
        let q = nl.add_net("q");
        nl.add_cell("u_add", CellKind::Xor2, vec![a, q], sum)
            .unwrap();
        nl.add_cell("u_reg", CellKind::Dff { init: false }, vec![sum], q)
            .unwrap();
        nl.add_output("q", q);
        let cone = nl.fanout_index().cone([], [a]);
        assert_eq!(cone.cells.len(), 2);
        assert_eq!(cone.ports.len(), 1);
    }
}
