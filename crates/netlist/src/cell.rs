//! Logic cells: technology-independent gates, LUTs, flip-flops and I/O buffers.

use crate::{Domain, NetId};
use std::fmt;

/// The functional kind of a [`Cell`].
///
/// All kinds are single-output. Pin ordering conventions:
///
/// * [`CellKind::Mux2`]: inputs are `[a, b, sel]`; output is `a` when `sel = 0`
///   and `b` when `sel = 1`.
/// * [`CellKind::Maj3`]: inputs are `[a, b, c]`; output is the majority value —
///   the TMR voter function.
/// * [`CellKind::Lut`]: inputs are `[i0, i1, .. i{k-1}]`; bit `n` of `init` is
///   the output for the input assignment where `i0` is bit 0 of `n`, `i1` is
///   bit 1 of `n`, and so on.
/// * [`CellKind::Dff`]: the single input is `d`; the output is `q`. A single
///   implicit global clock drives all flip-flops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer, inputs `[a, b, sel]`.
    Mux2,
    /// 3-input majority gate (TMR voter), inputs `[a, b, c]`.
    Maj3,
    /// Constant logic 0 driver.
    Gnd,
    /// Constant logic 1 driver.
    Vcc,
    /// A `k`-input lookup table with truth table `init` (one bit per input
    /// assignment, LSB = all-zero assignment). `k` is between 1 and 6.
    Lut {
        /// Number of inputs (1..=6).
        k: u8,
        /// Truth table; only the low `2^k` bits are meaningful.
        init: u64,
    },
    /// D flip-flop on the implicit global clock, with power-up value `init`.
    Dff {
        /// Power-up / reset value.
        init: bool,
    },
    /// Input buffer connecting a top-level input port to the fabric.
    Ibuf,
    /// Output buffer connecting the fabric to a top-level output port.
    Obuf,
}

impl CellKind {
    /// Number of input pins this kind expects.
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Buf | CellKind::Not | CellKind::Ibuf | CellKind::Obuf => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2 | CellKind::Maj3 => 3,
            CellKind::Gnd | CellKind::Vcc => 0,
            CellKind::Lut { k, .. } => k as usize,
            CellKind::Dff { .. } => 1,
        }
    }

    /// Returns `true` for sequential elements (flip-flops).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff { .. })
    }

    /// Returns `true` for constant drivers (`Gnd`, `Vcc`).
    pub fn is_constant(self) -> bool {
        matches!(self, CellKind::Gnd | CellKind::Vcc)
    }

    /// Returns `true` for LUT cells.
    pub fn is_lut(self) -> bool {
        matches!(self, CellKind::Lut { .. })
    }

    /// Returns `true` for I/O buffer cells.
    pub fn is_io(self) -> bool {
        matches!(self, CellKind::Ibuf | CellKind::Obuf)
    }

    /// Returns `true` for technology-independent gate kinds (everything that
    /// is neither a LUT, a flip-flop, a constant nor an I/O buffer).
    pub fn is_generic_gate(self) -> bool {
        !(self.is_lut() || self.is_sequential() || self.is_constant() || self.is_io())
    }

    /// Evaluates the combinational function of this kind on boolean inputs.
    ///
    /// Sequential kinds evaluate as a transparent buffer of their `d` input
    /// (useful for building expected next-state values); callers that need
    /// clocked semantics must handle [`CellKind::Dff`] themselves.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match [`CellKind::input_count`].
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "wrong input arity for {self:?}"
        );
        match self {
            CellKind::Buf | CellKind::Ibuf | CellKind::Obuf | CellKind::Dff { .. } => inputs[0],
            CellKind::Not => !inputs[0],
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::Maj3 => {
                (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) | (inputs[1] & inputs[2])
            }
            CellKind::Gnd => false,
            CellKind::Vcc => true,
            CellKind::Lut { k, init } => {
                let mut index = 0usize;
                for (bit, value) in inputs.iter().enumerate().take(k as usize) {
                    if *value {
                        index |= 1 << bit;
                    }
                }
                (init >> index) & 1 == 1
            }
        }
    }

    /// Returns the truth table of this kind as a LUT `init` word, if the kind
    /// is a combinational function of at most 6 inputs.
    ///
    /// This is the bridge used by technology mapping: any generic gate can be
    /// re-expressed as `CellKind::Lut { k: input_count, init }`.
    pub fn truth_table(self) -> Option<u64> {
        if self.is_sequential() || self.is_io() {
            return None;
        }
        let k = self.input_count();
        if k > 6 {
            return None;
        }
        let mut init = 0u64;
        for assignment in 0..(1usize << k) {
            let inputs: Vec<bool> = (0..k).map(|bit| (assignment >> bit) & 1 == 1).collect();
            if self.eval(&inputs) {
                init |= 1 << assignment;
            }
        }
        Some(init)
    }

    /// Short mnemonic used in reports and DOT labels.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Buf => "BUF",
            CellKind::Not => "NOT",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Maj3 => "MAJ3",
            CellKind::Gnd => "GND",
            CellKind::Vcc => "VCC",
            CellKind::Lut { .. } => "LUT",
            CellKind::Dff { .. } => "DFF",
            CellKind::Ibuf => "IBUF",
            CellKind::Obuf => "OBUF",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Lut { k, init } => write!(f, "LUT{k}(0x{init:x})"),
            CellKind::Dff { init } => write!(f, "DFF(init={})", u8::from(*init)),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// A single-output logic cell instance inside a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance name (unique within the netlist by construction helpers, but
    /// uniqueness is not enforced structurally).
    pub name: String,
    /// Functional kind.
    pub kind: CellKind,
    /// TMR redundant domain this cell belongs to.
    pub domain: Domain,
    /// Input nets, one per input pin, in the pin order defined by `kind`.
    pub inputs: Vec<NetId>,
    /// The net driven by this cell's output pin.
    pub output: NetId,
}

impl Cell {
    /// Returns the net connected to input pin `pin`, if any.
    pub fn input(&self, pin: usize) -> Option<NetId> {
        self.inputs.get(pin).copied()
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.kind, self.name, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(CellKind::And2.input_count(), 2);
        assert_eq!(CellKind::Maj3.input_count(), 3);
        assert_eq!(CellKind::Gnd.input_count(), 0);
        assert_eq!(CellKind::Lut { k: 4, init: 0 }.input_count(), 4);
        assert_eq!(CellKind::Dff { init: false }.input_count(), 1);
    }

    #[test]
    fn eval_basic_gates() {
        assert!(CellKind::And2.eval(&[true, true]));
        assert!(!CellKind::And2.eval(&[true, false]));
        assert!(CellKind::Nor2.eval(&[false, false]));
        assert!(CellKind::Xor2.eval(&[true, false]));
        assert!(!CellKind::Xnor2.eval(&[true, false]));
        assert!(CellKind::Not.eval(&[false]));
        assert!(!CellKind::Gnd.eval(&[]));
        assert!(CellKind::Vcc.eval(&[]));
    }

    #[test]
    fn eval_mux_and_majority() {
        assert!(!CellKind::Mux2.eval(&[false, true, false]));
        assert!(CellKind::Mux2.eval(&[false, true, true]));
        assert!(CellKind::Maj3.eval(&[true, true, false]));
        assert!(!CellKind::Maj3.eval(&[true, false, false]));
        assert!(CellKind::Maj3.eval(&[true, true, true]));
    }

    #[test]
    fn eval_lut_matches_init_bits() {
        // LUT2 implementing XOR: init = 0b0110.
        let lut = CellKind::Lut { k: 2, init: 0b0110 };
        assert!(!lut.eval(&[false, false]));
        assert!(lut.eval(&[true, false]));
        assert!(lut.eval(&[false, true]));
        assert!(!lut.eval(&[true, true]));
    }

    #[test]
    fn truth_table_round_trips_through_lut() {
        for kind in [
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Maj3,
            CellKind::Not,
            CellKind::Buf,
        ] {
            let k = kind.input_count() as u8;
            let init = kind.truth_table().expect("combinational");
            let lut = CellKind::Lut { k, init };
            for assignment in 0..(1usize << k) {
                let inputs: Vec<bool> = (0..k as usize)
                    .map(|bit| (assignment >> bit) & 1 == 1)
                    .collect();
                assert_eq!(
                    lut.eval(&inputs),
                    kind.eval(&inputs),
                    "{kind:?} {assignment}"
                );
            }
        }
    }

    #[test]
    fn truth_table_is_none_for_sequential_and_io() {
        assert!(CellKind::Dff { init: false }.truth_table().is_none());
        // I/O buffers are excluded even though they are logically buffers,
        // because they must stay at the device boundary during mapping.
        assert!(CellKind::Ibuf.truth_table().is_none());
        assert!(CellKind::Obuf.truth_table().is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(CellKind::And2.to_string(), "AND2");
        assert_eq!(
            CellKind::Lut { k: 4, init: 0x8000 }.to_string(),
            "LUT4(0x8000)"
        );
        assert_eq!(CellKind::Dff { init: true }.to_string(), "DFF(init=1)");
    }
}
