//! Error type for netlist construction and validation.

use crate::{CellId, NetId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell was created with the wrong number of input nets for its kind.
    ArityMismatch {
        /// Offending cell name.
        cell: String,
        /// Expected input count for the cell kind.
        expected: usize,
        /// Actual number of input nets provided.
        actual: usize,
    },
    /// A net id did not refer to an existing net.
    UnknownNet(NetId),
    /// A cell id did not refer to an existing cell.
    UnknownCell(CellId),
    /// A net already has a driver and a second driver was attached.
    MultipleDrivers {
        /// The multiply-driven net.
        net: NetId,
        /// Name of the net, for diagnostics.
        name: String,
    },
    /// Structural validation failed; the report lists every violation found.
    Invalid(Vec<String>),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                cell,
                expected,
                actual,
            } => write!(
                f,
                "cell `{cell}` expects {expected} input nets but {actual} were provided"
            ),
            NetlistError::UnknownNet(net) => write!(f, "unknown net id {net}"),
            NetlistError::UnknownCell(cell) => write!(f, "unknown cell id {cell}"),
            NetlistError::MultipleDrivers { net, name } => {
                write!(f, "net {net} (`{name}`) already has a driver")
            }
            NetlistError::Invalid(violations) => {
                write!(
                    f,
                    "netlist validation failed with {} violation(s): ",
                    violations.len()
                )?;
                f.write_str(&violations.join("; "))
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let err = NetlistError::ArityMismatch {
            cell: "u1".into(),
            expected: 2,
            actual: 3,
        };
        assert!(err.to_string().contains("u1"));
        assert!(err.to_string().contains('2'));

        let err = NetlistError::Invalid(vec!["a".into(), "b".into()]);
        assert!(err.to_string().contains("2 violation"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NetlistError>();
    }
}
