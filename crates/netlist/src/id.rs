//! Typed index newtypes identifying netlist objects.
//!
//! Cells, nets and ports are stored in dense vectors inside a [`crate::Netlist`];
//! these newtypes ([`CellId`], [`NetId`], [`PortId`]) keep the indices from
//! being confused with one another (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw dense index.
            pub fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "index overflow");
                Self(index as u32)
            }

            /// Returns the raw dense index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::Cell`] inside a [`crate::Netlist`].
    CellId,
    "c"
);
define_id!(
    /// Identifier of a [`crate::Net`] inside a [`crate::Netlist`].
    NetId,
    "n"
);
define_id!(
    /// Identifier of a top-level [`crate::Port`] of a [`crate::Netlist`].
    PortId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trips_index() {
        let id = CellId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(CellId::from_index(3).to_string(), "c3");
        assert_eq!(NetId::from_index(7).to_string(), "n7");
        assert_eq!(PortId::from_index(0).to_string(), "p0");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NetId::from_index(1));
        set.insert(NetId::from_index(1));
        set.insert(NetId::from_index(2));
        assert_eq!(set.len(), 2);
        assert!(NetId::from_index(1) < NetId::from_index(2));
    }
}
