//! TMR redundant-domain tags.

use std::fmt;

/// The TMR redundant domain a netlist object belongs to.
///
/// The DATE 2005 paper calls the three copies of the protected logic `tr0`,
/// `tr1` and `tr2`. Majority voters and the logic that merges the domains back
/// together are tagged [`Domain::Voter`]; logic that is not part of any TMR
/// structure (e.g. the unprotected baseline design, or test infrastructure) is
/// tagged [`Domain::None`].
///
/// A configuration upset in the routing that bridges nets from two *different*
/// redundant domains inside the same voter partition is exactly the failure
/// mode the paper studies, so this tag is carried by every cell and net from
/// word-level synthesis all the way down to routed wire segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Logic outside any TMR structure.
    #[default]
    None,
    /// Redundant copy 0.
    Tr0,
    /// Redundant copy 1.
    Tr1,
    /// Redundant copy 2.
    Tr2,
    /// Majority-voter logic (receives inputs from all three domains).
    Voter,
}

impl Domain {
    /// The three redundant domains, in order.
    pub const REDUNDANT: [Domain; 3] = [Domain::Tr0, Domain::Tr1, Domain::Tr2];

    /// Returns the redundant domain with the given index (0, 1 or 2).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    pub fn redundant(index: usize) -> Self {
        Self::REDUNDANT[index]
    }

    /// Returns `Some(i)` if this is redundant domain `i`.
    pub fn redundant_index(self) -> Option<usize> {
        match self {
            Domain::Tr0 => Some(0),
            Domain::Tr1 => Some(1),
            Domain::Tr2 => Some(2),
            _ => None,
        }
    }

    /// Returns `true` if this is one of the three redundant copies.
    pub fn is_redundant(self) -> bool {
        self.redundant_index().is_some()
    }

    /// Returns `true` if a short between a net in domain `self` and a net in
    /// domain `other` crosses two *distinct* redundant domains — the situation
    /// that can defeat a TMR voter (upset "b" in Fig. 1 of the paper).
    pub fn crosses(self, other: Domain) -> bool {
        match (self.redundant_index(), other.redundant_index()) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }

    /// Short lowercase label used in reports and DOT output.
    pub fn label(self) -> &'static str {
        match self {
            Domain::None => "none",
            Domain::Tr0 => "tr0",
            Domain::Tr1 => "tr1",
            Domain::Tr2 => "tr2",
            Domain::Voter => "voter",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundant_round_trip() {
        for i in 0..3 {
            assert_eq!(Domain::redundant(i).redundant_index(), Some(i));
            assert!(Domain::redundant(i).is_redundant());
        }
        assert_eq!(Domain::None.redundant_index(), None);
        assert_eq!(Domain::Voter.redundant_index(), None);
    }

    #[test]
    fn crossing_requires_two_distinct_redundant_domains() {
        assert!(Domain::Tr0.crosses(Domain::Tr1));
        assert!(Domain::Tr2.crosses(Domain::Tr0));
        assert!(!Domain::Tr1.crosses(Domain::Tr1));
        assert!(!Domain::Tr0.crosses(Domain::Voter));
        assert!(!Domain::None.crosses(Domain::Tr2));
        assert!(!Domain::None.crosses(Domain::None));
    }

    #[test]
    fn default_is_none() {
        assert_eq!(Domain::default(), Domain::None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Domain::Tr0.to_string(), "tr0");
        assert_eq!(Domain::Voter.to_string(), "voter");
        assert_eq!(Domain::None.to_string(), "none");
    }
}
