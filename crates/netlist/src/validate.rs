//! Structural validation of netlists.

use crate::{NetDriver, NetSink, Netlist, NetlistError, PortDir, Result};

/// A structural-validation report.
///
/// `violations` lists human-readable descriptions of every problem found;
/// `warnings` lists non-fatal oddities (dangling nets, unused inputs).
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Fatal structural problems (undriven nets with sinks, bad references,
    /// combinational loops, arity mismatches).
    pub violations: Vec<String>,
    /// Non-fatal observations.
    pub warnings: Vec<String>,
}

impl ValidationReport {
    /// Returns `true` if no fatal violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl Netlist {
    /// Runs all structural checks, returning the full report.
    pub fn check(&self) -> ValidationReport {
        let mut report = ValidationReport::default();

        // Pin arity and reference consistency.
        for (id, cell) in self.cells() {
            if cell.inputs.len() != cell.kind.input_count() {
                report.violations.push(format!(
                    "cell {id} `{}` has {} input nets, kind {} expects {}",
                    cell.name,
                    cell.inputs.len(),
                    cell.kind,
                    cell.kind.input_count()
                ));
            }
            for (pin, &net) in cell.inputs.iter().enumerate() {
                if net.index() >= self.net_count() {
                    report.violations.push(format!(
                        "cell {id} `{}` pin {pin} references unknown net {net}",
                        cell.name
                    ));
                    continue;
                }
                let has_sink = self.net(net).sinks.iter().any(
                    |s| matches!(s, NetSink::CellPin { cell, pin: p } if *cell == id && *p == pin),
                );
                if !has_sink {
                    report.violations.push(format!(
                        "net {net} `{}` is missing the back-reference to cell {id} pin {pin}",
                        self.net(net).name
                    ));
                }
            }
            match self.net(cell.output).driver {
                Some(NetDriver::Cell(c)) if c == id => {}
                other => report.violations.push(format!(
                    "cell {id} `{}` drives net {} but the net records driver {other:?}",
                    cell.name, cell.output
                )),
            }
        }

        // Net-side consistency.
        for (id, net) in self.nets() {
            match net.driver {
                None => {
                    if !net.sinks.is_empty() {
                        report.violations.push(format!(
                            "net {id} `{}` has {} sink(s) but no driver",
                            net.name,
                            net.sinks.len()
                        ));
                    } else {
                        report
                            .warnings
                            .push(format!("net {id} `{}` is completely unconnected", net.name));
                    }
                }
                Some(NetDriver::Cell(c)) => {
                    if c.index() >= self.cell_count() || self.cell(c).output != id {
                        report.violations.push(format!(
                            "net {id} `{}` claims driver cell {c} which does not drive it",
                            net.name
                        ));
                    }
                }
                Some(NetDriver::Input(p)) => {
                    if p.index() >= self.ports().count()
                        || self.port(p).dir != PortDir::Input
                        || self.port(p).net != id
                    {
                        report.violations.push(format!(
                            "net {id} `{}` claims driver port {p} which does not drive it",
                            net.name
                        ));
                    }
                }
            }
            if net.driver.is_some() && net.sinks.is_empty() {
                report.warnings.push(format!(
                    "net {id} `{}` is dangling (driven, never read)",
                    net.name
                ));
            }
        }

        // Combinational loops.
        if let Err(loop_) = self.levelize() {
            report.violations.push(format!(
                "combinational loop through {} cell(s): {}",
                loop_.cells.len(),
                loop_
                    .cells
                    .iter()
                    .take(8)
                    .map(|c| self.cell(*c).name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }

        report
    }

    /// Validates the netlist, returning an error listing every violation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] when [`Netlist::check`] finds at least
    /// one fatal violation.
    pub fn validate(&self) -> Result<()> {
        let report = self.check();
        if report.is_clean() {
            Ok(())
        } else {
            Err(NetlistError::Invalid(report.violations))
        }
    }
}

#[cfg(test)]
mod tests {

    use crate::{CellKind, Netlist};

    #[test]
    fn clean_netlist_validates() {
        let mut nl = Netlist::new("ok");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_cell("u", CellKind::Not, vec![a], y).unwrap();
        nl.add_output("y", y);
        assert!(nl.validate().is_ok());
        assert!(nl.check().warnings.is_empty());
    }

    #[test]
    fn undriven_net_with_sink_is_a_violation() {
        let mut nl = Netlist::new("bad");
        let floating = nl.add_net("floating");
        let y = nl.add_net("y");
        nl.add_cell("u", CellKind::Buf, vec![floating], y).unwrap();
        nl.add_output("y", y);
        let report = nl.check();
        assert!(!report.is_clean());
        assert!(report.violations[0].contains("no driver"));
        assert!(nl.validate().is_err());
    }

    #[test]
    fn dangling_net_is_only_a_warning() {
        let mut nl = Netlist::new("warn");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_cell("u", CellKind::Buf, vec![a], y).unwrap();
        // y never read
        let report = nl.check();
        assert!(report.is_clean());
        assert!(report.warnings.iter().any(|w| w.contains("dangling")));
    }

    #[test]
    fn combinational_loop_is_a_violation() {
        let mut nl = Netlist::new("loop");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_cell("u1", CellKind::Not, vec![y], x).unwrap();
        nl.add_cell("u2", CellKind::Not, vec![x], y).unwrap();
        nl.add_output("y", y);
        let report = nl.check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("combinational loop")));
    }
}
