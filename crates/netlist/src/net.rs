//! Nets: the wires connecting cell pins and top-level ports.

use crate::{CellId, Domain, PortId};
use std::fmt;

/// What drives a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetDriver {
    /// The net is driven by the output pin of a cell.
    Cell(CellId),
    /// The net is driven by a top-level input port.
    Input(PortId),
}

/// A consumer of a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetSink {
    /// Input pin `pin` of cell `cell`.
    CellPin {
        /// The consuming cell.
        cell: CellId,
        /// Zero-based input-pin index on that cell.
        pin: usize,
    },
    /// A top-level output port.
    Output(PortId),
}

/// A wire connecting one driver to zero or more sinks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Net {
    /// Net name (not required to be unique, but construction helpers keep it so).
    pub name: String,
    /// TMR redundant domain of the signal carried by this net.
    pub domain: Domain,
    /// The driver, if connected.
    pub driver: Option<NetDriver>,
    /// All sinks reading this net.
    pub sinks: Vec<NetSink>,
}

impl Net {
    /// Creates an unconnected net with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Returns `true` if this net has no sinks.
    pub fn is_dangling(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Returns `true` if this net has no driver.
    pub fn is_undriven(&self) -> bool {
        self.driver.is_none()
    }

    /// Fanout (number of sinks).
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net {} [{}] fanout={}",
            self.name,
            self.domain,
            self.fanout()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_net_is_unconnected() {
        let net = Net::new("foo");
        assert!(net.is_undriven());
        assert!(net.is_dangling());
        assert_eq!(net.fanout(), 0);
        assert_eq!(net.domain, Domain::None);
    }

    #[test]
    fn fanout_counts_sinks() {
        let mut net = Net::new("bar");
        net.sinks.push(NetSink::Output(PortId::from_index(0)));
        net.sinks.push(NetSink::CellPin {
            cell: CellId::from_index(1),
            pin: 0,
        });
        assert_eq!(net.fanout(), 2);
        assert!(!net.is_dangling());
    }
}
