//! Graph traversals: topological ordering, levelization, cones.

use crate::{CellId, CellKind, NetDriver, NetId, NetSink, Netlist};
use std::collections::{HashSet, VecDeque};

/// A combinational loop found during levelization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombLoop {
    /// Cells participating in the strongly-connected region (unordered).
    pub cells: Vec<CellId>,
}

/// Result of levelizing a netlist: a topological order of the combinational
/// cells plus the logic depth of every cell.
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Combinational cells in topological (fanin-before-fanout) order.
    /// Sequential cells are excluded: their outputs are treated as sources.
    pub order: Vec<CellId>,
    /// Logic level of every cell (index by `CellId::index`); sources are 0.
    /// Sequential cells have level 0.
    pub level: Vec<usize>,
    /// Maximum combinational depth (in cells) over the whole netlist.
    pub depth: usize,
}

impl Netlist {
    /// Computes a topological order of the combinational cells, treating
    /// flip-flop outputs, constants and top-level inputs as sources and
    /// flip-flop inputs and top-level outputs as sinks.
    ///
    /// # Errors
    ///
    /// Returns the set of cells involved in a combinational loop if one exists.
    pub fn levelize(&self) -> Result<Levelization, CombLoop> {
        let n = self.cell_count();
        let mut indegree = vec![0usize; n];
        let mut level = vec![0usize; n];

        // Combinational dependency: cell B depends on cell A if one of B's
        // input nets is driven by A and A is combinational.
        let comb_driver = |net: NetId| -> Option<CellId> {
            match self.net(net).driver {
                Some(NetDriver::Cell(c)) if !self.cell(c).kind.is_sequential() => Some(c),
                _ => None,
            }
        };

        for (id, cell) in self.cells() {
            if cell.kind.is_sequential() {
                continue;
            }
            let deps = cell
                .inputs
                .iter()
                .filter_map(|&net| comb_driver(net))
                .count();
            indegree[id.index()] = deps;
        }

        let mut queue: VecDeque<CellId> = self
            .cells()
            .filter(|(id, c)| !c.kind.is_sequential() && indegree[id.index()] == 0)
            .map(|(id, _)| id)
            .collect();

        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            let out_net = self.cell(id).output;
            for sink in &self.net(out_net).sinks {
                if let NetSink::CellPin { cell, .. } = sink {
                    let consumer = &self.cell(*cell);
                    if consumer.kind.is_sequential() {
                        continue;
                    }
                    let idx = cell.index();
                    level[idx] = level[idx].max(level[id.index()] + 1);
                    indegree[idx] -= 1;
                    if indegree[idx] == 0 {
                        queue.push_back(*cell);
                    }
                }
            }
        }

        let comb_total = self
            .cells()
            .filter(|(_, c)| !c.kind.is_sequential())
            .count();
        if order.len() != comb_total {
            let ordered: HashSet<CellId> = order.into_iter().collect();
            let cells = self
                .cells()
                .filter(|(id, c)| !c.kind.is_sequential() && !ordered.contains(id))
                .map(|(id, _)| id)
                .collect();
            return Err(CombLoop { cells });
        }

        let depth = level.iter().copied().max().unwrap_or(0);
        Ok(Levelization {
            order,
            level,
            depth,
        })
    }

    /// Returns the transitive fanin cone of `net`: every cell whose output can
    /// reach `net` through combinational logic, stopping at flip-flop outputs,
    /// constants and top-level inputs (the stop cells themselves are included).
    pub fn fanin_cone(&self, net: NetId) -> HashSet<CellId> {
        let mut seen: HashSet<CellId> = HashSet::new();
        let mut stack: Vec<NetId> = vec![net];
        let mut visited_nets: HashSet<NetId> = HashSet::new();
        while let Some(n) = stack.pop() {
            if !visited_nets.insert(n) {
                continue;
            }
            if let Some(NetDriver::Cell(c)) = self.net(n).driver {
                if seen.insert(c) {
                    let cell = self.cell(c);
                    if !cell.kind.is_sequential() && !cell.kind.is_constant() {
                        stack.extend(cell.inputs.iter().copied());
                    }
                }
            }
        }
        seen
    }

    /// Returns the transitive fanout cone of `net`: every cell reachable from
    /// `net` through combinational logic, stopping at (and including)
    /// flip-flops.
    pub fn fanout_cone(&self, net: NetId) -> HashSet<CellId> {
        let mut seen: HashSet<CellId> = HashSet::new();
        let mut stack: Vec<NetId> = vec![net];
        let mut visited_nets: HashSet<NetId> = HashSet::new();
        while let Some(n) = stack.pop() {
            if !visited_nets.insert(n) {
                continue;
            }
            for sink in &self.net(n).sinks {
                if let NetSink::CellPin { cell, .. } = sink {
                    if seen.insert(*cell) {
                        let c = self.cell(*cell);
                        if !c.kind.is_sequential() {
                            stack.push(c.output);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Estimates the critical-path length in "logic levels", counting LUTs and
    /// generic gates as one level each and ignoring I/O buffers.
    ///
    /// # Errors
    ///
    /// Returns the combinational loop if the netlist is cyclic.
    pub fn logic_depth(&self) -> Result<usize, CombLoop> {
        let lev = self.levelize()?;
        let depth = lev
            .order
            .iter()
            .filter(|id| {
                let k = self.cell(**id).kind;
                k.is_lut() || k.is_generic_gate()
            })
            .map(|id| lev.level[id.index()])
            .max()
            .unwrap_or(0);
        Ok(depth + 1)
    }

    /// Lists, for every flip-flop, whether it is part of a feedback loop
    /// (i.e. its output cone reaches its own input — "state-machine logic" in
    /// the paper's taxonomy) or pure throughput logic.
    pub fn feedback_registers(&self) -> Vec<(CellId, bool)> {
        self.sequential_cells()
            .into_iter()
            .map(|id| {
                let out = self.cell(id).output;
                let reachable = self.fanout_cone(out);
                let feeds_back = reachable.contains(&id)
                    || self
                        .cell(id)
                        .inputs
                        .iter()
                        .any(|&d| match self.net(d).driver {
                            Some(NetDriver::Cell(c)) => c == id,
                            _ => false,
                        });
                (id, feeds_back)
            })
            .collect()
    }
}

/// Marker trait check helper used in tests: the kinds considered sources.
#[allow(dead_code)]
fn is_source_kind(kind: CellKind) -> bool {
    kind.is_sequential() || kind.is_constant()
}

#[cfg(test)]
mod tests {

    use crate::{CellKind, Netlist};

    /// y = (a & b) ^ c, with a register on the output.
    fn sample() -> Netlist {
        let mut nl = Netlist::new("sample");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_cell("u_and", CellKind::And2, vec![a, b], ab)
            .unwrap();
        nl.add_cell("u_xor", CellKind::Xor2, vec![ab, c], y)
            .unwrap();
        nl.add_cell("u_reg", CellKind::Dff { init: false }, vec![y], q)
            .unwrap();
        nl.add_output("q", q);
        nl
    }

    #[test]
    fn levelize_orders_fanin_first() {
        let nl = sample();
        let lev = nl.levelize().unwrap();
        let and_id = nl.find_cell("u_and").unwrap().0;
        let xor_id = nl.find_cell("u_xor").unwrap().0;
        let and_pos = lev.order.iter().position(|&c| c == and_id).unwrap();
        let xor_pos = lev.order.iter().position(|&c| c == xor_id).unwrap();
        assert!(and_pos < xor_pos);
        assert_eq!(lev.level[and_id.index()], 0);
        assert_eq!(lev.level[xor_id.index()], 1);
        assert_eq!(lev.depth, 1);
    }

    #[test]
    fn logic_depth_counts_levels() {
        let nl = sample();
        assert_eq!(nl.logic_depth().unwrap(), 2);
    }

    #[test]
    fn detects_combinational_loop() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_cell("u1", CellKind::And2, vec![a, y], x).unwrap();
        nl.add_cell("u2", CellKind::Buf, vec![x], y).unwrap();
        nl.add_output("y", y);
        let err = nl.levelize().unwrap_err();
        assert_eq!(err.cells.len(), 2);
    }

    #[test]
    fn register_breaks_loop() {
        // Accumulator: q = reg(q + a) has a registered loop, not a comb loop.
        let mut nl = Netlist::new("acc");
        let a = nl.add_input("a");
        let sum = nl.add_net("sum");
        let q = nl.add_net("q");
        nl.add_cell("u_add", CellKind::Xor2, vec![a, q], sum)
            .unwrap();
        nl.add_cell("u_reg", CellKind::Dff { init: false }, vec![sum], q)
            .unwrap();
        nl.add_output("q", q);
        assert!(nl.levelize().is_ok());
        let fb = nl.feedback_registers();
        assert_eq!(fb.len(), 1);
        assert!(fb[0].1, "accumulator register must be flagged as feedback");
    }

    #[test]
    fn throughput_register_is_not_feedback() {
        let nl = sample();
        let fb = nl.feedback_registers();
        assert_eq!(fb.len(), 1);
        assert!(!fb[0].1);
    }

    #[test]
    fn fanin_cone_collects_drivers() {
        let nl = sample();
        let q_net = nl.find_port("q", crate::PortDir::Output).unwrap().1.net;
        let cone = nl.fanin_cone(q_net);
        // register only (cone stops at the register)
        assert!(cone.contains(&nl.find_cell("u_reg").unwrap().0));
        let reg_d = nl.cell(nl.find_cell("u_reg").unwrap().0).inputs[0];
        let cone = nl.fanin_cone(reg_d);
        assert!(cone.contains(&nl.find_cell("u_and").unwrap().0));
        assert!(cone.contains(&nl.find_cell("u_xor").unwrap().0));
    }

    #[test]
    fn fanout_cone_collects_consumers() {
        let nl = sample();
        let a_net = nl.find_port("a", crate::PortDir::Input).unwrap().1.net;
        let cone = nl.fanout_cone(a_net);
        assert!(cone.contains(&nl.find_cell("u_and").unwrap().0));
        assert!(cone.contains(&nl.find_cell("u_xor").unwrap().0));
        assert!(cone.contains(&nl.find_cell("u_reg").unwrap().0));
    }
}
