//! Top-level ports of a netlist.

use crate::{Domain, NetId};
use std::fmt;

/// Direction of a top-level [`Port`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Signal flows from the outside world into the netlist.
    Input,
    /// Signal flows from the netlist to the outside world.
    Output,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::Input => f.write_str("input"),
            PortDir::Output => f.write_str("output"),
        }
    }
}

/// A top-level port: a named, directed connection point bound to one net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name (unique within its direction by construction helpers).
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// The net attached to this port.
    pub net: NetId,
    /// TMR redundant domain (triplicated inputs/outputs carry the domain of
    /// the redundant copy they feed; voted outputs are [`Domain::Voter`]).
    pub domain: Domain,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.dir, self.name, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_direction_and_domain() {
        let port = Port {
            name: "din".to_string(),
            dir: PortDir::Input,
            net: NetId::from_index(0),
            domain: Domain::Tr1,
        };
        assert_eq!(port.to_string(), "input din [tr1]");
    }
}
