//! # tmr-netlist
//!
//! A flat, gate/LUT-level netlist intermediate representation used by the
//! `tmr-fpga` workspace, the reproduction of *"On the Optimal Design of Triple
//! Modular Redundancy Logic for SRAM-based FPGAs"* (DATE 2005).
//!
//! The IR is intentionally simple: a [`Netlist`] owns a set of [`Cell`]s
//! (single-output logic primitives such as gates, LUTs and flip-flops), a set
//! of [`Net`]s connecting them, and a set of top-level [`Port`]s. Every cell
//! and net carries a [`Domain`] tag recording which TMR redundant domain it
//! belongs to; the tag is threaded through synthesis, technology mapping,
//! place-and-route and fault classification so that a configuration upset can
//! be attributed to the redundant domains it touches.
//!
//! ## Example
//!
//! ```
//! use tmr_netlist::{Netlist, CellKind, PortDir};
//!
//! // Build y = a AND b.
//! let mut nl = Netlist::new("and_gate");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y_net = nl.add_net("y_int");
//! nl.add_cell("u_and", CellKind::And2, vec![a, b], y_net).unwrap();
//! nl.add_output("y", y_net);
//!
//! assert_eq!(nl.cell_count(), 1);
//! assert_eq!(nl.port_count(PortDir::Input), 2);
//! nl.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cell;
mod cone;
mod domain;
mod dot;
mod error;
mod id;
mod net;
mod netlist;
mod port;
mod stats;
mod traverse;
mod validate;

pub use cell::{Cell, CellKind};
pub use cone::{FanoutCone, FanoutIndex};
pub use domain::Domain;
pub use error::NetlistError;
pub use id::{CellId, NetId, PortId};
pub use net::{Net, NetDriver, NetSink};
pub use netlist::Netlist;
pub use port::{Port, PortDir};
pub use stats::NetlistStats;
pub use traverse::{CombLoop, Levelization};
pub use validate::ValidationReport;

/// Convenient `Result` alias for netlist operations.
pub type Result<T> = std::result::Result<T, NetlistError>;
