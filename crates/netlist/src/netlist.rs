//! The flat netlist container and its construction API.

use crate::{
    Cell, CellId, CellKind, Domain, Net, NetDriver, NetId, NetSink, NetlistError, Port, PortDir,
    PortId, Result,
};
use std::collections::HashMap;
use std::fmt;

/// A flat, single-clock, gate/LUT-level netlist.
///
/// Cells, nets and ports are stored in dense vectors and addressed by the
/// typed ids [`CellId`], [`NetId`] and [`PortId`]. The structure is append-
/// mostly: transformations that remove logic (dead-code elimination, TMR
/// rewrites) build a new `Netlist` rather than mutating in place, which keeps
/// ids stable for analysis passes.
///
/// See the crate-level documentation for a usage example.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    ports: Vec<Port>,
}

impl Netlist {
    /// Creates an empty netlist with the given top-level name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Rebuilds a netlist from its flat parts — the inverse of iterating
    /// [`Netlist::cells`] / [`Netlist::nets`] / [`Netlist::ports`], used by
    /// the `tmr-store` codec to reconstitute persisted netlists. The caller
    /// is trusted to supply internally consistent parts (the store guards
    /// integrity with a checksum); id ranges are debug-asserted only.
    pub fn from_parts(
        name: impl Into<String>,
        cells: Vec<Cell>,
        nets: Vec<Net>,
        ports: Vec<Port>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            for cell in &cells {
                debug_assert!(cell.output.index() < nets.len(), "cell output in range");
                for input in &cell.inputs {
                    debug_assert!(input.index() < nets.len(), "cell input in range");
                }
            }
            for port in &ports {
                debug_assert!(port.net.index() < nets.len(), "port net in range");
            }
        }
        Self {
            name: name.into(),
            cells,
            nets,
            ports,
        }
    }

    /// The top-level design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds an unconnected net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net::new(name));
        id
    }

    /// Adds an unconnected net tagged with a TMR domain.
    pub fn add_net_in_domain(&mut self, name: impl Into<String>, domain: Domain) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].domain = domain;
        id
    }

    /// Adds a top-level input port together with the net it drives, and
    /// returns the net id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        self.add_input_in_domain(name, Domain::None)
    }

    /// Adds a top-level input port in a TMR domain; returns the driven net.
    pub fn add_input_in_domain(&mut self, name: impl Into<String>, domain: Domain) -> NetId {
        let name = name.into();
        let net = self.add_net_in_domain(name.clone(), domain);
        let port = PortId::from_index(self.ports.len());
        self.ports.push(Port {
            name,
            dir: PortDir::Input,
            net,
            domain,
        });
        self.nets[net.index()].driver = Some(NetDriver::Input(port));
        net
    }

    /// Adds a top-level output port reading from `net` and returns the port id.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) -> PortId {
        self.add_output_in_domain(name, net, Domain::None)
    }

    /// Adds a top-level output port in a TMR domain.
    pub fn add_output_in_domain(
        &mut self,
        name: impl Into<String>,
        net: NetId,
        domain: Domain,
    ) -> PortId {
        let port = PortId::from_index(self.ports.len());
        self.ports.push(Port {
            name: name.into(),
            dir: PortDir::Output,
            net,
            domain,
        });
        self.nets[net.index()].sinks.push(NetSink::Output(port));
        port
    }

    /// Adds a cell driving `output` from `inputs` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the number of input nets does
    /// not match the cell kind, [`NetlistError::UnknownNet`] if any net id is
    /// out of range, and [`NetlistError::MultipleDrivers`] if `output` already
    /// has a driver.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: Vec<NetId>,
        output: NetId,
    ) -> Result<CellId> {
        self.add_cell_in_domain(name, kind, inputs, output, Domain::None)
    }

    /// Adds a cell tagged with a TMR domain. See [`Netlist::add_cell`].
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::add_cell`].
    pub fn add_cell_in_domain(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: Vec<NetId>,
        output: NetId,
        domain: Domain,
    ) -> Result<CellId> {
        let name = name.into();
        if inputs.len() != kind.input_count() {
            return Err(NetlistError::ArityMismatch {
                cell: name,
                expected: kind.input_count(),
                actual: inputs.len(),
            });
        }
        for &net in inputs.iter().chain(std::iter::once(&output)) {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(net));
            }
        }
        if self.nets[output.index()].driver.is_some() {
            return Err(NetlistError::MultipleDrivers {
                net: output,
                name: self.nets[output.index()].name.clone(),
            });
        }

        let id = CellId::from_index(self.cells.len());
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()]
                .sinks
                .push(NetSink::CellPin { cell: id, pin });
        }
        self.nets[output.index()].driver = Some(NetDriver::Cell(id));
        self.cells.push(Cell {
            name,
            kind,
            domain,
            inputs,
            output,
        });
        Ok(id)
    }

    /// Reconnects input pin `pin` of `cell` to `new_net`, updating sink lists.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`]/[`NetlistError::UnknownNet`] for
    /// out-of-range ids and [`NetlistError::ArityMismatch`] if `pin` is not a
    /// valid input pin of the cell.
    pub fn rewire_input(&mut self, cell: CellId, pin: usize, new_net: NetId) -> Result<()> {
        if cell.index() >= self.cells.len() {
            return Err(NetlistError::UnknownCell(cell));
        }
        if new_net.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet(new_net));
        }
        let old_net = {
            let c = &self.cells[cell.index()];
            match c.inputs.get(pin) {
                Some(&net) => net,
                None => {
                    return Err(NetlistError::ArityMismatch {
                        cell: c.name.clone(),
                        expected: c.kind.input_count(),
                        actual: pin + 1,
                    })
                }
            }
        };
        self.nets[old_net.index()].sinks.retain(
            |s| !matches!(s, NetSink::CellPin { cell: c, pin: p } if *c == cell && *p == pin),
        );
        self.nets[new_net.index()]
            .sinks
            .push(NetSink::CellPin { cell, pin });
        self.cells[cell.index()].inputs[pin] = new_net;
        Ok(())
    }

    /// Sets the TMR domain of a cell.
    pub fn set_cell_domain(&mut self, cell: CellId, domain: Domain) {
        self.cells[cell.index()].domain = domain;
    }

    /// Sets the TMR domain of a net.
    pub fn set_net_domain(&mut self, net: NetId, domain: Domain) {
        self.nets[net.index()].domain = domain;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Returns the cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Returns the net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Returns the port with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Iterates over all cells with their ids.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// Iterates over all nets with their ids.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::from_index(i), n))
    }

    /// Iterates over all top-level ports with their ids.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, p)| (PortId::from_index(i), p))
    }

    /// Iterates over input ports only.
    pub fn input_ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports().filter(|(_, p)| p.dir == PortDir::Input)
    }

    /// Iterates over output ports only.
    pub fn output_ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports().filter(|(_, p)| p.dir == PortDir::Output)
    }

    /// Finds a port by name and direction.
    pub fn find_port(&self, name: &str, dir: PortDir) -> Option<(PortId, &Port)> {
        self.ports().find(|(_, p)| p.dir == dir && p.name == name)
    }

    /// Finds a cell by instance name.
    pub fn find_cell(&self, name: &str) -> Option<(CellId, &Cell)> {
        self.cells().find(|(_, c)| c.name == name)
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of ports in the given direction.
    pub fn port_count(&self, dir: PortDir) -> usize {
        self.ports.iter().filter(|p| p.dir == dir).count()
    }

    /// Returns the ids of all sequential cells (flip-flops).
    pub fn sequential_cells(&self) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns a map from net id to the per-domain count of *sinks* reading
    /// it, useful for cross-domain exposure analysis.
    pub fn net_domains(&self) -> HashMap<NetId, Domain> {
        self.nets().map(|(id, n)| (id, n.domain)).collect()
    }

    // ------------------------------------------------------------------
    // Derived construction
    // ------------------------------------------------------------------

    /// Produces a compacted copy of this netlist keeping only the cells for
    /// which `keep` returns `true`, dropping nets that end up unconnected.
    ///
    /// Ports are always preserved. This is the primitive used by dead-logic
    /// elimination.
    pub fn filtered<F>(&self, mut keep: F) -> Netlist
    where
        F: FnMut(CellId, &Cell) -> bool,
    {
        let kept: Vec<CellId> = self
            .cells()
            .filter(|(id, c)| keep(*id, c))
            .map(|(id, _)| id)
            .collect();

        let mut out = Netlist::new(self.name.clone());
        // Decide which nets survive: nets referenced by kept cells or ports.
        let mut net_map: HashMap<NetId, NetId> = HashMap::new();
        let map_net =
            |old: NetId, this: &Netlist, out: &mut Netlist, net_map: &mut HashMap<NetId, NetId>| {
                *net_map.entry(old).or_insert_with(|| {
                    let n = &this.nets[old.index()];
                    out.add_net_in_domain(n.name.clone(), n.domain)
                })
            };

        // Ports first so that input drivers are re-established.
        for (_, port) in self.ports() {
            let new_net = map_net(port.net, self, &mut out, &mut net_map);
            match port.dir {
                PortDir::Input => {
                    let p = PortId::from_index(out.ports.len());
                    out.ports.push(Port {
                        name: port.name.clone(),
                        dir: PortDir::Input,
                        net: new_net,
                        domain: port.domain,
                    });
                    out.nets[new_net.index()].driver = Some(NetDriver::Input(p));
                }
                PortDir::Output => {
                    out.add_output_in_domain(port.name.clone(), new_net, port.domain);
                }
            }
        }

        for id in kept {
            let cell = &self.cells[id.index()];
            let inputs: Vec<NetId> = cell
                .inputs
                .iter()
                .map(|&n| map_net(n, self, &mut out, &mut net_map))
                .collect();
            let output = map_net(cell.output, self, &mut out, &mut net_map);
            out.add_cell_in_domain(cell.name.clone(), cell.kind, inputs, output, cell.domain)
                .expect("filtered netlist preserves structural invariants");
        }
        out
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}`: {} cells, {} nets, {} inputs, {} outputs",
            self.name,
            self.cell_count(),
            self.net_count(),
            self.port_count(PortDir::Input),
            self.port_count(PortDir::Output)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_netlist() -> Netlist {
        let mut nl = Netlist::new("xor2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_cell("u_xor", CellKind::Xor2, vec![a, b], y).unwrap();
        nl.add_output("y", y);
        nl
    }

    #[test]
    fn builds_simple_netlist() {
        let nl = xor_netlist();
        assert_eq!(nl.cell_count(), 1);
        assert_eq!(nl.net_count(), 3);
        assert_eq!(nl.port_count(PortDir::Input), 2);
        assert_eq!(nl.port_count(PortDir::Output), 1);
        let (_, cell) = nl.find_cell("u_xor").unwrap();
        assert_eq!(cell.kind, CellKind::Xor2);
        assert_eq!(nl.net(cell.output).sinks.len(), 1);
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        let err = nl.add_cell("u", CellKind::And2, vec![a], y).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_cell("u1", CellKind::Buf, vec![a], y).unwrap();
        let err = nl.add_cell("u2", CellKind::Not, vec![a], y).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn rejects_unknown_net() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let bogus = NetId::from_index(99);
        let err = nl.add_cell("u", CellKind::Buf, vec![a], bogus).unwrap_err();
        assert_eq!(err, NetlistError::UnknownNet(bogus));
    }

    #[test]
    fn rewire_input_moves_sink() {
        let mut nl = xor_netlist();
        let (cell_id, _) = nl.find_cell("u_xor").unwrap();
        let c = nl.add_input("c");
        let old = nl.cell(cell_id).inputs[1];
        nl.rewire_input(cell_id, 1, c).unwrap();
        assert_eq!(nl.cell(cell_id).inputs[1], c);
        assert!(nl
            .net(old)
            .sinks
            .iter()
            .all(|s| !matches!(s, NetSink::CellPin { cell, pin: 1 } if *cell == cell_id)));
        assert!(nl
            .net(c)
            .sinks
            .iter()
            .any(|s| matches!(s, NetSink::CellPin { cell, pin: 1 } if *cell == cell_id)));
    }

    #[test]
    fn rewire_input_rejects_bad_pin() {
        let mut nl = xor_netlist();
        let (cell_id, _) = nl.find_cell("u_xor").unwrap();
        let c = nl.add_input("c");
        assert!(nl.rewire_input(cell_id, 5, c).is_err());
    }

    #[test]
    fn filtered_drops_cells_and_keeps_ports() {
        let mut nl = xor_netlist();
        // add a dead buffer
        let a = nl.find_port("a", PortDir::Input).unwrap().1.net;
        let dead = nl.add_net("dead");
        nl.add_cell("u_dead", CellKind::Buf, vec![a], dead).unwrap();
        assert_eq!(nl.cell_count(), 2);

        let filtered = nl.filtered(|_, c| c.name != "u_dead");
        assert_eq!(filtered.cell_count(), 1);
        assert_eq!(filtered.port_count(PortDir::Input), 2);
        assert_eq!(filtered.port_count(PortDir::Output), 1);
        filtered.validate().unwrap();
    }

    #[test]
    fn domains_are_preserved() {
        let mut nl = Netlist::new("dom");
        let a = nl.add_input_in_domain("a", Domain::Tr1);
        let y = nl.add_net_in_domain("y", Domain::Tr1);
        nl.add_cell_in_domain("u", CellKind::Buf, vec![a], y, Domain::Tr1)
            .unwrap();
        nl.add_output_in_domain("y", y, Domain::Tr1);
        assert!(nl.cells().all(|(_, c)| c.domain == Domain::Tr1));
        assert!(nl.nets().all(|(_, n)| n.domain == Domain::Tr1));
        let copy = nl.filtered(|_, _| true);
        assert!(copy.cells().all(|(_, c)| c.domain == Domain::Tr1));
        assert!(copy.nets().all(|(_, n)| n.domain == Domain::Tr1));
    }
}
