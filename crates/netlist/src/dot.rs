//! Graphviz DOT export for visual inspection of (small) netlists.

use crate::{Domain, NetSink, Netlist};
use std::fmt::Write as _;

impl Netlist {
    /// Renders the netlist as a Graphviz `digraph`, colouring cells by their
    /// TMR domain (tr0 = red, tr1 = green, tr2 = blue, voters = gold).
    ///
    /// Intended for small netlists (the word-level view or single TMR
    /// partitions); a fully mapped FIR filter produces a very large graph.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=box, fontsize=10];");

        for (id, port) in self.ports() {
            let shape = match port.dir {
                crate::PortDir::Input => "invhouse",
                crate::PortDir::Output => "house",
            };
            let _ = writeln!(
                out,
                "  \"port_{}\" [label=\"{}\", shape={}, style=filled, fillcolor=\"{}\"];",
                id.index(),
                port.name,
                shape,
                domain_color(port.domain)
            );
        }

        for (id, cell) in self.cells() {
            let _ = writeln!(
                out,
                "  \"cell_{}\" [label=\"{}\\n{}\", style=filled, fillcolor=\"{}\"];",
                id.index(),
                cell.name,
                cell.kind,
                domain_color(cell.domain)
            );
        }

        for (_, net) in self.nets() {
            let source = match net.driver {
                Some(crate::NetDriver::Cell(c)) => format!("cell_{}", c.index()),
                Some(crate::NetDriver::Input(p)) => format!("port_{}", p.index()),
                None => continue,
            };
            for sink in &net.sinks {
                let target = match sink {
                    NetSink::CellPin { cell, .. } => format!("cell_{}", cell.index()),
                    NetSink::Output(p) => format!("port_{}", p.index()),
                };
                let _ = writeln!(
                    out,
                    "  \"{source}\" -> \"{target}\" [label=\"{}\", fontsize=8];",
                    net.name
                );
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn domain_color(domain: Domain) -> &'static str {
    match domain {
        Domain::None => "white",
        Domain::Tr0 => "lightcoral",
        Domain::Tr1 => "lightgreen",
        Domain::Tr2 => "lightblue",
        Domain::Voter => "gold",
    }
}

#[cfg(test)]
mod tests {
    use crate::{CellKind, Domain, Netlist};

    #[test]
    fn dot_contains_all_objects() {
        let mut nl = Netlist::new("dot_test");
        let a = nl.add_input_in_domain("a", Domain::Tr0);
        let y = nl.add_net("y");
        nl.add_cell_in_domain("u_buf", CellKind::Buf, vec![a], y, Domain::Tr0)
            .unwrap();
        nl.add_output("y", y);
        let dot = nl.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("u_buf"));
        assert!(dot.contains("invhouse"));
        assert!(dot.contains("lightcoral"));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
