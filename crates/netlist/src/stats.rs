//! Netlist statistics used by area/robustness reports.

use crate::{CellKind, Domain, Netlist, PortDir};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics of a netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total number of cells.
    pub cells: usize,
    /// Number of LUT cells.
    pub luts: usize,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Number of technology-independent gates (pre-mapping).
    pub generic_gates: usize,
    /// Number of majority voters (`Maj3` gates or LUTs created from them are
    /// counted via domain tagging: cells in [`Domain::Voter`]).
    pub voter_cells: usize,
    /// Number of I/O buffer cells.
    pub io_buffers: usize,
    /// Number of constant drivers.
    pub constants: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of top-level input ports.
    pub inputs: usize,
    /// Number of top-level output ports.
    pub outputs: usize,
    /// Cell count per TMR domain.
    pub cells_per_domain: BTreeMap<Domain, usize>,
    /// Net count per TMR domain.
    pub nets_per_domain: BTreeMap<Domain, usize>,
    /// Histogram of cell mnemonics.
    pub kind_histogram: BTreeMap<&'static str, usize>,
}

impl NetlistStats {
    /// Total sequential + combinational "logic" cells (excludes I/O, constants).
    pub fn logic_cells(&self) -> usize {
        self.cells - self.io_buffers - self.constants
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells={} (luts={}, ffs={}, gates={}, io={}, const={})",
            self.cells,
            self.luts,
            self.flip_flops,
            self.generic_gates,
            self.io_buffers,
            self.constants
        )?;
        writeln!(
            f,
            "nets={} inputs={} outputs={}",
            self.nets, self.inputs, self.outputs
        )?;
        write!(f, "domains: ")?;
        for (domain, count) in &self.cells_per_domain {
            write!(f, "{domain}={count} ")?;
        }
        Ok(())
    }
}

impl Netlist {
    /// Computes aggregate statistics for this netlist.
    pub fn stats(&self) -> NetlistStats {
        let mut stats = NetlistStats {
            cells: self.cell_count(),
            nets: self.net_count(),
            inputs: self.port_count(PortDir::Input),
            outputs: self.port_count(PortDir::Output),
            ..NetlistStats::default()
        };
        for (_, cell) in self.cells() {
            match cell.kind {
                CellKind::Lut { .. } => stats.luts += 1,
                CellKind::Dff { .. } => stats.flip_flops += 1,
                CellKind::Ibuf | CellKind::Obuf => stats.io_buffers += 1,
                CellKind::Gnd | CellKind::Vcc => stats.constants += 1,
                _ => stats.generic_gates += 1,
            }
            if cell.domain == Domain::Voter {
                stats.voter_cells += 1;
            }
            *stats
                .kind_histogram
                .entry(cell.kind.mnemonic())
                .or_insert(0) += 1;
            *stats.cells_per_domain.entry(cell.domain).or_insert(0) += 1;
        }
        for (_, net) in self.nets() {
            *stats.nets_per_domain.entry(net.domain).or_insert(0) += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {

    use crate::{CellKind, Domain, Netlist};

    #[test]
    fn stats_count_kinds_and_domains() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input_in_domain("a", Domain::Tr0);
        let b = nl.add_input_in_domain("b", Domain::Tr1);
        let c = nl.add_input_in_domain("c", Domain::Tr2);
        let v = nl.add_net_in_domain("v", Domain::Voter);
        let q = nl.add_net("q");
        nl.add_cell_in_domain("u_vote", CellKind::Maj3, vec![a, b, c], v, Domain::Voter)
            .unwrap();
        nl.add_cell("u_reg", CellKind::Dff { init: false }, vec![v], q)
            .unwrap();
        nl.add_output("q", q);

        let stats = nl.stats();
        assert_eq!(stats.cells, 2);
        assert_eq!(stats.flip_flops, 1);
        assert_eq!(stats.generic_gates, 1);
        assert_eq!(stats.voter_cells, 1);
        assert_eq!(stats.cells_per_domain[&Domain::Voter], 1);
        assert_eq!(stats.kind_histogram["MAJ3"], 1);
        assert_eq!(stats.logic_cells(), 2);
        assert_eq!(stats.inputs, 3);
        assert_eq!(stats.outputs, 1);
        let text = stats.to_string();
        assert!(text.contains("ffs=1"));
    }
}
