//! A minimal, dependency-free JSON document builder.
//!
//! The workspace builds fully offline, so reports that want machine-readable
//! output (the [`crate::CriticalityReport`], the `table3`/`table4`/
//! `table_critical` bench binaries with `--json`) share this writer instead
//! of pulling in `serde`. Only what the reports need is implemented:
//! objects, arrays, strings with escaping, integers, floats, booleans and
//! null, rendered deterministically in insertion order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with enough precision to round-trip; non-finite
    /// values degrade to `null`, as JSON has no representation for them).
    Float(f64),
    /// A string (escaped on serialization).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Self {
        Json::Array(values.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(value: impl Into<String>) -> Self {
        Json::Str(value.into())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl From<usize> for Json {
    fn from(value: usize) -> Self {
        Json::Int(value as i64)
    }
}

impl From<bool> for Json {
    fn from(value: bool) -> Self {
        Json::Bool(value)
    }
}

impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Json::Float(value)
    }
}

impl From<&str> for Json {
    fn from(value: &str) -> Self {
        Json::Str(value.to_string())
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => escape_into(f, s),
            Json::Array(values) => {
                f.write_str("[")?;
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{value}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object([
            ("name", Json::str("tmr_p2")),
            ("bits", Json::from(42usize)),
            ("fraction", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("rows", Json::array([Json::from(1usize), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"tmr_p2","bits":42,"fraction":0.5,"ok":true,"rows":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").render(),
            r#""a\"b\\c\nd\te\u0001""#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
        assert_eq!(Json::Float(2.25).render(), "2.25");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::array([]).render(), "[]");
        assert_eq!(Json::object::<String>([]).render(), "{}");
    }
}
