//! # tmr-analyze
//!
//! Static TMR criticality analysis: finding the voter-defeating configuration
//! bits **without simulation**.
//!
//! The paper's central result is that a *single* SEU in the routing
//! configuration can bridge two TMR domains and defeat the voter — which is
//! why the routing bits (roughly 80 % of the design-related configuration
//! memory) dominate the failure analysis. The dynamic campaign of
//! `tmr-faultsim` discovers such bits by simulating a random sample; this
//! crate discovers them *statically*, in the spirit of dependability-model-
//! driven TMR evaluation, by walking the routed design's structure:
//!
//! * [`StaticAnalysis::run`] classifies **every** configuration bit into a
//!   [`Verdict`] — [`Verdict::Benign`], [`Verdict::SingleDomain`] or
//!   [`Verdict::DomainCrossing`] — by deriving each bit's structural effect
//!   with [`tmr_faultsim::classify_bit`] and inspecting only the TMR domains
//!   of the affected nets and sinks (no simulator run, exhaustive
//!   whole-bitstream coverage);
//! * [`CriticalityReport`] aggregates the verdict map into per-domain-pair ×
//!   per-effect-class counts plus the TMR-defeating bit set, with text
//!   ([`std::fmt::Display`]) and dependency-free JSON ([`Json`]) rendering;
//! * [`PruneWith::prune_with`] feeds the statically-possibly-observable set
//!   into the dynamic campaign ([`tmr_faultsim::CampaignOptions`]): the same
//!   faults are sampled and recorded, but simulations of bits the analysis
//!   proves maskable are skipped — same outcomes, far fewer simulations.
//!
//! Static soundness — every dynamically observed domain-crossing fault is
//! flagged [`Verdict::DomainCrossing`], and pruned campaigns observe exactly
//! the failures of unpruned ones — is asserted on the paper TMR
//! configurations by the workspace integration tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod prune;
mod report;
mod verdict;

pub use analysis::StaticAnalysis;
pub use prune::PruneWith;
pub use report::CriticalityReport;
pub use tmr_core::json::Json;
pub use verdict::Verdict;
