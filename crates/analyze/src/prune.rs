//! Campaign pruning: restricting the dynamic campaign to the statically
//! observable bits.

use crate::StaticAnalysis;
use tmr_faultsim::{CampaignBuilder, CampaignOptions};

/// Extension trait wiring a [`StaticAnalysis`] into
/// [`tmr_faultsim::CampaignOptions`] and [`tmr_faultsim::CampaignBuilder`].
///
/// `tmr-faultsim` cannot depend on `tmr-analyze` (the analyzer is built on
/// top of it), so the pruning entry point lives here: `prune_with` hands the
/// analyzer's observable set to [`CampaignOptions::restrict_to`] and its
/// single-domain tags to [`CampaignOptions::with_maskable_domains`].
pub trait PruneWith {
    /// Restricts simulation to the statically-possibly-observable bits of
    /// `analysis`.
    ///
    /// The sampled fault population is unchanged — the same faults are
    /// drawn, classified and recorded — but only faults the static analysis
    /// cannot rule out are simulated. Under a multi-bit fault model
    /// ([`tmr_faultsim::FaultModel`]) a fault is pruned only when *every*
    /// behaviour-changing bit of its cluster is non-observable **and**
    /// confined to one common redundant domain (the analyzer's
    /// [`StaticAnalysis::maskable_domains`] tags); a cluster whose bits
    /// span two domains — individually maskable, jointly TMR-defeating — is
    /// always simulated, as is any cluster containing an unclassifiable
    /// bit. For a sound analysis the pruned campaign's outcomes are
    /// therefore *identical* to the unpruned ones (the skipped simulations
    /// would all have reported no mismatch), which the integration tests
    /// assert on the paper designs under every fault model.
    #[must_use]
    fn prune_with(self, analysis: &StaticAnalysis) -> Self;
}

impl PruneWith for CampaignOptions {
    fn prune_with(self, analysis: &StaticAnalysis) -> Self {
        self.restrict_to(analysis.observable_bits().iter().copied())
            .with_maskable_domains(analysis.maskable_domains())
    }
}

impl PruneWith for CampaignBuilder {
    fn prune_with(self, analysis: &StaticAnalysis) -> Self {
        self.restrict_to(analysis.observable_bits().iter().copied())
            .maskable_domains(analysis.maskable_domains())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_arch::Device;
    use tmr_core::{apply_tmr, TmrConfig};
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap};

    #[test]
    fn pruned_campaign_matches_unpruned_outcomes_and_simulates_less() {
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let netlist = techmap(&optimize(&lower(&design).unwrap())).unwrap();
        let routed = place_and_route(&device, &netlist, 5).unwrap();

        let analysis = StaticAnalysis::run(&device, &routed);
        assert!(analysis.voted_tmr());

        let campaign = CampaignBuilder::new().faults(600).cycles(10).sequential();
        let unpruned = campaign.clone().run(&device, &routed).unwrap();
        let pruned = campaign
            .prune_with(&analysis)
            .run(&device, &routed)
            .unwrap();

        // Same sampled bits, same classifications, same observed failures.
        assert_eq!(pruned.outcomes, unpruned.outcomes);
        assert!(
            pruned.simulated < unpruned.simulated,
            "pruning must skip simulations ({} vs {})",
            pruned.simulated,
            unpruned.simulated
        );
        assert!(pruned.simulated <= analysis.observable_bits().len());
    }
}
