//! Aggregated criticality reports with text and JSON rendering.

use crate::Json;
use std::collections::BTreeMap;
use std::fmt;
use tmr_faultsim::FaultClass;
use tmr_netlist::Domain;

/// The aggregate of a [`crate::StaticAnalysis`]: verdict counts, the
/// per-domain-pair × per-effect-class breakdown of the domain-crossing bits,
/// and the TMR-defeating bit set itself.
///
/// This is the static counterpart of the paper's Table 4: where the dynamic
/// campaign classifies the *sampled error-causing* upsets, the report
/// classifies **every** voter-defeating candidate in the bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalityReport {
    /// Name of the analyzed design.
    pub design: String,
    /// Total configuration bits analyzed (the whole configuration space).
    pub total_bits: usize,
    /// Design-related bits (the dynamic campaign's fault-list size).
    pub design_related: usize,
    /// Statically-possibly-observable bits (the campaign-pruning allow-list).
    pub observable: usize,
    /// Whether the design satisfied the structural TMR preconditions.
    pub voted_tmr: bool,
    /// Bits that cannot change the configured circuit's behaviour.
    pub benign: usize,
    /// Bits whose fault stays confined to one domain, per domain.
    pub single_domain: BTreeMap<Domain, usize>,
    /// Domain-crossing bits per coupled domain pair and effect class.
    pub crossing: BTreeMap<(Domain, Domain), BTreeMap<FaultClass, usize>>,
    /// The TMR-defeating bits (verdict [`crate::Verdict::DomainCrossing`]),
    /// in configuration-memory order.
    pub defeating_bits: Vec<usize>,
}

impl CriticalityReport {
    /// Maximum number of defeating bits embedded in the JSON rendering; the
    /// exact total is always present as `defeating_bits_total`.
    pub const JSON_BIT_SAMPLE: usize = 256;

    /// Total domain-crossing bits.
    pub fn crossing_total(&self) -> usize {
        self.defeating_bits.len()
    }

    /// Domain-crossing bits per effect class, summed over domain pairs (the
    /// static analogue of one column of the paper's Table 4).
    pub fn crossing_by_class(&self) -> BTreeMap<FaultClass, usize> {
        let mut counts = BTreeMap::new();
        for per_class in self.crossing.values() {
            for (&class, &count) in per_class {
                *counts.entry(class).or_insert(0) += count;
            }
        }
        counts
    }

    /// Fraction of the design-related bits that the static analysis prunes
    /// from simulation (0 when nothing is pruned).
    pub fn pruned_fraction(&self) -> f64 {
        if self.design_related == 0 {
            return 0.0;
        }
        1.0 - (self.observable.min(self.design_related) as f64 / self.design_related as f64)
    }

    /// Renders the report as a JSON document (no external dependencies; see
    /// [`Json`]).
    pub fn to_json(&self) -> Json {
        let single_domain = Json::object(
            self.single_domain
                .iter()
                .map(|(domain, &count)| (domain.label(), Json::from(count))),
        );
        let crossing = Json::array(self.crossing.iter().map(|((a, b), per_class)| {
            Json::object([
                ("domains", Json::str(format!("{a}x{b}"))),
                (
                    "classes",
                    Json::object(
                        per_class
                            .iter()
                            .map(|(class, &count)| (class.label(), Json::from(count))),
                    ),
                ),
            ])
        }));
        Json::object([
            ("design", Json::str(self.design.clone())),
            ("total_bits", Json::from(self.total_bits)),
            ("design_related", Json::from(self.design_related)),
            ("observable", Json::from(self.observable)),
            ("voted_tmr", Json::from(self.voted_tmr)),
            ("benign", Json::from(self.benign)),
            ("single_domain", single_domain),
            ("crossing", crossing),
            ("crossing_total", Json::from(self.crossing_total())),
            ("pruned_fraction", Json::from(self.pruned_fraction())),
            // The full set can run to tens of thousands of bits; the JSON
            // carries a bounded prefix plus the exact total so documents stay
            // tractable (the complete set is available programmatically via
            // `defeating_bits`).
            (
                "defeating_bits_total",
                Json::from(self.defeating_bits.len()),
            ),
            (
                "defeating_bits_sample",
                Json::array(
                    self.defeating_bits
                        .iter()
                        .take(Self::JSON_BIT_SAMPLE)
                        .map(|&bit| Json::from(bit)),
                ),
            ),
        ])
    }
}

impl fmt::Display for CriticalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} config bits, {} design-related, {} observable ({:.0} % pruned), voted TMR: {}",
            self.design,
            self.total_bits,
            self.design_related,
            self.observable,
            100.0 * self.pruned_fraction(),
            self.voted_tmr,
        )?;
        writeln!(f, "  benign: {}", self.benign)?;
        for (domain, count) in &self.single_domain {
            writeln!(f, "  single-domain {domain}: {count}")?;
        }
        for ((a, b), per_class) in &self.crossing {
            let total: usize = per_class.values().sum();
            write!(f, "  crossing {a}x{b}: {total} (")?;
            for (i, (class, count)) in per_class.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{class} {count}")?;
            }
            writeln!(f, ")")?;
        }
        write!(f, "  TMR-defeating bits: {}", self.crossing_total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CriticalityReport {
        let mut crossing: BTreeMap<(Domain, Domain), BTreeMap<FaultClass, usize>> = BTreeMap::new();
        crossing
            .entry((Domain::Tr0, Domain::Tr1))
            .or_default()
            .insert(FaultClass::Bridge, 2);
        crossing
            .entry((Domain::Tr1, Domain::Tr2))
            .or_default()
            .insert(FaultClass::Conflict, 1);
        CriticalityReport {
            design: "demo".to_string(),
            total_bits: 100,
            design_related: 40,
            observable: 10,
            voted_tmr: true,
            benign: 87,
            single_domain: BTreeMap::from([(Domain::Tr0, 10)]),
            crossing,
            defeating_bits: vec![3, 17, 59],
        }
    }

    #[test]
    fn totals_and_class_rollup() {
        let report = sample_report();
        assert_eq!(report.crossing_total(), 3);
        let by_class = report.crossing_by_class();
        assert_eq!(by_class[&FaultClass::Bridge], 2);
        assert_eq!(by_class[&FaultClass::Conflict], 1);
        assert!((report.pruned_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_names_the_parts() {
        let text = sample_report().to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("benign: 87"));
        assert!(text.contains("crossing tr0xtr1: 2"));
        assert!(text.contains("TMR-defeating bits: 3"));
    }

    #[test]
    fn json_rendering_is_valid_and_complete() {
        let json = sample_report().to_json().render();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""design":"demo""#));
        assert!(json.contains(r#""crossing_total":3"#));
        assert!(json.contains(r#""domains":"tr0xtr1""#));
        assert!(json.contains(r#""defeating_bits_total":3"#));
        assert!(json.contains(r#""defeating_bits_sample":[3,17,59]"#));
    }

    #[test]
    fn empty_design_related_has_zero_pruned_fraction() {
        let mut report = sample_report();
        report.design_related = 0;
        assert_eq!(report.pruned_fraction(), 0.0);
    }
}
