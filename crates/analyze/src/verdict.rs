//! The per-bit criticality verdict.

use std::collections::BTreeSet;
use std::fmt;
use tmr_faultsim::FaultClass;
use tmr_netlist::Domain;

/// The static criticality of one configuration bit.
///
/// The verdict is derived purely structurally — from the routed design's
/// node/PIP usage database and the netlist's TMR domain tags — with no
/// simulation. It answers the question the paper answers dynamically with a
/// fault-injection campaign: *can this upset defeat the TMR scheme?*
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Verdict {
    /// The flip cannot change the behaviour of the configured circuit: it
    /// touches an unused resource, an unexercised LUT entry, a same-net PIP,
    /// or a bridge candidate with no victim.
    Benign,
    /// The fault corrupts signal copies of exactly one TMR domain. For a
    /// redundant domain (`tr0`/`tr1`/`tr2`) in a fully voted design this is
    /// the case TMR masks by construction; for [`Domain::Voter`] or
    /// [`Domain::None`] the fault sits outside the protection and remains
    /// observable.
    SingleDomain(Domain),
    /// The fault couples two *distinct* redundant domains — the
    /// voter-defeating mechanism the paper identifies (upset "b" of its
    /// Fig. 1). `domains` is the ordered pair of coupled domains and `class`
    /// the structural effect that couples them.
    DomainCrossing {
        /// The two distinct redundant domains coupled by the fault, in
        /// [`Domain`] order.
        domains: (Domain, Domain),
        /// The structural effect class (Table 1/4 taxonomy).
        class: FaultClass,
    },
}

impl Verdict {
    /// Derives the verdict from the set of affected domains
    /// ([`tmr_faultsim::BitEffect::affected_domains`]) and the effect class.
    ///
    /// Precedence: two distinct redundant domains make the bit
    /// [`Verdict::DomainCrossing`]; otherwise the *least protected* affected
    /// domain wins — [`Domain::None`] over [`Domain::Voter`] over a redundant
    /// domain — so a fault touching both `tr0` and voter logic is reported
    /// (and kept observable) as a voter fault, never mistaken for a maskable
    /// single-copy fault.
    pub fn from_affected_domains(domains: &BTreeSet<Domain>, class: FaultClass) -> Self {
        let mut redundant = domains.iter().copied().filter(|d| d.is_redundant());
        if let Some(first) = redundant.next() {
            if let Some(second) = redundant.next() {
                return Verdict::DomainCrossing {
                    domains: (first, second),
                    class,
                };
            }
        }
        if domains.contains(&Domain::None) {
            Verdict::SingleDomain(Domain::None)
        } else if domains.contains(&Domain::Voter) {
            Verdict::SingleDomain(Domain::Voter)
        } else if let Some(&domain) = domains.iter().next() {
            Verdict::SingleDomain(domain)
        } else {
            Verdict::Benign
        }
    }

    /// Returns `true` for verdicts that can defeat TMR: the domain-crossing
    /// bits, the paper's central object of study.
    pub fn may_defeat_tmr(&self) -> bool {
        matches!(self, Verdict::DomainCrossing { .. })
    }

    /// Returns `true` if the fault could be observable at the voted outputs.
    ///
    /// `voted_tmr` reports whether the analyzed design satisfies the
    /// structural TMR preconditions (every output bit pad-voted across all
    /// three redundant domains, cross-domain reads confined to voter cells);
    /// only then is a fault confined to a single *redundant* domain
    /// guaranteed to be voted out.
    pub fn possibly_observable(&self, voted_tmr: bool) -> bool {
        match self {
            Verdict::Benign => false,
            Verdict::SingleDomain(domain) => !(voted_tmr && domain.is_redundant()),
            Verdict::DomainCrossing { .. } => true,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Benign => f.write_str("benign"),
            Verdict::SingleDomain(domain) => write!(f, "single-domain({domain})"),
            Verdict::DomainCrossing {
                domains: (a, b),
                class,
            } => {
                write!(f, "domain-crossing({a}x{b}, {class})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(domains: &[Domain]) -> BTreeSet<Domain> {
        domains.iter().copied().collect()
    }

    #[test]
    fn two_redundant_domains_cross() {
        let verdict =
            Verdict::from_affected_domains(&set(&[Domain::Tr0, Domain::Tr2]), FaultClass::Bridge);
        assert_eq!(
            verdict,
            Verdict::DomainCrossing {
                domains: (Domain::Tr0, Domain::Tr2),
                class: FaultClass::Bridge,
            }
        );
        assert!(verdict.may_defeat_tmr());
        assert!(verdict.possibly_observable(true));
    }

    #[test]
    fn least_protected_domain_wins() {
        assert_eq!(
            Verdict::from_affected_domains(&set(&[Domain::Tr1, Domain::Voter]), FaultClass::Open),
            Verdict::SingleDomain(Domain::Voter)
        );
        assert_eq!(
            Verdict::from_affected_domains(
                &set(&[Domain::None, Domain::Voter, Domain::Tr0]),
                FaultClass::Open
            ),
            Verdict::SingleDomain(Domain::None)
        );
        assert_eq!(
            Verdict::from_affected_domains(&set(&[Domain::Tr1]), FaultClass::Open),
            Verdict::SingleDomain(Domain::Tr1)
        );
    }

    #[test]
    fn empty_set_is_benign() {
        let verdict = Verdict::from_affected_domains(&set(&[]), FaultClass::Others);
        assert_eq!(verdict, Verdict::Benign);
        assert!(!verdict.may_defeat_tmr());
        assert!(!verdict.possibly_observable(true));
        assert!(!verdict.possibly_observable(false));
    }

    #[test]
    fn observability_depends_on_the_voting_preconditions() {
        let tr1 = Verdict::SingleDomain(Domain::Tr1);
        assert!(!tr1.possibly_observable(true));
        assert!(tr1.possibly_observable(false));
        let voter = Verdict::SingleDomain(Domain::Voter);
        assert!(voter.possibly_observable(true));
        let none = Verdict::SingleDomain(Domain::None);
        assert!(none.possibly_observable(true));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Verdict::Benign.to_string(), "benign");
        assert_eq!(
            Verdict::SingleDomain(Domain::Tr2).to_string(),
            "single-domain(tr2)"
        );
        assert_eq!(
            Verdict::DomainCrossing {
                domains: (Domain::Tr0, Domain::Tr1),
                class: FaultClass::Conflict,
            }
            .to_string(),
            "domain-crossing(tr0xtr1, Conflict)"
        );
    }
}
