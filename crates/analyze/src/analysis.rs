//! The whole-bitstream static criticality analysis.

use crate::{CriticalityReport, Verdict};
use std::collections::{BTreeMap, BTreeSet};
use tmr_arch::Device;
use tmr_faultsim::{classify_bit, FaultClass};
use tmr_netlist::{Domain, Netlist};
use tmr_pnr::RoutedDesign;
use tmr_sim::OutputGroups;

/// The result of statically analyzing every configuration bit of a routed
/// design.
///
/// [`StaticAnalysis::run`] walks the complete configuration space — not a
/// random sample — and classifies each bit with `tmr-faultsim`'s structural
/// effect machinery ([`classify_bit`]) used *purely structurally*: the derived
/// fault overlay is never simulated, only the TMR domains of the affected
/// nets and sinks are inspected. This gives exhaustive coverage of the
/// domain-crossing bits (the paper's voter-defeating upsets) at a cost of
/// microseconds per bit, where the dynamic campaign pays a full multi-cycle
/// simulation per sampled bit.
///
/// # Soundness preconditions
///
/// A fault confined to one *redundant* domain is only guaranteed maskable
/// when the design is structurally a voted TMR circuit. `run` checks two
/// conditions and records the conjunction as [`StaticAnalysis::voted_tmr`]:
///
/// 1. **pad-voted outputs** — every word-level output bit is a triple whose
///    members carry all three redundant domains (the paper's "voters in the
///    output logic block"), and
/// 2. **voter-confined merging** — every cell that reads a net of a redundant
///    domain different from its own output's domain is tagged
///    [`Domain::Voter`] (majority voters are the only cross-domain readers
///    the TMR transformation produces).
///
/// When either check fails the analysis degrades conservatively: single-
/// domain faults are treated as observable, so pruning never skips a
/// simulation it cannot justify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticAnalysis {
    design: String,
    verdicts: Vec<Verdict>,
    classes: Vec<FaultClass>,
    /// The *exact* affected-domain set of each bit, as a [`domain_mask`]
    /// bitmask — verdicts are lossy (`SingleDomain` keeps only the least
    /// protected domain), so cluster merging works on these instead.
    domain_masks: Vec<u8>,
    design_related: usize,
    voted_tmr: bool,
    observable: Vec<usize>,
}

/// Encodes a set of TMR domains as a bitmask (one bit per [`Domain`]
/// variant), the exact per-bit record cluster verdicts merge over.
fn domain_mask(domains: &BTreeSet<Domain>) -> u8 {
    domains.iter().fold(0u8, |mask, domain| {
        mask | match domain {
            Domain::None => 1 << 0,
            Domain::Tr0 => 1 << 1,
            Domain::Tr1 => 1 << 2,
            Domain::Tr2 => 1 << 3,
            Domain::Voter => 1 << 4,
        }
    })
}

/// Decodes a [`domain_mask`] back into the domain set.
fn domains_from_mask(mask: u8) -> BTreeSet<Domain> {
    [
        (1 << 0, Domain::None),
        (1 << 1, Domain::Tr0),
        (1 << 2, Domain::Tr1),
        (1 << 3, Domain::Tr2),
        (1 << 4, Domain::Voter),
    ]
    .into_iter()
    .filter(|&(bit, _)| mask & bit != 0)
    .map(|(_, domain)| domain)
    .collect()
}

impl StaticAnalysis {
    /// Analyzes every configuration bit of `routed` on `device`.
    pub fn run(device: &Device, routed: &RoutedDesign) -> Self {
        let mut trace_span = tmr_trace::span("analyze.static");
        let netlist = routed.netlist();
        let voted_tmr = outputs_fully_voted(netlist) && merging_confined_to_voters(netlist);
        let layout = device.config_layout();
        trace_span.attr("design", netlist.name());
        trace_span.attr("bits", layout.bit_count());

        let mut verdicts = Vec::with_capacity(layout.bit_count());
        let mut classes = Vec::with_capacity(layout.bit_count());
        let mut domain_masks = Vec::with_capacity(layout.bit_count());
        let mut observable = Vec::new();
        let mut design_related = 0;
        for bit in 0..layout.bit_count() {
            let resource = layout.resource_at(bit).expect("bit in range");
            if routed.resource_is_design_related(device, &resource) {
                design_related += 1;
            }
            let effect = classify_bit(device, routed, bit);
            let affected = effect.affected_domains(routed);
            let verdict = Verdict::from_affected_domains(&affected, effect.class);
            if verdict.possibly_observable(voted_tmr) {
                observable.push(bit);
            }
            verdicts.push(verdict);
            classes.push(effect.class);
            domain_masks.push(domain_mask(&affected));
        }
        trace_span.attr("observable", observable.len());
        trace_span.attr("design_related", design_related);

        Self {
            design: netlist.name().to_string(),
            verdicts,
            classes,
            domain_masks,
            design_related,
            voted_tmr,
            observable,
        }
    }

    /// Name of the analyzed design.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Number of analyzed configuration bits (the whole configuration space).
    pub fn bit_count(&self) -> usize {
        self.verdicts.len()
    }

    /// Number of design-related bits (the dynamic campaign's fault list).
    pub fn design_related(&self) -> usize {
        self.design_related
    }

    /// Whether the design satisfied the structural TMR preconditions (see the
    /// type-level documentation); only then are single-redundant-domain
    /// faults excluded from the observable set.
    pub fn voted_tmr(&self) -> bool {
        self.voted_tmr
    }

    /// The verdict of one configuration bit.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the configuration space.
    pub fn verdict(&self, bit: usize) -> Verdict {
        self.verdicts[bit]
    }

    /// The merged verdict of a multi-bit fault (an MBU cluster, or the
    /// upsets accumulated over one scrub interval): the per-bit *exact*
    /// affected-domain sets are unioned and re-judged, so two bits each
    /// confined to a *different* single redundant domain correctly merge
    /// into [`Verdict::DomainCrossing`] — the accumulation failure mode a
    /// per-bit view cannot see. The union works on the recorded domain sets,
    /// not the per-bit verdicts (a `SingleDomain(Voter)` verdict may hide a
    /// co-affected redundant domain behind its least-protected-wins
    /// precedence). The effect class of the merged verdict is the class of
    /// the first non-benign component.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or any bit is outside the configuration
    /// space.
    pub fn verdict_for_fault(&self, bits: &[usize]) -> Verdict {
        assert!(!bits.is_empty(), "a fault flips at least one bit");
        let mut mask = 0u8;
        let mut class: Option<FaultClass> = None;
        for &bit in bits {
            if self.verdicts[bit] != Verdict::Benign && class.is_none() {
                class = Some(self.classes[bit]);
            }
            mask |= self.domain_masks[bit];
        }
        Verdict::from_affected_domains(
            &domains_from_mask(mask),
            class.unwrap_or(self.classes[bits[0]]),
        )
    }

    /// Whether a multi-bit fault could be observable at the voted outputs —
    /// [`Verdict::possibly_observable`] of [`StaticAnalysis::verdict_for_fault`]
    /// under this design's structural preconditions.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or any bit is outside the configuration
    /// space.
    pub fn fault_possibly_observable(&self, bits: &[usize]) -> bool {
        self.verdict_for_fault(bits)
            .possibly_observable(self.voted_tmr)
    }

    /// The single-domain tags justifying multi-bit campaign pruning: every
    /// statically *non-observable* bit that is confined to exactly one
    /// redundant domain, with that domain. Empty unless the design satisfies
    /// the structural TMR preconditions ([`StaticAnalysis::voted_tmr`]) —
    /// without them nothing is maskable and nothing may be pruned.
    ///
    /// Handed to [`tmr_faultsim::CampaignOptions::with_maskable_domains`] by
    /// [`crate::PruneWith::prune_with`]: the campaign engine skips a
    /// multi-bit fault only when every behaviour-changing bit carries one
    /// common tag, and degrades conservatively (simulates) for any bit
    /// missing here.
    pub fn maskable_domains(&self) -> impl Iterator<Item = (usize, Domain)> + '_ {
        self.verdicts
            .iter()
            .enumerate()
            .filter_map(move |(bit, verdict)| match *verdict {
                Verdict::SingleDomain(domain) if self.voted_tmr && domain.is_redundant() => {
                    Some((bit, domain))
                }
                _ => None,
            })
    }

    /// All verdicts, indexed by bit.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The sorted list of statically-possibly-observable bits — the
    /// simulation allow-list handed to
    /// [`tmr_faultsim::CampaignOptions::restrict_to`] (see
    /// [`crate::PruneWith`]).
    pub fn observable_bits(&self) -> &[usize] {
        &self.observable
    }

    /// Iterates over the TMR-defeating bits: every bit whose verdict is
    /// [`Verdict::DomainCrossing`], in configuration-memory order.
    pub fn critical_bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.may_defeat_tmr())
            .map(|(bit, _)| bit)
    }

    /// Aggregates the verdict map into a [`CriticalityReport`].
    pub fn report(&self) -> CriticalityReport {
        let mut benign = 0;
        let mut single_domain: BTreeMap<Domain, usize> = BTreeMap::new();
        let mut crossing: BTreeMap<(Domain, Domain), BTreeMap<FaultClass, usize>> = BTreeMap::new();
        let mut defeating_bits = Vec::new();
        for (bit, verdict) in self.verdicts.iter().enumerate() {
            match *verdict {
                Verdict::Benign => benign += 1,
                Verdict::SingleDomain(domain) => {
                    *single_domain.entry(domain).or_insert(0) += 1;
                }
                Verdict::DomainCrossing { domains, class } => {
                    *crossing
                        .entry(domains)
                        .or_default()
                        .entry(class)
                        .or_insert(0) += 1;
                    defeating_bits.push(bit);
                }
            }
        }
        CriticalityReport {
            design: self.design.clone(),
            total_bits: self.verdicts.len(),
            design_related: self.design_related,
            observable: self.observable.len(),
            voted_tmr: self.voted_tmr,
            benign,
            single_domain,
            crossing,
            defeating_bits,
        }
    }
}

/// Checks that every word-level output bit is a pad-voted triple covering all
/// three redundant domains.
fn outputs_fully_voted(netlist: &Netlist) -> bool {
    let port_domains: Vec<Domain> = netlist
        .output_ports()
        .map(|(_, port)| netlist.net(port.net).domain)
        .collect();
    if port_domains.is_empty() {
        return false;
    }
    let groups = OutputGroups::new(netlist);
    let fully_voted = groups.groups().all(|(_, _, members)| {
        members.len() == 3
            && members
                .iter()
                .filter_map(|&member| port_domains[member].redundant_index())
                .fold([false; 3], |mut seen, index| {
                    seen[index] = true;
                    seen
                })
                .iter()
                .all(|&s| s)
    });
    fully_voted
}

/// Checks that every cross-domain reader of a redundant-domain net is a
/// majority voter.
fn merging_confined_to_voters(netlist: &Netlist) -> bool {
    netlist.cells().all(|(_, cell)| {
        let output_domain = netlist.net(cell.output).domain;
        cell.inputs.iter().all(|&input| {
            let domain = netlist.net(input).domain;
            !domain.is_redundant() || domain == output_domain || cell.domain == Domain::Voter
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_core::{apply_tmr, TmrConfig};
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap, Design};

    fn implement(design: &Design, device: &Device, seed: u64) -> RoutedDesign {
        let netlist = techmap(&optimize(&lower(design).unwrap())).unwrap();
        place_and_route(device, &netlist, seed).unwrap()
    }

    #[test]
    fn tmr_counter_satisfies_the_structural_preconditions() {
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let routed = implement(&design, &device, 5);
        let analysis = StaticAnalysis::run(&device, &routed);
        assert!(analysis.voted_tmr());
        assert_eq!(analysis.bit_count(), device.config_layout().bit_count());
        assert!(analysis.design_related() > 0);
        assert!(analysis.design_related() < analysis.bit_count());
        // The observable set is a strict subset of the design-related bits:
        // single-redundant-domain faults are voted out.
        assert!(analysis.observable_bits().len() < analysis.design_related());
        assert!(analysis.critical_bits().count() > 0);
        assert!(analysis.design().contains("counter"));
    }

    #[test]
    fn unprotected_counter_is_not_a_voted_tmr_design() {
        let device = Device::small(5, 5);
        let routed = implement(&counter(4), &device, 5);
        let analysis = StaticAnalysis::run(&device, &routed);
        assert!(!analysis.voted_tmr());
        // Without the preconditions every non-benign bit stays observable and
        // no bit crosses domains (there is only one domain).
        assert_eq!(analysis.critical_bits().count(), 0);
        for &bit in analysis.observable_bits() {
            assert_ne!(analysis.verdict(bit), Verdict::Benign);
        }
    }

    #[test]
    fn cluster_verdicts_merge_accumulated_single_domains_into_crossings() {
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let routed = implement(&design, &device, 5);
        let analysis = StaticAnalysis::run(&device, &routed);
        assert!(analysis.voted_tmr());

        let tags: Vec<(usize, Domain)> = analysis.maskable_domains().collect();
        assert!(!tags.is_empty(), "a voted TMR design has maskable bits");
        for &(bit, domain) in &tags {
            assert_eq!(analysis.verdict(bit), Verdict::SingleDomain(domain));
            assert!(domain.is_redundant());
            assert!(!analysis.fault_possibly_observable(&[bit]));
        }

        // Two individually maskable bits of *different* domains merge into a
        // TMR-defeating crossing: the accumulation failure mode.
        let tr0 = tags.iter().find(|(_, d)| *d == Domain::Tr0).unwrap().0;
        let tr1 = tags.iter().find(|(_, d)| *d == Domain::Tr1).unwrap().0;
        let merged = analysis.verdict_for_fault(&[tr0, tr1]);
        assert!(merged.may_defeat_tmr(), "got {merged}");
        assert!(analysis.fault_possibly_observable(&[tr0, tr1]));

        // Two maskable bits of the *same* domain stay maskable together.
        let same: Vec<usize> = tags
            .iter()
            .filter(|(_, d)| *d == Domain::Tr2)
            .take(2)
            .map(|&(bit, _)| bit)
            .collect();
        assert_eq!(same.len(), 2);
        assert_eq!(
            analysis.verdict_for_fault(&same),
            Verdict::SingleDomain(Domain::Tr2)
        );
        assert!(!analysis.fault_possibly_observable(&same));

        // Benign bits never change a merged verdict.
        let benign = (0..analysis.bit_count())
            .find(|&bit| analysis.verdict(bit) == Verdict::Benign)
            .unwrap();
        assert_eq!(
            analysis.verdict_for_fault(&[benign, tr0]),
            analysis.verdict_for_fault(&[tr0])
        );
        assert_eq!(analysis.verdict_for_fault(&[benign]), Verdict::Benign);

        // Singleton merges reproduce the per-bit verdict exactly: the stored
        // domain masks are the exact affected sets, not a verdict round-trip.
        for bit in (0..analysis.bit_count()).step_by(197) {
            assert_eq!(analysis.verdict_for_fault(&[bit]), analysis.verdict(bit));
        }

        // A SingleDomain(Voter) verdict can hide a co-affected redundant
        // domain behind its least-protected-wins precedence; the merge must
        // see through it: such a bit clustered with a *different* redundant
        // domain is TMR-defeating.
        let hiding = (0..analysis.bit_count()).find_map(|bit| {
            if analysis.verdict(bit) != Verdict::SingleDomain(Domain::Voter) {
                return None;
            }
            let affected = classify_bit(&device, &routed, bit).affected_domains(&routed);
            let hidden = affected.iter().copied().find(|d| d.is_redundant())?;
            Some((bit, hidden))
        });
        if let Some((bit, hidden)) = hiding {
            let other = tags
                .iter()
                .find(|(_, domain)| *domain != hidden)
                .map(|&(tagged, _)| tagged)
                .expect("three redundant domains are tagged");
            assert!(
                analysis.verdict_for_fault(&[bit, other]).may_defeat_tmr(),
                "the hidden redundant domain of bit {bit} must surface in the merge"
            );
        }
    }

    #[test]
    fn unprotected_designs_have_no_maskable_tags() {
        let device = Device::small(5, 5);
        let routed = implement(&counter(4), &device, 5);
        let analysis = StaticAnalysis::run(&device, &routed);
        assert!(!analysis.voted_tmr());
        assert_eq!(analysis.maskable_domains().count(), 0);
    }

    #[test]
    fn critical_bits_are_exactly_the_domain_crossing_verdicts() {
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p3()).unwrap();
        let routed = implement(&design, &device, 5);
        let analysis = StaticAnalysis::run(&device, &routed);
        for bit in analysis.critical_bits() {
            assert!(analysis.verdict(bit).may_defeat_tmr());
            assert!(
                analysis.observable_bits().binary_search(&bit).is_ok(),
                "critical bits are always observable"
            );
        }
        let report = analysis.report();
        assert_eq!(
            report.defeating_bits.len(),
            analysis.critical_bits().count()
        );
        assert_eq!(
            report.benign
                + report.single_domain.values().sum::<usize>()
                + report.defeating_bits.len(),
            report.total_bits
        );
    }
}
