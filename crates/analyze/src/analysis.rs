//! The whole-bitstream static criticality analysis.

use crate::{CriticalityReport, Verdict};
use std::collections::BTreeMap;
use tmr_arch::Device;
use tmr_faultsim::{classify_bit, FaultClass};
use tmr_netlist::{Domain, Netlist};
use tmr_pnr::RoutedDesign;
use tmr_sim::OutputGroups;

/// The result of statically analyzing every configuration bit of a routed
/// design.
///
/// [`StaticAnalysis::run`] walks the complete configuration space — not a
/// random sample — and classifies each bit with `tmr-faultsim`'s structural
/// effect machinery ([`classify_bit`]) used *purely structurally*: the derived
/// fault overlay is never simulated, only the TMR domains of the affected
/// nets and sinks are inspected. This gives exhaustive coverage of the
/// domain-crossing bits (the paper's voter-defeating upsets) at a cost of
/// microseconds per bit, where the dynamic campaign pays a full multi-cycle
/// simulation per sampled bit.
///
/// # Soundness preconditions
///
/// A fault confined to one *redundant* domain is only guaranteed maskable
/// when the design is structurally a voted TMR circuit. `run` checks two
/// conditions and records the conjunction as [`StaticAnalysis::voted_tmr`]:
///
/// 1. **pad-voted outputs** — every word-level output bit is a triple whose
///    members carry all three redundant domains (the paper's "voters in the
///    output logic block"), and
/// 2. **voter-confined merging** — every cell that reads a net of a redundant
///    domain different from its own output's domain is tagged
///    [`Domain::Voter`] (majority voters are the only cross-domain readers
///    the TMR transformation produces).
///
/// When either check fails the analysis degrades conservatively: single-
/// domain faults are treated as observable, so pruning never skips a
/// simulation it cannot justify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticAnalysis {
    design: String,
    verdicts: Vec<Verdict>,
    design_related: usize,
    voted_tmr: bool,
    observable: Vec<usize>,
}

impl StaticAnalysis {
    /// Analyzes every configuration bit of `routed` on `device`.
    pub fn run(device: &Device, routed: &RoutedDesign) -> Self {
        let netlist = routed.netlist();
        let voted_tmr = outputs_fully_voted(netlist) && merging_confined_to_voters(netlist);
        let layout = device.config_layout();

        let mut verdicts = Vec::with_capacity(layout.bit_count());
        let mut observable = Vec::new();
        let mut design_related = 0;
        for bit in 0..layout.bit_count() {
            let resource = layout.resource_at(bit).expect("bit in range");
            if routed.resource_is_design_related(device, &resource) {
                design_related += 1;
            }
            let effect = classify_bit(device, routed, bit);
            let affected = effect.affected_domains(routed);
            let verdict = Verdict::from_affected_domains(&affected, effect.class);
            if verdict.possibly_observable(voted_tmr) {
                observable.push(bit);
            }
            verdicts.push(verdict);
        }

        Self {
            design: netlist.name().to_string(),
            verdicts,
            design_related,
            voted_tmr,
            observable,
        }
    }

    /// Name of the analyzed design.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Number of analyzed configuration bits (the whole configuration space).
    pub fn bit_count(&self) -> usize {
        self.verdicts.len()
    }

    /// Number of design-related bits (the dynamic campaign's fault list).
    pub fn design_related(&self) -> usize {
        self.design_related
    }

    /// Whether the design satisfied the structural TMR preconditions (see the
    /// type-level documentation); only then are single-redundant-domain
    /// faults excluded from the observable set.
    pub fn voted_tmr(&self) -> bool {
        self.voted_tmr
    }

    /// The verdict of one configuration bit.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the configuration space.
    pub fn verdict(&self, bit: usize) -> Verdict {
        self.verdicts[bit]
    }

    /// All verdicts, indexed by bit.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The sorted list of statically-possibly-observable bits — the
    /// simulation allow-list handed to
    /// [`tmr_faultsim::CampaignOptions::restrict_to`] (see
    /// [`crate::PruneWith`]).
    pub fn observable_bits(&self) -> &[usize] {
        &self.observable
    }

    /// Iterates over the TMR-defeating bits: every bit whose verdict is
    /// [`Verdict::DomainCrossing`], in configuration-memory order.
    pub fn critical_bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.may_defeat_tmr())
            .map(|(bit, _)| bit)
    }

    /// Aggregates the verdict map into a [`CriticalityReport`].
    pub fn report(&self) -> CriticalityReport {
        let mut benign = 0;
        let mut single_domain: BTreeMap<Domain, usize> = BTreeMap::new();
        let mut crossing: BTreeMap<(Domain, Domain), BTreeMap<FaultClass, usize>> = BTreeMap::new();
        let mut defeating_bits = Vec::new();
        for (bit, verdict) in self.verdicts.iter().enumerate() {
            match *verdict {
                Verdict::Benign => benign += 1,
                Verdict::SingleDomain(domain) => {
                    *single_domain.entry(domain).or_insert(0) += 1;
                }
                Verdict::DomainCrossing { domains, class } => {
                    *crossing
                        .entry(domains)
                        .or_default()
                        .entry(class)
                        .or_insert(0) += 1;
                    defeating_bits.push(bit);
                }
            }
        }
        CriticalityReport {
            design: self.design.clone(),
            total_bits: self.verdicts.len(),
            design_related: self.design_related,
            observable: self.observable.len(),
            voted_tmr: self.voted_tmr,
            benign,
            single_domain,
            crossing,
            defeating_bits,
        }
    }
}

/// Checks that every word-level output bit is a pad-voted triple covering all
/// three redundant domains.
fn outputs_fully_voted(netlist: &Netlist) -> bool {
    let port_domains: Vec<Domain> = netlist
        .output_ports()
        .map(|(_, port)| netlist.net(port.net).domain)
        .collect();
    if port_domains.is_empty() {
        return false;
    }
    let groups = OutputGroups::new(netlist);
    let fully_voted = groups.groups().all(|(_, _, members)| {
        members.len() == 3
            && members
                .iter()
                .filter_map(|&member| port_domains[member].redundant_index())
                .fold([false; 3], |mut seen, index| {
                    seen[index] = true;
                    seen
                })
                .iter()
                .all(|&s| s)
    });
    fully_voted
}

/// Checks that every cross-domain reader of a redundant-domain net is a
/// majority voter.
fn merging_confined_to_voters(netlist: &Netlist) -> bool {
    netlist.cells().all(|(_, cell)| {
        let output_domain = netlist.net(cell.output).domain;
        cell.inputs.iter().all(|&input| {
            let domain = netlist.net(input).domain;
            !domain.is_redundant() || domain == output_domain || cell.domain == Domain::Voter
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_core::{apply_tmr, TmrConfig};
    use tmr_designs::counter;
    use tmr_pnr::place_and_route;
    use tmr_synth::{lower, optimize, techmap, Design};

    fn implement(design: &Design, device: &Device, seed: u64) -> RoutedDesign {
        let netlist = techmap(&optimize(&lower(design).unwrap())).unwrap();
        place_and_route(device, &netlist, seed).unwrap()
    }

    #[test]
    fn tmr_counter_satisfies_the_structural_preconditions() {
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p2()).unwrap();
        let routed = implement(&design, &device, 5);
        let analysis = StaticAnalysis::run(&device, &routed);
        assert!(analysis.voted_tmr());
        assert_eq!(analysis.bit_count(), device.config_layout().bit_count());
        assert!(analysis.design_related() > 0);
        assert!(analysis.design_related() < analysis.bit_count());
        // The observable set is a strict subset of the design-related bits:
        // single-redundant-domain faults are voted out.
        assert!(analysis.observable_bits().len() < analysis.design_related());
        assert!(analysis.critical_bits().count() > 0);
        assert!(analysis.design().contains("counter"));
    }

    #[test]
    fn unprotected_counter_is_not_a_voted_tmr_design() {
        let device = Device::small(5, 5);
        let routed = implement(&counter(4), &device, 5);
        let analysis = StaticAnalysis::run(&device, &routed);
        assert!(!analysis.voted_tmr());
        // Without the preconditions every non-benign bit stays observable and
        // no bit crosses domains (there is only one domain).
        assert_eq!(analysis.critical_bits().count(), 0);
        for &bit in analysis.observable_bits() {
            assert_ne!(analysis.verdict(bit), Verdict::Benign);
        }
    }

    #[test]
    fn critical_bits_are_exactly_the_domain_crossing_verdicts() {
        let device = Device::small(8, 8);
        let design = apply_tmr(&counter(4), &TmrConfig::paper_p3()).unwrap();
        let routed = implement(&design, &device, 5);
        let analysis = StaticAnalysis::run(&device, &routed);
        for bit in analysis.critical_bits() {
            assert!(analysis.verdict(bit).may_defeat_tmr());
            assert!(
                analysis.observable_bits().binary_search(&bit).is_ok(),
                "critical bits are always observable"
            );
        }
        let report = analysis.report();
        assert_eq!(
            report.defeating_bits.len(),
            analysis.critical_bits().count()
        );
        assert_eq!(
            report.benign
                + report.single_domain.values().sum::<usize>()
                + report.defeating_bits.len(),
            report.total_bits
        );
    }
}
