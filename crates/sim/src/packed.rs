//! Two-plane packed three-valued words: 64 fault experiments per machine
//! word, 256 per wide vector.
//!
//! A [`TritVec`] carries one [`Trit`] per *lane* in two bit planes of `W`
//! machine words each:
//!
//! | plane | lane bit | meaning |
//! |-------|----------|---------|
//! | `val` | 0 / 1    | the known logic level of the lane |
//! | `unk` | 1        | the lane is `X` (unknown) |
//!
//! The representation is kept **canonical**: a lane whose `unk` bit is set
//! always has its `val` bit cleared. Canonical words compare per-lane trit
//! equality with two XORs ([`TritVec::diff`]), and the derived masks
//! `can_be_one = val | unk` and `can_be_zero = !val` make the exact
//! completion-enumeration semantics of the scalar simulator (`maj(X,v,v) =
//! v`, an AND with a 0 input is 0 regardless of `X`) a handful of bitwise
//! operations per lane word.
//!
//! The width is a const generic: [`TritWord`] (`W = 1`, 64 lanes) is the
//! scalar-tail instantiation, `TritVec<4>` (256 lanes) the wide one the
//! compiled engine deals full word batches into. Per-lane predicates
//! ([`LaneMask`]) share the same width so every derived mask stays a few
//! register-sized bitwise ops regardless of `W`.

use crate::Trit;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Not};

/// A per-lane boolean predicate over `64 * W` lanes: the mask type every
/// [`TritVec`] plane and derived mask (`diff`, `can_be_one`, …) is made of.
///
/// Lane `i` lives in bit `i % 64` of word `i / 64`. The bitwise operators
/// (`& | !`) apply lane-wise, so engine code reads identically at any width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneMask<const W: usize>(pub [u64; W]);

impl<const W: usize> LaneMask<W> {
    /// No lane set.
    pub const EMPTY: Self = Self([0; W]);
    /// Every lane set.
    pub const FULL: Self = Self([!0; W]);

    /// The mask with exactly `lane` set.
    pub fn bit(lane: usize) -> Self {
        debug_assert!(lane < 64 * W);
        let mut mask = Self::EMPTY;
        mask.0[lane / 64] = 1u64 << (lane % 64);
        mask
    }

    /// The mask covering the first `lanes` lanes (`0 < lanes <= 64 * W`).
    pub fn first(lanes: usize) -> Self {
        debug_assert!(lanes <= 64 * W);
        let mut mask = Self::EMPTY;
        for (i, word) in mask.0.iter_mut().enumerate() {
            let low = i * 64;
            if lanes >= low + 64 {
                *word = !0;
            } else if lanes > low {
                *word = (1u64 << (lanes - low)) - 1;
            }
        }
        mask
    }

    /// `true` if any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.0.iter().any(|&w| w != 0)
    }

    /// `true` if no lane is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        !self.any()
    }

    /// Whether `lane` is set.
    #[inline]
    pub fn get(self, lane: usize) -> bool {
        debug_assert!(lane < 64 * W);
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// Number of set lanes.
    pub fn count(self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// The index of the single 64-lane sub-word holding set bits, if exactly
    /// one does. Lets wide evaluators narrow an operation whose diverged
    /// lanes are confined to one sub-word down to 1×u64 mask arithmetic.
    #[inline]
    pub fn only_subword(self) -> Option<usize> {
        let mut found = None;
        for (i, &word) in self.0.iter().enumerate() {
            if word != 0 {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    }

    /// The 64-lane sub-word `sub` as a narrow mask.
    #[inline]
    pub fn subword(self, sub: usize) -> LaneMask<1> {
        LaneMask([self.0[sub]])
    }

    /// Calls `f` with the index of every set lane, in ascending order.
    #[inline]
    pub fn for_each(self, mut f: impl FnMut(usize)) {
        for (i, &word) in self.0.iter().enumerate() {
            let mut remaining = word;
            while remaining != 0 {
                f(i * 64 + remaining.trailing_zeros() as usize);
                remaining &= remaining - 1;
            }
        }
    }
}

impl<const W: usize> Default for LaneMask<W> {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl<const W: usize> BitAnd for LaneMask<W> {
    type Output = Self;
    #[inline]
    fn bitand(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a &= b;
        }
        self
    }
}

impl<const W: usize> BitOr for LaneMask<W> {
    type Output = Self;
    #[inline]
    fn bitor(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a |= b;
        }
        self
    }
}

impl<const W: usize> Not for LaneMask<W> {
    type Output = Self;
    #[inline]
    fn not(mut self) -> Self {
        for a in self.0.iter_mut() {
            *a = !*a;
        }
        self
    }
}

impl<const W: usize> BitAndAssign for LaneMask<W> {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        *self = *self & rhs;
    }
}

impl<const W: usize> BitOrAssign for LaneMask<W> {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        *self = *self | rhs;
    }
}

/// `64 * W` three-valued lanes packed into two [`LaneMask`] bit planes.
///
/// See the module documentation for the encoding and the canonical-form
/// invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TritVec<const W: usize> {
    /// Known-value plane (bit set = logic 1); always 0 where `unk` is set.
    pub val: LaneMask<W>,
    /// Unknown plane (bit set = `X`).
    pub unk: LaneMask<W>,
}

/// The 64-lane scalar-tail instantiation of [`TritVec`].
pub type TritWord = TritVec<1>;

impl<const W: usize> Default for TritVec<W> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const W: usize> TritVec<W> {
    /// All lanes at logic 0.
    pub const ZERO: Self = Self {
        val: LaneMask::EMPTY,
        unk: LaneMask::EMPTY,
    };
    /// All lanes at logic 1.
    pub const ONE: Self = Self {
        val: LaneMask::FULL,
        unk: LaneMask::EMPTY,
    };
    /// All lanes unknown.
    pub const X: Self = Self {
        val: LaneMask::EMPTY,
        unk: LaneMask::FULL,
    };

    /// The same trit in every lane.
    #[inline]
    pub fn broadcast(value: Trit) -> Self {
        match value {
            Trit::Zero => Self::ZERO,
            Trit::One => Self::ONE,
            Trit::X => Self::X,
        }
    }

    /// The trit in `lane` (0..64 * W).
    pub fn lane(self, lane: usize) -> Trit {
        if self.unk.get(lane) {
            Trit::X
        } else if self.val.get(lane) {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Replaces the trit in `lane` (0..64 * W).
    pub fn set_lane(&mut self, lane: usize, value: Trit) {
        let bit = LaneMask::bit(lane);
        self.val &= !bit;
        self.unk &= !bit;
        match value {
            Trit::Zero => {}
            Trit::One => self.val |= bit,
            Trit::X => self.unk |= bit,
        }
    }

    /// The 64-lane sub-word `sub` as a narrow word.
    #[inline]
    pub fn subword(self, sub: usize) -> TritVec<1> {
        TritVec {
            val: self.val.subword(sub),
            unk: self.unk.subword(sub),
        }
    }

    /// Replaces the 64-lane sub-word `sub` with a narrow word.
    #[inline]
    pub fn set_subword(&mut self, sub: usize, narrow: TritVec<1>) {
        self.val.0[sub] = narrow.val.0[0];
        self.unk.0[sub] = narrow.unk.0[0];
    }

    /// Lane mask of the positions where the two words carry *different*
    /// trits (`X` equals `X`). Requires both words to be canonical.
    #[inline]
    pub fn diff(self, other: Self) -> LaneMask<W> {
        let mut mask = LaneMask::EMPTY;
        for i in 0..W {
            mask.0[i] = (self.val.0[i] ^ other.val.0[i]) | (self.unk.0[i] ^ other.unk.0[i]);
        }
        mask
    }

    /// Forces the lanes in `mask` to `X`, leaving the others untouched.
    #[inline]
    pub fn poison(self, mask: LaneMask<W>) -> Self {
        Self {
            val: self.val & !mask,
            unk: self.unk | mask,
        }
    }

    /// Lane mask of the positions that *could* be 1 under some completion of
    /// the unknowns (`1` or `X`).
    #[inline]
    pub fn can_be_one(self) -> LaneMask<W> {
        self.val | self.unk
    }

    /// Lane mask of the positions that *could* be 0 under some completion of
    /// the unknowns (`0` or `X`). Relies on the canonical form (`val` clear
    /// where `unk` is set).
    #[inline]
    pub fn can_be_zero(self) -> LaneMask<W> {
        !self.val
    }

    /// Lane mask of the positions known to be 0.
    #[inline]
    pub fn known_zero(self) -> LaneMask<W> {
        !self.val & !self.unk
    }

    /// Reconstructs a canonical word from "can be 1" / "can be 0" masks
    /// (each lane must satisfy at least one of the two).
    #[inline]
    pub fn from_possibilities(can_one: LaneMask<W>, can_zero: LaneMask<W>) -> Self {
        Self {
            val: can_one & !can_zero,
            unk: can_one & can_zero,
        }
    }

    /// Lane-wise selection: the lanes in `mask` from `self`, the rest from
    /// `fallback` — the merge step of restricted evaluation, where only the
    /// lanes whose operands diverged are enumerated and every other lane
    /// keeps its golden value.
    #[inline]
    pub fn select_lanes(self, fallback: Self, mask: LaneMask<W>) -> Self {
        Self {
            val: (self.val & mask) | (fallback.val & !mask),
            unk: (self.unk & mask) | (fallback.unk & !mask),
        }
    }

    /// Pairwise wired-resolution against `other` in the lanes of `mask`:
    /// lanes where the two words agree on a known value keep it, lanes where
    /// they differ (or either is `X`) become `X` — the packed form of
    /// [`Trit::resolve`] used for bridged nets.
    #[inline]
    pub fn resolve_masked(self, other: Self, mask: LaneMask<W>) -> Self {
        let conflict = self.diff(other) | self.unk | other.unk;
        self.poison(conflict & mask)
    }
}

/// The packed majority vote of `values` across every lane — the bit-parallel
/// form of [`crate::majority`] at any lane width: a value wins a lane when
/// strictly more than half of the members carry it there; a single member
/// passes through.
pub fn majority_word<const W: usize>(values: &[TritVec<W>]) -> TritVec<W> {
    match values {
        [] => TritVec::X,
        [single] => *single,
        [a, b] => {
            let one = a.val & b.val;
            let zero = a.known_zero() & b.known_zero();
            TritVec {
                val: one,
                unk: !(one | zero),
            }
        }
        [a, b, c] => {
            let one = (a.val & b.val) | (a.val & c.val) | (b.val & c.val);
            let (za, zb, zc) = (a.known_zero(), b.known_zero(), c.known_zero());
            let zero = (za & zb) | (za & zc) | (zb & zc);
            TritVec {
                val: one,
                unk: !(one | zero),
            }
        }
        many => {
            let n = many.len();
            let ones = count_exceeds_half(many.iter().map(|w| w.val), n);
            let zeros = count_exceeds_half(many.iter().map(|w| w.known_zero()), n);
            TritVec {
                val: ones,
                unk: !(ones | zeros),
            }
        }
    }
}

/// Lane mask where the population count of the indicator masks is strictly
/// greater than `n / 2` (the majority threshold for `n` members).
fn count_exceeds_half<const W: usize>(
    indicators: impl Iterator<Item = LaneMask<W>>,
    n: usize,
) -> LaneMask<W> {
    // Bit-serial carry-save accumulation: `planes[k]` holds bit `k` of the
    // per-lane count.
    let mut planes: Vec<LaneMask<W>> = Vec::new();
    for word in indicators {
        let mut carry = word;
        for plane in planes.iter_mut() {
            let overflow = *plane & carry;
            *plane ^= carry;
            carry = overflow;
        }
        if carry.any() {
            planes.push(carry);
        }
    }
    // Per-lane comparison `count > threshold` against the constant.
    let threshold = n / 2;
    let width = planes
        .len()
        .max(usize::BITS as usize - threshold.leading_zeros() as usize);
    let mut greater = LaneMask::EMPTY;
    let mut equal_so_far = LaneMask::FULL;
    for k in (0..width).rev() {
        let plane = planes.get(k).copied().unwrap_or(LaneMask::EMPTY);
        if (threshold >> k) & 1 == 0 {
            greater |= equal_so_far & plane;
            equal_so_far &= !plane;
        } else {
            equal_so_far &= plane;
        }
    }
    greater
}

impl<const W: usize> std::ops::BitXorAssign for LaneMask<W> {
    #[inline]
    fn bitxor_assign(&mut self, rhs: Self) {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a ^= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority;

    const TRITS: [Trit; 3] = [Trit::Zero, Trit::One, Trit::X];

    #[test]
    fn lane_round_trip_and_broadcast() {
        let mut word = TritWord::broadcast(Trit::Zero);
        word.set_lane(3, Trit::One);
        word.set_lane(7, Trit::X);
        assert_eq!(word.lane(3), Trit::One);
        assert_eq!(word.lane(7), Trit::X);
        assert_eq!(word.lane(0), Trit::Zero);
        assert_eq!(TritWord::broadcast(Trit::X).lane(63), Trit::X);
        assert_eq!(TritWord::broadcast(Trit::One).lane(63), Trit::One);
        // Overwriting X with a known value restores the canonical form.
        word.set_lane(7, Trit::One);
        assert_eq!(word.lane(7), Trit::One);
        assert!(!word.unk.get(7));
    }

    #[test]
    fn wide_lane_round_trip_crosses_word_boundaries() {
        let mut wide = TritVec::<4>::broadcast(Trit::Zero);
        for lane in [0usize, 63, 64, 127, 128, 255] {
            wide.set_lane(lane, Trit::One);
            assert_eq!(wide.lane(lane), Trit::One, "lane {lane}");
            wide.set_lane(lane, Trit::X);
            assert_eq!(wide.lane(lane), Trit::X, "lane {lane}");
        }
        assert_eq!(wide.lane(200), Trit::Zero);
        assert_eq!(TritVec::<4>::broadcast(Trit::X).lane(255), Trit::X);
    }

    #[test]
    fn lane_mask_first_and_bit_ops() {
        let first = LaneMask::<4>::first(130);
        assert_eq!(first.count(), 130);
        assert!(first.get(129) && !first.get(130));
        assert_eq!(LaneMask::<4>::first(256), LaneMask::FULL);
        assert_eq!(LaneMask::<1>::first(64), LaneMask::FULL);
        assert_eq!(LaneMask::<1>::first(3).0[0], 0b111);
        let bit = LaneMask::<4>::bit(70);
        assert!(bit.get(70));
        assert_eq!(bit.count(), 1);
        assert!((bit & !bit).is_empty());
        assert!((bit | LaneMask::bit(3)).get(3));
        let mut seen = Vec::new();
        (bit | LaneMask::bit(3)).for_each(|lane| seen.push(lane));
        assert_eq!(seen, [3, 70]);
    }

    #[test]
    fn diff_matches_scalar_equality() {
        for &a in &TRITS {
            for &b in &TRITS {
                let wa = TritWord::broadcast(a);
                let wb = TritWord::broadcast(b);
                let expect = if a == b {
                    LaneMask::EMPTY
                } else {
                    LaneMask::FULL
                };
                assert_eq!(wa.diff(wb), expect, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn resolve_masked_matches_scalar_resolve() {
        for &a in &TRITS {
            for &b in &TRITS {
                let resolved =
                    TritWord::broadcast(a).resolve_masked(TritWord::broadcast(b), LaneMask::FULL);
                assert_eq!(resolved.lane(0), a.resolve(b), "{a} resolve {b}");
                // Outside the mask the value is untouched.
                let untouched =
                    TritWord::broadcast(a).resolve_masked(TritWord::broadcast(b), LaneMask::EMPTY);
                assert_eq!(untouched.lane(0), a, "{a} unmasked vs {b}");
            }
        }
    }

    /// Exhaustive check of the packed majority against the scalar one for
    /// every member-count up to 4 and every trit combination, at both
    /// instantiated widths.
    #[test]
    fn majority_word_matches_scalar_majority() {
        for n in 1..=4usize {
            let mut combo = vec![0usize; n];
            loop {
                let trits: Vec<Trit> = combo.iter().map(|&i| TRITS[i]).collect();
                let words: Vec<TritWord> = trits.iter().map(|&t| TritWord::broadcast(t)).collect();
                let packed = majority_word(&words);
                assert_eq!(packed.lane(17), majority(&trits), "{trits:?}");
                let wide: Vec<TritVec<4>> = trits.iter().map(|&t| TritVec::broadcast(t)).collect();
                let packed_wide = majority_word(&wide);
                assert_eq!(packed_wide.lane(201), majority(&trits), "wide {trits:?}");
                // Advance the odometer.
                let mut done = true;
                for digit in combo.iter_mut() {
                    *digit += 1;
                    if *digit < TRITS.len() {
                        done = false;
                        break;
                    }
                    *digit = 0;
                }
                if done {
                    break;
                }
            }
        }
    }

    #[test]
    fn majority_votes_lanes_independently() {
        let mut a = TritVec::<4>::broadcast(Trit::One);
        let mut b = TritVec::<4>::broadcast(Trit::One);
        let c = TritVec::<4>::broadcast(Trit::Zero);
        a.set_lane(69, Trit::Zero);
        b.set_lane(69, Trit::X);
        let voted = majority_word(&[a, b, c]);
        assert_eq!(voted.lane(0), Trit::One, "2-of-3 ones");
        assert_eq!(voted.lane(69), Trit::Zero, "0, X, 0 votes zero");
    }

    #[test]
    fn count_exceeds_half_thresholds() {
        // 5 members, threshold > 2: exactly 3 set indicators fire.
        let full = LaneMask::<1>::FULL;
        let empty = LaneMask::<1>::EMPTY;
        let set = [full, full, full, empty, empty];
        assert_eq!(count_exceeds_half(set.iter().copied(), 5), full);
        let two = [full, full, empty, empty, empty];
        assert_eq!(count_exceeds_half(two.iter().copied(), 5), empty);
    }
}
