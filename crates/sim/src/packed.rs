//! Two-plane packed three-valued words: 64 fault experiments per machine
//! word.
//!
//! A [`TritWord`] carries one [`Trit`] per *lane* in two bit planes:
//!
//! | plane | lane bit | meaning |
//! |-------|----------|---------|
//! | `val` | 0 / 1    | the known logic level of the lane |
//! | `unk` | 1        | the lane is `X` (unknown) |
//!
//! The representation is kept **canonical**: a lane whose `unk` bit is set
//! always has its `val` bit cleared. Canonical words compare per-lane trit
//! equality with two XORs ([`TritWord::diff`]), and the derived masks
//! `can_be_one = val | unk` and `can_be_zero = !val` make the exact
//! completion-enumeration semantics of the scalar simulator (`maj(X,v,v) =
//! v`, an AND with a 0 input is 0 regardless of `X`) a handful of bitwise
//! operations per 64 lanes.

use crate::Trit;

/// 64 three-valued lanes packed into two `u64` bit planes.
///
/// Lane `i` lives in bit `i` of both planes. See the module documentation
/// for the encoding and the canonical-form invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TritWord {
    /// Known-value plane (bit set = logic 1); always 0 where `unk` is set.
    pub val: u64,
    /// Unknown plane (bit set = `X`).
    pub unk: u64,
}

impl TritWord {
    /// All 64 lanes at logic 0.
    pub const ZERO: TritWord = TritWord { val: 0, unk: 0 };
    /// All 64 lanes at logic 1.
    pub const ONE: TritWord = TritWord { val: !0, unk: 0 };
    /// All 64 lanes unknown.
    pub const X: TritWord = TritWord { val: 0, unk: !0 };

    /// The same trit in every lane.
    pub fn broadcast(value: Trit) -> Self {
        match value {
            Trit::Zero => Self::ZERO,
            Trit::One => Self::ONE,
            Trit::X => Self::X,
        }
    }

    /// The trit in `lane` (0..64).
    pub fn lane(self, lane: usize) -> Trit {
        debug_assert!(lane < 64);
        if (self.unk >> lane) & 1 == 1 {
            Trit::X
        } else if (self.val >> lane) & 1 == 1 {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Replaces the trit in `lane` (0..64).
    pub fn set_lane(&mut self, lane: usize, value: Trit) {
        debug_assert!(lane < 64);
        let bit = 1u64 << lane;
        self.val &= !bit;
        self.unk &= !bit;
        match value {
            Trit::Zero => {}
            Trit::One => self.val |= bit,
            Trit::X => self.unk |= bit,
        }
    }

    /// Lane mask of the positions where the two words carry *different*
    /// trits (`X` equals `X`). Requires both words to be canonical.
    pub fn diff(self, other: TritWord) -> u64 {
        (self.val ^ other.val) | (self.unk ^ other.unk)
    }

    /// Forces the lanes in `mask` to `X`, leaving the others untouched.
    pub fn poison(self, mask: u64) -> TritWord {
        TritWord {
            val: self.val & !mask,
            unk: self.unk | mask,
        }
    }

    /// Lane mask of the positions that *could* be 1 under some completion of
    /// the unknowns (`1` or `X`).
    pub fn can_be_one(self) -> u64 {
        self.val | self.unk
    }

    /// Lane mask of the positions that *could* be 0 under some completion of
    /// the unknowns (`0` or `X`). Relies on the canonical form (`val` clear
    /// where `unk` is set).
    pub fn can_be_zero(self) -> u64 {
        !self.val
    }

    /// Lane mask of the positions known to be 0.
    pub fn known_zero(self) -> u64 {
        !self.val & !self.unk
    }

    /// Reconstructs a canonical word from "can be 1" / "can be 0" masks
    /// (each lane must satisfy at least one of the two).
    pub fn from_possibilities(can_one: u64, can_zero: u64) -> TritWord {
        TritWord {
            val: can_one & !can_zero,
            unk: can_one & can_zero,
        }
    }

    /// Pairwise wired-resolution against `other` in the lanes of `mask`:
    /// lanes where the two words agree on a known value keep it, lanes where
    /// they differ (or either is `X`) become `X` — the packed form of
    /// [`Trit::resolve`] used for bridged nets.
    pub fn resolve_masked(self, other: TritWord, mask: u64) -> TritWord {
        let conflict = self.diff(other) | self.unk | other.unk;
        self.poison(conflict & mask)
    }
}

/// The packed majority vote of `values` across every lane — the bit-parallel
/// form of [`crate::majority`]: a value wins a lane when strictly more than
/// half of the members carry it there; a single member passes through.
pub fn majority_word(values: &[TritWord]) -> TritWord {
    match values {
        [] => TritWord::X,
        [single] => *single,
        [a, b] => {
            let one = a.val & b.val;
            let zero = a.known_zero() & b.known_zero();
            TritWord {
                val: one,
                unk: !(one | zero),
            }
        }
        [a, b, c] => {
            let one = (a.val & b.val) | (a.val & c.val) | (b.val & c.val);
            let (za, zb, zc) = (a.known_zero(), b.known_zero(), c.known_zero());
            let zero = (za & zb) | (za & zc) | (zb & zc);
            TritWord {
                val: one,
                unk: !(one | zero),
            }
        }
        many => {
            let n = many.len();
            let ones = count_exceeds_half(many.iter().map(|w| w.val), n);
            let zeros = count_exceeds_half(many.iter().map(|w| w.known_zero()), n);
            TritWord {
                val: ones,
                unk: !(ones | zeros),
            }
        }
    }
}

/// Lane mask where the population count of the indicator words is strictly
/// greater than `n / 2` (the majority threshold for `n` members).
fn count_exceeds_half(indicators: impl Iterator<Item = u64>, n: usize) -> u64 {
    // Bit-serial carry-save accumulation: `planes[k]` holds bit `k` of the
    // per-lane count.
    let mut planes: Vec<u64> = Vec::new();
    for word in indicators {
        let mut carry = word;
        for plane in planes.iter_mut() {
            let overflow = *plane & carry;
            *plane ^= carry;
            carry = overflow;
        }
        if carry != 0 {
            planes.push(carry);
        }
    }
    // Per-lane comparison `count > threshold` against the constant.
    let threshold = n / 2;
    let width = planes
        .len()
        .max(usize::BITS as usize - threshold.leading_zeros() as usize);
    let mut greater = 0u64;
    let mut equal_so_far = !0u64;
    for k in (0..width).rev() {
        let plane = planes.get(k).copied().unwrap_or(0);
        if (threshold >> k) & 1 == 0 {
            greater |= equal_so_far & plane;
            equal_so_far &= !plane;
        } else {
            equal_so_far &= plane;
        }
    }
    greater
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority;

    const TRITS: [Trit; 3] = [Trit::Zero, Trit::One, Trit::X];

    #[test]
    fn lane_round_trip_and_broadcast() {
        let mut word = TritWord::broadcast(Trit::Zero);
        word.set_lane(3, Trit::One);
        word.set_lane(7, Trit::X);
        assert_eq!(word.lane(3), Trit::One);
        assert_eq!(word.lane(7), Trit::X);
        assert_eq!(word.lane(0), Trit::Zero);
        assert_eq!(TritWord::broadcast(Trit::X).lane(63), Trit::X);
        assert_eq!(TritWord::broadcast(Trit::One).lane(63), Trit::One);
        // Overwriting X with a known value restores the canonical form.
        word.set_lane(7, Trit::One);
        assert_eq!(word.lane(7), Trit::One);
        assert_eq!(word.unk & (1 << 7), 0);
    }

    #[test]
    fn diff_matches_scalar_equality() {
        for &a in &TRITS {
            for &b in &TRITS {
                let wa = TritWord::broadcast(a);
                let wb = TritWord::broadcast(b);
                let expect = if a == b { 0 } else { !0u64 };
                assert_eq!(wa.diff(wb), expect, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn resolve_masked_matches_scalar_resolve() {
        for &a in &TRITS {
            for &b in &TRITS {
                let resolved = TritWord::broadcast(a).resolve_masked(TritWord::broadcast(b), !0);
                assert_eq!(resolved.lane(0), a.resolve(b), "{a} resolve {b}");
                // Outside the mask the value is untouched.
                let untouched = TritWord::broadcast(a).resolve_masked(TritWord::broadcast(b), 0);
                assert_eq!(untouched.lane(0), a, "{a} unmasked vs {b}");
            }
        }
    }

    /// Exhaustive check of the packed majority against the scalar one for
    /// every member-count up to 4 and every trit combination.
    #[test]
    fn majority_word_matches_scalar_majority() {
        for n in 1..=4usize {
            let mut combo = vec![0usize; n];
            loop {
                let trits: Vec<Trit> = combo.iter().map(|&i| TRITS[i]).collect();
                let words: Vec<TritWord> = trits.iter().map(|&t| TritWord::broadcast(t)).collect();
                let packed = majority_word(&words);
                assert_eq!(packed.lane(17), majority(&trits), "{trits:?}");
                // Advance the odometer.
                let mut done = true;
                for digit in combo.iter_mut() {
                    *digit += 1;
                    if *digit < TRITS.len() {
                        done = false;
                        break;
                    }
                    *digit = 0;
                }
                if done {
                    break;
                }
            }
        }
    }

    #[test]
    fn majority_votes_lanes_independently() {
        let mut a = TritWord::broadcast(Trit::One);
        let mut b = TritWord::broadcast(Trit::One);
        let c = TritWord::broadcast(Trit::Zero);
        a.set_lane(5, Trit::Zero);
        b.set_lane(5, Trit::X);
        let voted = majority_word(&[a, b, c]);
        assert_eq!(voted.lane(0), Trit::One, "2-of-3 ones");
        assert_eq!(voted.lane(5), Trit::Zero, "0, X, 0 votes zero");
    }

    #[test]
    fn count_exceeds_half_thresholds() {
        // 5 members, threshold > 2: exactly 3 set indicators fire.
        let set = [!0u64, !0, !0, 0, 0];
        assert_eq!(count_exceeds_half(set.iter().copied(), 5), !0);
        let two = [!0u64, !0, 0, 0, 0];
        assert_eq!(count_exceeds_half(two.iter().copied(), 5), 0);
    }
}
