//! The compiled, levelized, bit-parallel, event-driven fault simulator.
//!
//! The interpreting [`Simulator`](crate::Simulator) walks the netlist
//! cell-by-cell through id-indirected lookups and allocates per-cell input
//! vectors on every evaluation — fine as a semantics oracle, hopeless as the
//! inner loop of a fault-injection campaign. [`CompiledNetlist`] compiles a
//! netlist **once** into a flat, cache-friendly instruction stream
//! (topologically levelized combinational ops, flip-flop records, port
//! tables, per-net successor-level wake lists) and then evaluates **up to
//! 256 fault experiments at a time** over two-plane packed trits
//! ([`TritVec`]): every gate becomes a handful of bitwise operations shared
//! by all lanes, with the exact completion-enumeration `X` semantics of the
//! interpreter preserved (`maj(X, v, v) = v`). The engine picks the word
//! width per batch — wide `4×u64` vectors for full batches, scalar `1×u64`
//! tails for the rest.
//!
//! Fault simulation is *incremental* and *event-driven* on top of that:
//! each experiment word is seeded from the cached fault-free run
//! ([`PackedGolden`]), only the static fan-out cone of the faulted
//! cells/nets ([`tmr_netlist::FanoutIndex`]) is re-evaluated, and within the
//! cone three exact skipping layers compose. A **dirty-level mask** —
//! seeded from the word's injection points and re-armed by flip-flop state
//! divergence — skips every level whose operand words are unchanged against
//! the golden frame. A **per-instruction divergence check** then skips any
//! visited instruction whose operand lanes are all golden-equal and which no
//! overlay targets: its output is provably the golden value, and epoch
//! stamps on the net scratch route downstream reads to the golden frame.
//! Finally, evaluated instructions enumerate **only the diverged lanes**
//! (the completion enumeration starts from the need mask, and the golden
//! value is merged back into the clean lanes), so the bitwise work tracks
//! the number of diverged lanes instead of the word width. A lane exits
//! early the cycle its outcome is decided — either because its voted
//! outputs diverged (first error cycle found) or because its state
//! re-converged with golden (a pure state fault can never diverge again).
//!
//! Faults that bridge two nets (`shorted_nets`) couple values *backwards*
//! against the topological order; words containing such lanes keep the
//! interpreter's multi-pass settling loop — including its per-pass `changed`
//! bookkeeping and the oscillation poisoning after the fourth pass — but run
//! it *inside the cone* (both bridge endpoints seed the cone, which closes
//! it over every short-affected reader), with the same per-instruction
//! divergence skipping carrying the event-driven savings, so results stay
//! bit-identical there too. The interpreter remains available as a
//! differential oracle (`TMR_SIM=interp` in the campaign layer), and the
//! exhaustive evaluation of every cone op over all lanes stays reachable for
//! A/B measurement (`TMR_SIM=compiled-full`, the `event_driven: false` mode
//! of [`CompiledNetlist::run_lanes`]).

use crate::compare::majority;
use crate::packed::{majority_word, LaneMask, TritVec, TritWord};
use crate::stats::SimStats;
use crate::{FaultOverlay, GoldenRun, OutputGroups, SimError, SinkRef, Trit};
use std::collections::HashMap;
use tmr_netlist::{CellKind, FanoutIndex, Netlist};

/// Sentinel for "this cell has no op / flip-flop slot".
const NONE: u32 = u32::MAX;

/// Maximum number of experiment lanes one [`CompiledNetlist::run_lanes`]
/// batch evaluates in a single stream pass (the wide `4×u64` word).
pub const MAX_LANES: usize = 256;

/// One combinational instruction of the compiled stream.
#[derive(Debug, Clone)]
struct Op {
    /// Output net.
    out: u32,
    /// First operand slot in [`CompiledNetlist::operands`].
    operand_start: u32,
    /// Number of inputs (0..=6).
    k: u8,
    /// Pure pass-through (`Buf` / `Ibuf` / `Obuf`).
    copy: bool,
    /// The cell is a LUT, so campaign truth-table overrides apply to it.
    lut: bool,
    /// Truth table over the `k` inputs (one bit per input assignment).
    init: u64,
}

/// One flip-flop record of the compiled stream.
#[derive(Debug, Clone)]
struct CompiledFf {
    /// The `D` input net.
    d_net: u32,
    /// The `Q` output net.
    q_net: u32,
    /// Power-up value.
    init: bool,
}

/// A netlist compiled for levelized, event-driven, bit-parallel evaluation.
///
/// Built once per netlist with [`CompiledNetlist::compile`]; immutable and
/// self-contained afterwards (it borrows nothing from the netlist), so it
/// can be cached as a pipeline artifact and shared across campaign worker
/// threads behind an `Arc`.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    net_count: usize,
    /// Combinational instructions in topological (fanin-first) order — the
    /// same levelization order the interpreter uses, which full-evaluation
    /// mode relies on to reproduce its pass-by-pass settling exactly.
    ops: Vec<Op>,
    /// Flat operand net table (`Op::operand_start` indexes into it).
    operands: Vec<u32>,
    /// Cell index → op index (or [`NONE`]).
    op_of_cell: Vec<u32>,
    ffs: Vec<CompiledFf>,
    /// Cell index → flip-flop slot (or [`NONE`]).
    ff_of_cell: Vec<u32>,
    /// Input-port nets, in stimulus order.
    input_nets: Vec<u32>,
    /// Output-port nets, in trace order.
    outputs: Vec<u32>,
    /// Port index → output position (or [`NONE`]).
    output_of_port: Vec<u32>,
    /// Pad-voting groups: member positions into `outputs`.
    groups: Vec<Vec<usize>>,
    /// The static fan-out cone index used for incremental re-simulation.
    index: FanoutIndex,
    /// Logic level of every op (parallel to `ops`), from the levelization.
    op_level: Vec<u32>,
    /// Number of distinct combinational levels (`max(op_level) + 1`).
    level_count: usize,
    /// Net index → the op driving it (or [`NONE`]). Bridged words pull the
    /// drivers of shorted nets into the evaluated cone so partner reads
    /// resolve against live values.
    driver_op_of_net: Vec<u32>,
    /// Net index → the flip-flop slot driving it (or [`NONE`]).
    driver_ff_of_net: Vec<u32>,
    /// CSR offsets into `net_wake_levels`, one slot per net plus a tail
    /// sentinel.
    net_wake_start: Vec<u32>,
    /// Distinct, sorted levels of the combinational instructions reading
    /// each net — the successor-level wake sets of the event-driven
    /// scheduler, derived from the [`FanoutIndex`] sink relation.
    net_wake_levels: Vec<u32>,
}

/// A small fixed-capacity bitset over the compiled stream's logic levels:
/// the per-word dirty-level mask of the event-driven scheduler.
#[derive(Debug, Clone)]
struct LevelSet {
    bits: Vec<u64>,
}

impl LevelSet {
    fn new(levels: usize) -> Self {
        Self {
            bits: vec![0; levels.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, level: u32) {
        self.bits[(level / 64) as usize] |= 1u64 << (level % 64);
    }

    #[inline]
    fn contains(&self, level: u32) -> bool {
        (self.bits[(level / 64) as usize] >> (level % 64)) & 1 == 1
    }

    /// Makes every level dirty (the always-full evaluation mode).
    fn fill(&mut self) {
        self.bits.fill(!0);
    }

    /// Resets this set to a copy of `other` (same capacity).
    #[inline]
    fn copy_from(&mut self, other: &LevelSet) {
        self.bits.copy_from_slice(&other.bits);
    }
}

/// The packed golden reference of a compiled campaign: the per-cycle settled
/// value of **every net** of the fault-free run (the incremental mode reads
/// out-of-cone nets from here) plus the pad-voted golden outputs the faulty
/// lanes are compared against.
///
/// Built by [`CompiledNetlist::pack_golden`], which re-runs the fault-free
/// design on the compiled engine and asserts the resulting trace is
/// bit-identical to the interpreter-produced [`GoldenRun`] — a permanent
/// differential canary on the compiled evaluation itself.
#[derive(Debug, Clone)]
pub struct PackedGolden {
    /// `frames[cycle][net]`: settled value of every net at the end of the
    /// cycle (flip-flop `Q` nets hold the state *driven* that cycle).
    frames: Vec<Vec<Trit>>,
    /// `voted[cycle][group]`: the pad-voted golden outputs.
    voted: Vec<Vec<Trit>>,
}

impl PackedGolden {
    /// Number of stimulus cycles.
    pub fn cycles(&self) -> usize {
        self.frames.len()
    }
}

impl CompiledNetlist {
    /// Compiles `netlist` into the flat instruction stream: one topological
    /// levelization, one fan-out index, one successor-level wake table — no
    /// further per-run graph work.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] if the netlist cannot be
    /// levelized.
    pub fn compile(netlist: &Netlist) -> Result<Self, SimError> {
        let mut trace_span = tmr_trace::span("sim.compile");
        let levelization = netlist
            .levelize()
            .map_err(|l| SimError::CombinationalLoop {
                cells: l.cells.len(),
            })?;
        let index = FanoutIndex::new(netlist);
        let mut ops = Vec::with_capacity(levelization.order.len());
        let mut op_level = Vec::with_capacity(levelization.order.len());
        let mut operands = Vec::new();
        let mut op_of_cell = vec![NONE; netlist.cell_count()];
        for &cell_id in &levelization.order {
            let cell = netlist.cell(cell_id);
            let copy = matches!(cell.kind, CellKind::Buf | CellKind::Ibuf | CellKind::Obuf);
            let init = if copy {
                0
            } else {
                cell.kind
                    .truth_table()
                    .expect("levelized cells are combinational")
            };
            op_of_cell[cell_id.index()] = ops.len() as u32;
            let operand_start = operands.len() as u32;
            operands.extend(cell.inputs.iter().map(|net| net.index() as u32));
            ops.push(Op {
                out: cell.output.index() as u32,
                operand_start,
                k: cell.kind.input_count() as u8,
                copy,
                lut: cell.kind.is_lut(),
                init,
            });
            op_level.push(levelization.level[cell_id.index()] as u32);
        }
        let level_count = op_level.iter().max().map_or(0, |&max| max as usize + 1);

        // The successor-level wake sets: for every net, the distinct levels
        // of the combinational instructions that read it (flip-flop sinks
        // are excluded — state capture always runs). When an evaluated
        // instruction's output differs from the golden frame, these are the
        // levels the event-driven scheduler must wake.
        let mut net_wake_start = vec![0u32; netlist.net_count() + 1];
        let mut net_wake_levels: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for net in 0..netlist.net_count() {
            scratch.clear();
            scratch.extend(index.cell_sinks(net).iter().filter_map(|&cell| {
                match op_of_cell[cell as usize] {
                    NONE => None,
                    op => Some(op_level[op as usize]),
                }
            }));
            scratch.sort_unstable();
            scratch.dedup();
            net_wake_levels.extend_from_slice(&scratch);
            net_wake_start[net + 1] = net_wake_levels.len() as u32;
        }

        let mut ffs = Vec::new();
        let mut ff_of_cell = vec![NONE; netlist.cell_count()];
        for cell_id in netlist.sequential_cells() {
            let cell = netlist.cell(cell_id);
            let init = match cell.kind {
                CellKind::Dff { init } => init,
                _ => unreachable!("sequential cells are flip-flops"),
            };
            ff_of_cell[cell_id.index()] = ffs.len() as u32;
            ffs.push(CompiledFf {
                d_net: cell.inputs[0].index() as u32,
                q_net: cell.output.index() as u32,
                init,
            });
        }

        let input_nets = netlist
            .input_ports()
            .map(|(_, p)| p.net.index() as u32)
            .collect();
        let mut outputs = Vec::new();
        let mut output_of_port = vec![NONE; netlist.ports().count()];
        for (port_id, port) in netlist.output_ports() {
            output_of_port[port_id.index()] = outputs.len() as u32;
            outputs.push(port.net.index() as u32);
        }
        let groups = OutputGroups::new(netlist)
            .groups()
            .map(|(_, _, members)| members.to_vec())
            .collect();

        let mut driver_op_of_net = vec![NONE; netlist.net_count()];
        for (op_idx, op) in ops.iter().enumerate() {
            driver_op_of_net[op.out as usize] = op_idx as u32;
        }
        let mut driver_ff_of_net = vec![NONE; netlist.net_count()];
        for (ff_idx, ff) in ffs.iter().enumerate() {
            driver_ff_of_net[ff.q_net as usize] = ff_idx as u32;
        }

        trace_span.attr("ops", ops.len());
        trace_span.attr("ffs", ffs.len());
        trace_span.attr("levels", level_count);
        trace_span.attr("nets", netlist.net_count());
        Ok(Self {
            net_count: netlist.net_count(),
            ops,
            operands,
            op_of_cell,
            ffs,
            ff_of_cell,
            input_nets,
            outputs,
            output_of_port,
            groups,
            index,
            op_level,
            level_count,
            driver_op_of_net,
            driver_ff_of_net,
            net_wake_start,
            net_wake_levels,
        })
    }

    /// Number of nets of the compiled netlist.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of combinational instructions in the stream.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of flip-flops.
    pub fn ff_count(&self) -> usize {
        self.ffs.len()
    }

    /// Number of distinct combinational levels of the stream.
    pub fn level_count(&self) -> usize {
        self.level_count
    }

    /// The operand nets of `op`.
    fn op_inputs(&self, op: &Op) -> &[u32] {
        let start = op.operand_start as usize;
        &self.operands[start..start + op.k as usize]
    }

    /// The successor levels woken when `net` diverges from golden.
    #[inline]
    fn net_wake(&self, net: usize) -> &[u32] {
        let start = self.net_wake_start[net] as usize;
        let end = self.net_wake_start[net + 1] as usize;
        &self.net_wake_levels[start..end]
    }

    /// A cheap fan-out-cone fingerprint of one overlay: an order-independent
    /// hash of its root-net seed set (cell roots by their output net, seed
    /// nets, seeded output ports — exactly the seeds the word compiler hands
    /// to [`FanoutIndex::cone`], tagged by seed kind). Overlays with equal
    /// fingerprints share their fan-out cone, so the campaign layer groups
    /// them into the same lane words and the union cone each word touches
    /// stays small.
    ///
    /// The high half of the key is the smallest tagged root, so sorting by
    /// key is locality-preserving: overlays seeded at nearby nets land in
    /// adjacent words even when their seed sets differ, which keeps each
    /// word's union cone compact. Equal seed sets always produce equal keys,
    /// so the dedup semantics are unaffected by the ordering refinement.
    pub fn cone_key(&self, overlay: &FaultOverlay) -> u128 {
        const CELL_TAG: u64 = 1 << 33;
        const NET_TAG: u64 = 2 << 33;
        const PORT_TAG: u64 = 3 << 33;
        let mut roots: Vec<u64> = Vec::new();
        let cell_root = |cell: tmr_netlist::CellId, roots: &mut Vec<u64>| {
            let out = match self.op_of_cell[cell.index()] {
                NONE => match self.ff_of_cell[cell.index()] {
                    NONE => return,
                    ff => self.ffs[ff as usize].q_net,
                },
                op => self.ops[op as usize].out,
            };
            roots.push(CELL_TAG | u64::from(out));
        };
        for &(cell, _) in &overlay.lut_overrides {
            let op = self.op_of_cell[cell.index()];
            if op != NONE && self.ops[op as usize].lut {
                cell_root(cell, &mut roots);
            }
        }
        for &(cell, _) in &overlay.ff_init_overrides {
            if self.ff_of_cell[cell.index()] != NONE {
                cell_root(cell, &mut roots);
            }
        }
        for sink in &overlay.opened_sinks {
            match *sink {
                SinkRef::CellPin { cell, .. } => cell_root(cell, &mut roots),
                SinkRef::OutputPort(port) => {
                    let position = self.output_of_port[port.index()];
                    if position != NONE {
                        roots.push(PORT_TAG | u64::from(position));
                    }
                }
            }
        }
        for &net in &overlay.corrupted_nets {
            roots.push(NET_TAG | net.index() as u64);
        }
        // Bridged nets seed the cone through both endpoints. Reusing the net
        // tag cannot confuse a bridge with a corruption: clean and bridged
        // faults are batched in separate streams by the campaign layer.
        for &(a, b) in &overlay.shorted_nets {
            roots.push(NET_TAG | a.index() as u64);
            roots.push(NET_TAG | b.index() as u64);
        }
        roots.sort_unstable();
        roots.dedup();
        // FNV-1a over the canonical root list, prefixed by the minimum root
        // as the locality-ordering major key.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &root in &roots {
            for byte in root.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let locality = roots.first().copied().unwrap_or(0);
        (u128::from(locality) << 64) | u128::from(hash)
    }

    /// Runs the fault-free design on the compiled engine and packages the
    /// per-cycle net frames and voted outputs for incremental fault
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if the compiled trace diverges from the interpreter-produced
    /// trace inside `golden` — that would be a compiler bug, and this check
    /// keeps every campaign differentially guarded against it.
    pub fn pack_golden(&self, golden: &GoldenRun) -> PackedGolden {
        let mut trace_span = tmr_trace::span("sim.pack_golden");
        let vectors = golden.stimulus().vectors();
        trace_span.attr("cycles", vectors.len());
        let mut values = vec![TritWord::X; self.net_count];
        let mut state: Vec<TritWord> = self
            .ffs
            .iter()
            .map(|ff| TritWord::broadcast(Trit::from_bool(ff.init)))
            .collect();
        let mut frames = Vec::with_capacity(vectors.len());
        let mut voted = Vec::with_capacity(vectors.len());
        let mut inputs = [TritWord::ZERO; 6];
        for (cycle, vector) in vectors.iter().enumerate() {
            assert_eq!(
                vector.len(),
                self.input_nets.len(),
                "stimulus vector length must match the number of input ports"
            );
            for (&net, &value) in self.input_nets.iter().zip(vector.iter()) {
                values[net as usize] = TritWord::broadcast(value);
            }
            for (ff, st) in self.ffs.iter().zip(state.iter()) {
                values[ff.q_net as usize] = *st;
            }
            for op in &self.ops {
                for (pin, &net) in self.op_inputs(op).iter().enumerate() {
                    inputs[pin] = values[net as usize];
                }
                values[op.out as usize] = eval_op(op, &inputs, None, LaneMask::FULL);
            }
            let frame: Vec<Trit> = values.iter().map(|w| w.lane(0)).collect();
            let trace_row: Vec<Trit> = self
                .outputs
                .iter()
                .map(|&net| frame[net as usize])
                .collect();
            assert_eq!(
                trace_row,
                golden.trace().outputs[cycle],
                "compiled golden run diverged from the interpreter at cycle {cycle}"
            );
            voted.push(
                self.groups
                    .iter()
                    .map(|members| {
                        let member_values: Vec<Trit> =
                            members.iter().map(|&m| trace_row[m]).collect();
                        majority(&member_values)
                    })
                    .collect(),
            );
            for (ff, st) in self.ffs.iter().zip(state.iter_mut()) {
                *st = values[ff.d_net as usize];
            }
            frames.push(frame);
        }
        PackedGolden { frames, voted }
    }

    /// Simulates up to 64 fault experiments in one packed word and returns,
    /// per lane, the first cycle at which the pad-voted outputs diverged
    /// from golden (`None` = the fault never produced a wrong answer).
    ///
    /// Equivalent to [`CompiledNetlist::run_lanes`] with event-driven
    /// scheduling enabled and the statistics discarded — the compatibility
    /// entry point for single-word callers.
    ///
    /// # Panics
    ///
    /// Panics if `overlays` is empty or holds more than 64 lanes, or if
    /// `golden` was packed for a different netlist.
    pub fn run_word(
        &self,
        golden: &PackedGolden,
        overlays: &[&FaultOverlay],
    ) -> Vec<Option<usize>> {
        assert!(
            !overlays.is_empty() && overlays.len() <= 64,
            "a packed word holds 1..=64 experiment lanes"
        );
        let mut stats = SimStats::default();
        self.run_lanes(golden, overlays, true, &mut stats)
    }

    /// Simulates up to [`MAX_LANES`] fault experiments in one word batch and
    /// returns, per lane, the first cycle at which the pad-voted outputs
    /// diverged from golden (`None` = the fault never produced a wrong
    /// answer).
    ///
    /// The result is bit-identical to running the interpreting simulator on
    /// each overlay individually and comparing with
    /// [`OutputGroups::first_voted_mismatch`] — for either value of
    /// `event_driven`. Batches of more than 64 lanes evaluate on the wide
    /// `4×u64` word, the rest on the scalar `1×u64` word. Every word runs
    /// cone-restricted; `event_driven` additionally enables dirty-level
    /// scheduling and the per-instruction per-lane divergence skipping
    /// (`TMR_SIM=compiled-full` disables both, evaluating every cone
    /// instruction over all lanes — the A/B baseline). Words containing
    /// `shorted_nets` keep the interpreter's multi-pass settling loop,
    /// restricted to the cone. `stats` accumulates the engine's
    /// observability counters.
    ///
    /// # Panics
    ///
    /// Panics if `overlays` is empty or holds more than [`MAX_LANES`]
    /// lanes, or if `golden` was packed for a different netlist.
    pub fn run_lanes(
        &self,
        golden: &PackedGolden,
        overlays: &[&FaultOverlay],
        event_driven: bool,
        stats: &mut SimStats,
    ) -> Vec<Option<usize>> {
        assert!(
            !overlays.is_empty() && overlays.len() <= MAX_LANES,
            "a word batch holds 1..={MAX_LANES} experiment lanes"
        );
        if let Some(frame) = golden.frames.first() {
            assert_eq!(
                frame.len(),
                self.net_count,
                "golden frames netlist mismatch"
            );
        }
        stats.lanes_simulated += overlays.len() as u64;
        stats.max_lanes_per_word = stats.max_lanes_per_word.max(overlays.len() as u64);
        if overlays.len() <= 64 {
            stats.words_narrow += 1;
            self.run_lanes_at_width::<1>(golden, overlays, event_driven, stats)
        } else {
            stats.words_wide += 1;
            self.run_lanes_at_width::<4>(golden, overlays, event_driven, stats)
        }
    }

    /// Width-resolved body of [`CompiledNetlist::run_lanes`].
    fn run_lanes_at_width<const W: usize>(
        &self,
        golden: &PackedGolden,
        overlays: &[&FaultOverlay],
        event_driven: bool,
        stats: &mut SimStats,
    ) -> Vec<Option<usize>> {
        let word = WordOverlays::<W>::build(self, overlays);
        if word.has_shorts {
            stats.words_full_eval += 1;
        }
        self.run_word_inc(golden, &word, overlays.len(), event_driven, stats)
    }

    /// The unified incremental engine: evaluate only the union fan-out cone
    /// of the word's fault sites (bridged nets seed the cone too), and within
    /// it only the instructions whose operands actually diverged — reading
    /// everything else from the golden frames.
    ///
    /// Three skipping layers compose, each exact rather than heuristic:
    ///
    /// 1. **Cone restriction** — instructions outside the union fan-out cone
    ///    of the word's seeds can never differ from golden, so they are never
    ///    visited. Bridges perturb *reads* of their two nets, so seeding both
    ///    nets closes the cone over every short-affected reader.
    /// 2. **Dirty-level scheduling** (`event_driven`, words without shorts) —
    ///    a level is skipped when no always-dirty site sits on it, no
    ///    diverged flip-flop woke it this cycle, and no earlier evaluated
    ///    instruction published a golden-divergence wake to it: every operand
    ///    of its instructions is then golden-equal by induction.
    /// 3. **Per-instruction divergence checks** (`event_driven`) — within a
    ///    dirty level, an instruction whose operand lanes are all
    ///    golden-equal, whose stored output is golden-equal, and which no
    ///    overlay targets must produce its golden output; it is skipped, and
    ///    the epoch stamps (`net_cycle`) route downstream reads of its net to
    ///    the golden frame. Evaluated instructions enumerate only the
    ///    diverged lanes ([`TritVec::select_lanes`] merges the golden value
    ///    back into the rest).
    ///
    /// Words with bridged lanes run the interpreter's multi-pass settling
    /// loop *inside the cone*: values feed back through
    /// [`TritVec::resolve_masked`] reads, passes repeat until no lane
    /// changed, and oscillation through a short poisons the bridged nets on
    /// the final pass — bit-identical to the full-netlist loop because every
    /// instruction outside the perturbed region is at its golden fixed point
    /// pass by pass.
    fn run_word_inc<const W: usize>(
        &self,
        golden: &PackedGolden,
        word: &WordOverlays<W>,
        lanes: usize,
        event_driven: bool,
        stats: &mut SimStats,
    ) -> Vec<Option<usize>> {
        let all = LaneMask::<W>::first(lanes);
        let cone = self.index.cone(
            word.seed_cells.iter().copied(),
            word.seed_nets.iter().copied(),
        );
        let mut cone_ops: Vec<u32> = cone
            .cells
            .iter()
            .filter_map(|cell| match self.op_of_cell[cell.index()] {
                NONE => None,
                op => Some(op),
            })
            .collect();
        let mut cone_ffs: Vec<u32> = cone
            .cells
            .iter()
            .filter_map(|cell| match self.ff_of_cell[cell.index()] {
                NONE => None,
                ff => Some(ff),
            })
            .collect();
        // Bridged words resolve partner reads against the *live* stored
        // values (backwards reads through a short must see the previous
        // pass, exactly like the interpreter) — so the drivers of the
        // shorted nets must be evaluated too, keeping every bridged net's
        // stored value in lock-step with a full-netlist walk. Shorted nets
        // with no cell driver (primary inputs) are re-stamped from the
        // golden frame at every cycle start instead.
        let mut bridge_input_nets: Vec<u32> = Vec::new();
        for &(a, b, _) in &word.short_pairs {
            for net in [a as usize, b as usize] {
                match self.driver_op_of_net[net] {
                    NONE => match self.driver_ff_of_net[net] {
                        NONE => bridge_input_nets.push(net as u32),
                        ff => cone_ffs.push(ff),
                    },
                    op => cone_ops.push(op),
                }
            }
        }
        bridge_input_nets.sort_unstable();
        bridge_input_nets.dedup();
        cone_ops.sort_unstable();
        cone_ops.dedup();
        cone_ffs.sort_unstable();
        cone_ffs.dedup();
        let mut affected_outputs: Vec<u32> = cone
            .ports
            .iter()
            .map(|port| self.output_of_port[port.index()])
            .chain(word.seed_ports.iter().copied())
            .collect();
        affected_outputs.sort_unstable();
        affected_outputs.dedup();
        let affected_groups: Vec<usize> = self
            .groups
            .iter()
            .enumerate()
            .filter(|(_, members)| {
                members
                    .iter()
                    .any(|&m| affected_outputs.binary_search(&(m as u32)).is_ok())
            })
            .map(|(g, _)| g)
            .collect();

        // Dirty-level scheduling only applies to words without bridges —
        // multi-pass settling re-walks the stream anyway, and the
        // per-instruction checks below carry the skipping there. The
        // always-dirty seed: levels holding an instruction whose evaluation
        // is itself perturbed — truth-table overrides, opened input pins, or
        // reads of corrupted nets — must be visited every cycle.
        let use_levels = event_driven && !word.has_shorts;
        let mut always_dirty = LevelSet::new(self.level_count);
        if use_levels {
            for &(op, _, _) in &word.lut {
                always_dirty.insert(self.op_level[op as usize]);
            }
            for &(key, _) in &word.pin_opens {
                always_dirty.insert(self.op_level[(key >> 3) as usize]);
            }
            for &net in &word.corrupt_nets {
                for &level in self.net_wake(net as usize) {
                    always_dirty.insert(level);
                }
            }
        } else {
            always_dirty.fill();
        }
        let mut dirty = always_dirty.clone();
        // The distinct levels present in the cone, for the skip counters of
        // level-scheduled words.
        let mut cone_levels: Vec<u32> = Vec::new();
        if !word.has_shorts {
            cone_levels.extend(cone_ops.iter().map(|&op| self.op_level[op as usize]));
            cone_levels.sort_unstable();
            cone_levels.dedup();
        }

        // Epoch stamps: `values[net]` (and its golden-divergence mask
        // `diffg[net]`) is only meaningful in the cycle it was written;
        // everything else reads the golden frame (sound, because a skipped
        // driver is golden-equal by construction).
        let mut net_cycle = vec![u32::MAX; self.net_count];
        let mut values = vec![TritVec::<W>::X; self.net_count];
        let mut diffg = vec![LaneMask::<W>::EMPTY; self.net_count];
        let mut state: Vec<TritVec<W>> = cone_ffs
            .iter()
            .map(|&ff| word.initial_state(self, ff))
            .collect();
        let mut found = vec![None; lanes];
        let mut active = all;
        let mut inputs = [TritVec::<W>::ZERO; 6];
        let mut pin_poison = [LaneMask::<W>::EMPTY; 6];
        let mut member_buf: Vec<TritVec<W>> = Vec::new();
        let max_passes = if word.has_shorts { 4 } else { 1 };
        let last_cycle = golden.cycles().saturating_sub(1);

        for cycle in 0..golden.cycles() {
            let frame = &golden.frames[cycle];
            let stamp = cycle as u32;
            // Pure state faults whose flip-flop state re-converged with
            // golden can never diverge again: retire those lanes now.
            if (word.state_only & active).any() {
                let mut state_diff = LaneMask::<W>::EMPTY;
                for (st, &ff) in state.iter().zip(cone_ffs.iter()) {
                    let q = self.ffs[ff as usize].q_net as usize;
                    state_diff |= st.diff(TritVec::broadcast(frame[q]));
                }
                let retired = word.state_only & !state_diff & active;
                if retired.any() {
                    stats.lanes_retired_early += u64::from(retired.count());
                    active &= !retired;
                    if active.is_empty() {
                        break;
                    }
                }
            }
            dirty.copy_from(&always_dirty);
            for (st, &ff) in state.iter().zip(cone_ffs.iter()) {
                let record = &self.ffs[ff as usize];
                let q = record.q_net as usize;
                values[q] = *st;
                net_cycle[q] = stamp;
                let dg = st.diff(TritVec::broadcast(frame[q]));
                diffg[q] = dg;
                // A flip-flop whose state diverged from golden wakes the
                // levels reading its Q net.
                if use_levels && dg.any() {
                    for &level in self.net_wake(q) {
                        dirty.insert(level);
                    }
                }
            }
            // Bridged primary inputs carry this cycle's stimulus for raw
            // partner reads (the full-netlist loop writes input nets at
            // every cycle start).
            for &net in &bridge_input_nets {
                let net = net as usize;
                values[net] = TritVec::broadcast(frame[net]);
                net_cycle[net] = stamp;
                diffg[net] = LaneMask::EMPTY;
            }
            // Backwards-read lane window. Instruction order is topological,
            // so within one settling pass every plain operand read sees its
            // driver's final value — the only reads that can miss a
            // same-pass update are the raw partner reads through a short
            // whose driver runs later in the order. A lane therefore needs
            // another pass exactly when one of its *shorted* nets changed
            // value this pass; all other lanes are self-consistent and the
            // next pass provably reproduces them. Passes after the first
            // restrict all work to that window, and an empty window ends
            // the settling loop without a confirmation walk. The
            // always-full baseline keeps the window wide open (and runs
            // its confirmation pass) instead.
            let mut settle_window = LaneMask::<W>::FULL;
            for pass in 0..max_passes {
                let window = if event_driven && pass > 0 {
                    settle_window
                } else {
                    LaneMask::FULL
                };
                let mut pass_change = LaneMask::<W>::EMPTY;
                let mut short_delta = LaneMask::<W>::EMPTY;
                let mut lut_cursor = 0;
                let mut open_cursor = 0;
                for &op_idx in &cone_ops {
                    if use_levels && !dirty.contains(self.op_level[op_idx as usize]) {
                        continue;
                    }
                    let op = &self.ops[op_idx as usize];
                    let out_net = op.out as usize;
                    let lut_entry = word.lut_entry(op_idx, &mut lut_cursor);
                    // The need mask: lanes in which any operand read — or the
                    // instruction's own stored output — diverges from the
                    // golden frame, or an overlay perturbs the evaluation.
                    // Every other lane provably reproduces its golden output.
                    let mut need = LaneMask::<W>::EMPTY;
                    for (pin, &net) in self.op_inputs(op).iter().enumerate() {
                        let net = net as usize;
                        if net_cycle[net] == stamp {
                            need |= diffg[net];
                        }
                        let mut poison = word.corrupt[net];
                        let key = (u64::from(op_idx) << 3) | pin as u64;
                        while open_cursor < word.pin_opens.len()
                            && word.pin_opens[open_cursor].0 < key
                        {
                            open_cursor += 1;
                        }
                        if open_cursor < word.pin_opens.len()
                            && word.pin_opens[open_cursor].0 == key
                        {
                            poison |= word.pin_opens[open_cursor].1;
                        }
                        pin_poison[pin] = poison;
                        need |= poison;
                        if word.has_shorts {
                            need |= word.short_mask[net];
                        }
                    }
                    if let Some((overridden, _)) = lut_entry {
                        need |= overridden;
                    }
                    if net_cycle[out_net] == stamp {
                        need |= diffg[out_net];
                    }
                    if event_driven {
                        need &= active & window;
                        if need.is_empty() {
                            stats.ops_skipped += 1;
                            if word.has_shorts && pass == 0 {
                                // Keep the stored value in lock-step with a
                                // full-netlist walk: a skipped instruction
                                // would have produced its golden output, and
                                // raw partner reads (plus the settling
                                // bookkeeping) must see it. Later passes
                                // need no store — the first pass stamped
                                // every cone output, and an empty need
                                // means the stored window lanes are already
                                // golden.
                                let golden_out = TritVec::broadcast(frame[out_net]);
                                let d = golden_out.diff(values[out_net]);
                                pass_change |= d;
                                short_delta |= d & word.short_mask[out_net];
                                values[out_net] = golden_out;
                                net_cycle[out_net] = stamp;
                                diffg[out_net] = LaneMask::EMPTY;
                            }
                            continue;
                        }
                    } else {
                        need = all;
                    }
                    stats.ops_evaluated += 1;
                    for (pin, &net) in self.op_inputs(op).iter().enumerate() {
                        let net = net as usize;
                        let mut w = if net_cycle[net] == stamp {
                            values[net]
                        } else {
                            TritVec::broadcast(frame[net])
                        };
                        w = w.poison(pin_poison[pin]);
                        if word.has_shorts {
                            w = word.resolve_shorts(w, net, &values);
                        }
                        inputs[pin] = w;
                    }
                    let golden_out = TritVec::broadcast(frame[out_net]);
                    let masks = lut_entry.map(|(_, masks)| masks);
                    // Sub-word narrowing: when every diverged lane of a wide
                    // word sits in one 64-lane sub-word (common after the
                    // locality-ordered cone batching), run the truth-table
                    // enumeration at 1×u64 and splice the result into the
                    // golden broadcast — lane-exact, since eval lanes are
                    // independent and all other sub-words are golden.
                    let narrow_sub = if W > 1 && masks.is_none() {
                        need.only_subword()
                    } else {
                        None
                    };
                    let fresh = if let Some(sub) = narrow_sub {
                        let mut narrow_inputs = [TritVec::<1>::ZERO; 6];
                        for (pin, input) in inputs.iter().enumerate() {
                            narrow_inputs[pin] = input.subword(sub);
                        }
                        let narrow_need = need.subword(sub);
                        let narrow = eval_op(op, &narrow_inputs, None, narrow_need)
                            .select_lanes(golden_out.subword(sub), narrow_need);
                        let mut fresh = golden_out;
                        fresh.set_subword(sub, narrow);
                        fresh
                    } else {
                        eval_op(op, &inputs, masks, need).select_lanes(golden_out, need)
                    };
                    // Outside the fixpoint window the fresh value is not
                    // provably golden — those lanes keep their settled
                    // stored value (a no-op on the wide-open first pass).
                    let out = fresh.select_lanes(values[out_net], window);
                    // Settling deltas compare against the raw stored value
                    // (previous pass or cycle), exactly like the
                    // full-netlist loop; stale stores of level-scheduled
                    // words read as golden instead.
                    let prev = if word.has_shorts || net_cycle[out_net] == stamp {
                        values[out_net]
                    } else {
                        golden_out
                    };
                    let d = out.diff(prev);
                    pass_change |= d;
                    if word.has_shorts {
                        short_delta |= d & word.short_mask[out_net];
                    }
                    values[out_net] = out;
                    net_cycle[out_net] = stamp;
                    let dg = out.diff(golden_out);
                    diffg[out_net] = dg;
                    if use_levels && dg.any() {
                        for &level in self.net_wake(out_net) {
                            dirty.insert(level);
                        }
                    }
                }
                if pass_change.is_empty() {
                    break;
                }
                if event_driven && short_delta.is_empty() {
                    // Every change this pass landed on an un-shorted net (or
                    // an un-shorted lane of one), so no backwards raw read
                    // can have missed it — the next pass provably changes
                    // nothing, and the full-netlist walk would only run it
                    // to confirm that. Stop without the confirmation pass.
                    break;
                }
                settle_window = short_delta;
                if pass + 1 == max_passes {
                    // Oscillation through a short: poison the shorted nets
                    // of the lanes that were still changing.
                    for &(a, b, mask) in &word.short_pairs {
                        let poison = mask & pass_change;
                        if poison.any() {
                            // Every bridged net is stamped by now (its
                            // driver is in the cone, or it was written at
                            // cycle start), so the raw store is current.
                            for net in [a as usize, b as usize] {
                                let v = values[net].poison(poison);
                                values[net] = v;
                                net_cycle[net] = stamp;
                                diffg[net] = v.diff(TritVec::broadcast(frame[net]));
                            }
                        }
                    }
                }
            }
            if !word.has_shorts {
                for &level in &cone_levels {
                    if dirty.contains(level) {
                        stats.levels_evaluated += 1;
                    } else {
                        stats.levels_skipped += 1;
                    }
                }
            }
            let mut mismatch = LaneMask::<W>::EMPTY;
            for &g in &affected_groups {
                member_buf.clear();
                for &m in &self.groups[g] {
                    let net = self.outputs[m] as usize;
                    let mut w = if net_cycle[net] == stamp {
                        values[net]
                    } else {
                        TritVec::broadcast(frame[net])
                    };
                    w = w.poison(word.corrupt[net]);
                    if word.has_shorts {
                        w = word.resolve_shorts(w, net, &values);
                    }
                    w = w.poison(word.port_open[m]);
                    member_buf.push(w);
                }
                let dut = majority_word(&member_buf);
                mismatch |= dut.diff(TritVec::broadcast(golden.voted[cycle][g]));
            }
            let hits = mismatch & active;
            if hits.any() {
                record_hits(&mut found, hits, cycle);
                if cycle < last_cycle {
                    stats.lanes_retired_early += u64::from(hits.count());
                }
                active &= !hits;
                if active.is_empty() {
                    break;
                }
            }
            for (st, &ff) in state.iter_mut().zip(cone_ffs.iter()) {
                let record = &self.ffs[ff as usize];
                let net = record.d_net as usize;
                let mut w = if net_cycle[net] == stamp {
                    values[net]
                } else {
                    TritVec::broadcast(frame[net])
                };
                w = w.poison(word.corrupt[net]);
                if word.has_shorts {
                    w = word.resolve_shorts(w, net, &values);
                }
                w = w.poison(word.ff_open[ff as usize]);
                *st = w;
            }
        }
        found
    }
}

/// Records `cycle` as the first error cycle of every lane in `hits`.
fn record_hits<const W: usize>(found: &mut [Option<usize>], hits: LaneMask<W>, cycle: usize) {
    hits.for_each(|lane| found[lane] = Some(cycle));
}

/// Evaluates one compiled op over packed inputs with exact `X` semantics,
/// restricted to the lanes in `restrict` — the completion enumeration
/// starts from `restrict` instead of all lanes, so the work is proportional
/// to the diverged lanes and the other lanes come out as `X` (callers merge
/// the golden value back in with [`TritVec::select_lanes`]).
///
/// `masks`, when present, holds one lane mask per truth-table assignment
/// (lanes whose — possibly overridden — truth table has that bit set);
/// otherwise the op's shared `init` is used for every lane.
#[inline]
fn eval_op<const W: usize>(
    op: &Op,
    inputs: &[TritVec<W>; 6],
    masks: Option<&[LaneMask<W>]>,
    restrict: LaneMask<W>,
) -> TritVec<W> {
    if op.copy {
        return inputs[0];
    }
    let k = op.k as usize;
    let mut ones = [LaneMask::<W>::EMPTY; 6];
    let mut zeros = [LaneMask::<W>::EMPTY; 6];
    for (i, input) in inputs.iter().enumerate().take(k) {
        ones[i] = input.can_be_one();
        zeros[i] = input.can_be_zero();
    }
    let mut can_one = LaneMask::<W>::EMPTY;
    let mut can_zero = LaneMask::<W>::EMPTY;
    for assignment in 0..(1usize << k) {
        let mut matching = restrict;
        for i in 0..k {
            matching &= if (assignment >> i) & 1 == 1 {
                ones[i]
            } else {
                zeros[i]
            };
            if matching.is_empty() {
                break;
            }
        }
        if matching.is_empty() {
            continue;
        }
        match masks {
            Some(masks) => {
                can_one |= matching & masks[assignment];
                can_zero |= matching & !masks[assignment];
            }
            None => {
                if (op.init >> assignment) & 1 == 1 {
                    can_one |= matching;
                } else {
                    can_zero |= matching;
                }
            }
        }
    }
    TritVec::from_possibilities(can_one, can_zero)
}

/// The per-word compilation of up to `64 * W` fault overlays into lane
/// masks.
struct WordOverlays<const W: usize> {
    /// Truth-table overrides: `(op index, overridden-lane mask,
    /// per-assignment lane masks)`, sorted by op index (consumed with a
    /// cursor during the ascending op walk).
    lut: Vec<(u32, LaneMask<W>, Vec<LaneMask<W>>)>,
    /// Opened cell-input pins: `((op << 3) | pin, lane mask)`, sorted.
    pin_opens: Vec<(u64, LaneMask<W>)>,
    /// Opened flip-flop `D` pins, dense per flip-flop slot.
    ff_open: Vec<LaneMask<W>>,
    /// Opened output ports, dense per output position.
    port_open: Vec<LaneMask<W>>,
    /// Corrupted (antenna) nets, dense per net.
    corrupt: Vec<LaneMask<W>>,
    /// The distinct corrupted nets (the sparse view of `corrupt`, for the
    /// always-dirty level seed).
    corrupt_nets: Vec<u32>,
    /// Bridged partners per net.
    shorts: HashMap<u32, Vec<(u32, LaneMask<W>)>>,
    /// Every bridged pair with its lane mask (for oscillation poisoning).
    short_pairs: Vec<(u32, u32, LaneMask<W>)>,
    /// Lanes bridging each net, dense per net (forces evaluation of every
    /// instruction reading a bridged net in those lanes).
    short_mask: Vec<LaneMask<W>>,
    /// Any lane bridges nets (selects the multi-pass settling loop).
    has_shorts: bool,
    /// Flip-flop initialisation overrides, dense per flip-flop slot:
    /// lanes overridden, and their override value.
    ff_init_set: Vec<LaneMask<W>>,
    ff_init_val: Vec<LaneMask<W>>,
    /// Lanes whose overlay perturbs *only* flip-flop initial state.
    state_only: LaneMask<W>,
    /// Fan-out cone seeds of the word (union over lanes).
    seed_cells: Vec<tmr_netlist::CellId>,
    seed_nets: Vec<tmr_netlist::NetId>,
    seed_ports: Vec<u32>,
}

impl<const W: usize> WordOverlays<W> {
    fn build(compiled: &CompiledNetlist, overlays: &[&FaultOverlay]) -> Self {
        let mut lut_raw: HashMap<u32, Vec<(usize, u64)>> = HashMap::new();
        let mut pin_opens: HashMap<u64, LaneMask<W>> = HashMap::new();
        let mut word = Self {
            lut: Vec::new(),
            pin_opens: Vec::new(),
            ff_open: vec![LaneMask::EMPTY; compiled.ffs.len()],
            port_open: vec![LaneMask::EMPTY; compiled.outputs.len()],
            corrupt: vec![LaneMask::EMPTY; compiled.net_count],
            corrupt_nets: Vec::new(),
            shorts: HashMap::new(),
            short_pairs: Vec::new(),
            short_mask: Vec::new(),
            has_shorts: false,
            ff_init_set: vec![LaneMask::EMPTY; compiled.ffs.len()],
            ff_init_val: vec![LaneMask::EMPTY; compiled.ffs.len()],
            state_only: LaneMask::EMPTY,
            seed_cells: Vec::new(),
            seed_nets: Vec::new(),
            seed_ports: Vec::new(),
        };
        for (lane, overlay) in overlays.iter().enumerate() {
            let bit = LaneMask::<W>::bit(lane);
            let combinational = !overlay.lut_overrides.is_empty()
                || !overlay.opened_sinks.is_empty()
                || !overlay.shorted_nets.is_empty()
                || !overlay.corrupted_nets.is_empty();
            if !combinational {
                word.state_only |= bit;
            }
            for &(cell, init) in &overlay.lut_overrides {
                let op = compiled.op_of_cell[cell.index()];
                if op == NONE || !compiled.ops[op as usize].lut {
                    continue; // the interpreter ignores overrides on non-LUTs
                }
                lut_raw.entry(op).or_default().push((lane, init));
                word.seed_cells.push(cell);
            }
            for &(cell, value) in &overlay.ff_init_overrides {
                let ff = compiled.ff_of_cell[cell.index()];
                if ff == NONE {
                    continue;
                }
                word.ff_init_set[ff as usize] |= bit;
                if value {
                    word.ff_init_val[ff as usize] |= bit;
                }
                word.seed_cells.push(cell);
            }
            for sink in &overlay.opened_sinks {
                match *sink {
                    SinkRef::CellPin { cell, pin } => {
                        let op = compiled.op_of_cell[cell.index()];
                        if op != NONE {
                            *pin_opens
                                .entry((u64::from(op) << 3) | pin as u64)
                                .or_default() |= bit;
                        } else {
                            let ff = compiled.ff_of_cell[cell.index()];
                            if ff != NONE {
                                word.ff_open[ff as usize] |= bit;
                            }
                        }
                        word.seed_cells.push(cell);
                    }
                    SinkRef::OutputPort(port) => {
                        let position = compiled.output_of_port[port.index()];
                        if position != NONE {
                            word.port_open[position as usize] |= bit;
                            word.seed_ports.push(position);
                        }
                    }
                }
            }
            for &net in &overlay.corrupted_nets {
                if word.corrupt[net.index()].is_empty() {
                    word.corrupt_nets.push(net.index() as u32);
                }
                word.corrupt[net.index()] |= bit;
                word.seed_nets.push(net);
            }
            for &(a, b) in &overlay.shorted_nets {
                if !word.has_shorts {
                    word.has_shorts = true;
                    word.short_mask = vec![LaneMask::EMPTY; compiled.net_count];
                }
                word.short_mask[a.index()] |= bit;
                word.short_mask[b.index()] |= bit;
                word.shorts
                    .entry(a.index() as u32)
                    .or_default()
                    .push((b.index() as u32, bit));
                word.shorts
                    .entry(b.index() as u32)
                    .or_default()
                    .push((a.index() as u32, bit));
                word.short_pairs
                    .push((a.index() as u32, b.index() as u32, bit));
                // A bridge perturbs every *read* of its two nets, so seeding
                // both closes the fan-out cone over all short-affected
                // consumers.
                word.seed_nets.push(a);
                word.seed_nets.push(b);
            }
        }
        word.lut = lut_raw
            .into_iter()
            .map(|(op, lanes)| {
                let record = &compiled.ops[op as usize];
                let assignments = 1usize << record.k;
                let overridden = lanes.iter().fold(LaneMask::<W>::EMPTY, |mask, &(lane, _)| {
                    mask | LaneMask::bit(lane)
                });
                let mut masks = vec![LaneMask::<W>::EMPTY; assignments];
                for (assignment, mask) in masks.iter_mut().enumerate() {
                    if (record.init >> assignment) & 1 == 1 {
                        *mask = !overridden;
                    }
                    for &(lane, init) in &lanes {
                        if (init >> assignment) & 1 == 1 {
                            *mask |= LaneMask::bit(lane);
                        }
                    }
                }
                (op, overridden, masks)
            })
            .collect();
        word.lut.sort_unstable_by_key(|&(op, _, _)| op);
        word.pin_opens = pin_opens.into_iter().collect();
        word.pin_opens.sort_unstable_by_key(|&(key, _)| key);
        word
    }

    /// The initial packed state of flip-flop slot `ff`, overrides applied.
    fn initial_state(&self, compiled: &CompiledNetlist, ff: u32) -> TritVec<W> {
        let record = &compiled.ffs[ff as usize];
        let mut state = TritVec::broadcast(Trit::from_bool(record.init));
        let set = self.ff_init_set[ff as usize];
        state.val = (state.val & !set) | (self.ff_init_val[ff as usize] & set);
        state
    }

    /// Applies bridged-net resolution against the raw stored partner values
    /// (mirrors the interpreter's sequential `Trit::resolve` fold). Raw is
    /// essential: a backwards read through a short must see the partner's
    /// previous-pass (or previous-cycle) value, which is why the engine pulls
    /// every shorted net's driver into the evaluated cone and has skipped
    /// instructions of bridged words still store their golden output.
    #[inline]
    fn resolve_shorts(
        &self,
        mut value: TritVec<W>,
        net: usize,
        values: &[TritVec<W>],
    ) -> TritVec<W> {
        // The dense mask answers "is this net bridged anywhere?" with one
        // array probe, keeping the hash lookup off the unbridged-net reads
        // that dominate a word's evaluations.
        if !self.short_mask[net].any() {
            return value;
        }
        if let Some(partners) = self.shorts.get(&(net as u32)) {
            for &(partner, mask) in partners {
                value = value.resolve_masked(values[partner as usize], mask);
            }
        }
        value
    }

    /// Truth-table override entry for `op`, if any lane overrides it: the
    /// overridden-lane mask and the per-assignment lane masks. `cursor` must
    /// advance monotonically with the ascending op walk.
    #[inline]
    fn lut_entry(&self, op: u32, cursor: &mut usize) -> Option<(LaneMask<W>, &[LaneMask<W>])> {
        while *cursor < self.lut.len() && self.lut[*cursor].0 < op {
            *cursor += 1;
        }
        match self.lut.get(*cursor) {
            Some(&(candidate, overridden, ref masks)) if candidate == op => {
                Some((overridden, masks))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, Stimulus};
    use tmr_netlist::{CellKind, Netlist};

    /// y = (a & b) | c, q = reg(y), with a second voted-style output.
    fn sample() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_cell(
            "u_and",
            CellKind::Lut { k: 2, init: 0b1000 },
            vec![a, b],
            ab,
        )
        .unwrap();
        nl.add_cell("u_or", CellKind::Lut { k: 2, init: 0b1110 }, vec![ab, c], y)
            .unwrap();
        nl.add_cell("u_ff", CellKind::Dff { init: false }, vec![y], q)
            .unwrap();
        nl.add_output("y", y);
        nl.add_output("q", q);
        nl
    }

    /// The oracle outcome of one overlay on one netlist.
    fn interpreter_outcome(
        netlist: &Netlist,
        golden: &GoldenRun,
        overlay: &FaultOverlay,
    ) -> Option<usize> {
        let simulator = Simulator::new(netlist).unwrap();
        let trace = simulator.run_stimulus(golden.stimulus(), overlay);
        golden.groups().first_voted_mismatch(golden.trace(), &trace)
    }

    /// Exhaustive per-overlay differential check of one word, through both
    /// the event-driven and the always-full-level evaluation modes.
    fn check_word(netlist: &Netlist, cycles: usize, seed: u64, overlays: Vec<FaultOverlay>) {
        let golden = GoldenRun::compute(netlist, cycles, seed).unwrap();
        let compiled = CompiledNetlist::compile(netlist).unwrap();
        let packed = compiled.pack_golden(&golden);
        let refs: Vec<&FaultOverlay> = overlays.iter().collect();
        let got = compiled.run_word(&packed, &refs);
        let mut stats = SimStats::default();
        let full_levels = compiled.run_lanes(&packed, &refs, false, &mut stats);
        assert_eq!(
            got, full_levels,
            "event-driven and full-level evaluation must agree"
        );
        for (lane, overlay) in overlays.iter().enumerate() {
            let expected = interpreter_outcome(netlist, &golden, overlay);
            assert_eq!(got[lane], expected, "lane {lane}: {overlay:?}");
        }
    }

    #[test]
    fn compiled_stream_shape() {
        let nl = sample();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        assert_eq!(compiled.op_count(), 2);
        assert_eq!(compiled.ff_count(), 1);
        assert_eq!(compiled.net_count(), nl.net_count());
        assert!(compiled.level_count() >= 2, "two chained LUTs, two levels");
    }

    #[test]
    fn combinational_loop_is_rejected() {
        let mut nl = Netlist::new("loop");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_cell("u1", CellKind::Not, vec![y], x).unwrap();
        nl.add_cell("u2", CellKind::Not, vec![x], y).unwrap();
        nl.add_output("y", y);
        assert!(matches!(
            CompiledNetlist::compile(&nl),
            Err(SimError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn golden_pack_matches_interpreter_trace() {
        let nl = sample();
        let golden = GoldenRun::compute(&nl, 12, 7).unwrap();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let packed = compiled.pack_golden(&golden);
        assert_eq!(packed.cycles(), 12);
    }

    #[test]
    fn lut_and_ff_and_open_overlays_match_interpreter() {
        let nl = sample();
        let and_cell = nl.find_cell("u_and").unwrap().0;
        let or_cell = nl.find_cell("u_or").unwrap().0;
        let ff_cell = nl.find_cell("u_ff").unwrap().0;
        let ab_net = nl.find_cell("u_and").unwrap().1.output;
        let overlays = vec![
            FaultOverlay {
                lut_overrides: vec![(and_cell, 0b0111)],
                ..FaultOverlay::none()
            },
            FaultOverlay {
                ff_init_overrides: vec![(ff_cell, true)],
                ..FaultOverlay::none()
            },
            FaultOverlay {
                opened_sinks: vec![SinkRef::CellPin {
                    cell: or_cell,
                    pin: 1,
                }],
                ..FaultOverlay::none()
            },
            FaultOverlay {
                corrupted_nets: vec![ab_net],
                ..FaultOverlay::none()
            },
            FaultOverlay::none(),
        ];
        check_word(&nl, 10, 3, overlays);
    }

    #[test]
    fn shorted_overlays_match_interpreter_in_full_mode() {
        let nl = sample();
        let a = nl
            .find_port("a", tmr_netlist::PortDir::Input)
            .unwrap()
            .1
            .net;
        let c = nl
            .find_port("c", tmr_netlist::PortDir::Input)
            .unwrap()
            .1
            .net;
        let y = nl.find_cell("u_or").unwrap().1.output;
        let overlays = vec![
            FaultOverlay {
                shorted_nets: vec![(a, c)],
                ..FaultOverlay::none()
            },
            // A feedback bridge (output shorted to an input) exercises the
            // multi-pass settling and poisoning path.
            FaultOverlay {
                shorted_nets: vec![(y, a)],
                ..FaultOverlay::none()
            },
            FaultOverlay::none(),
        ];
        check_word(&nl, 10, 3, overlays);
    }

    #[test]
    fn sixty_five_lane_words_are_rejected() {
        let nl = sample();
        let golden = GoldenRun::compute(&nl, 4, 1).unwrap();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let packed = compiled.pack_golden(&golden);
        let overlay = FaultOverlay::none();
        let overlays: Vec<&FaultOverlay> = std::iter::repeat_n(&overlay, 65).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compiled.run_word(&packed, &overlays)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn oversized_lane_batches_are_rejected() {
        let nl = sample();
        let golden = GoldenRun::compute(&nl, 4, 1).unwrap();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let packed = compiled.pack_golden(&golden);
        let overlay = FaultOverlay::none();
        let overlays: Vec<&FaultOverlay> = std::iter::repeat_n(&overlay, MAX_LANES + 1).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut stats = SimStats::default();
            compiled.run_lanes(&packed, &overlays, true, &mut stats)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn full_word_of_64_lanes_runs() {
        let nl = sample();
        let and_cell = nl.find_cell("u_and").unwrap().0;
        let overlays: Vec<FaultOverlay> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    FaultOverlay {
                        lut_overrides: vec![(and_cell, i as u64 & 0xf)],
                        ..FaultOverlay::none()
                    }
                } else {
                    FaultOverlay::none()
                }
            })
            .collect();
        check_word(&nl, 8, 11, overlays);
    }

    /// A wide (more than 64 lanes) batch evaluates on the `4×u64` word and
    /// agrees with the per-overlay interpreter outcomes and the narrow
    /// words' results.
    #[test]
    fn wide_word_batches_match_interpreter_and_narrow_words() {
        let nl = sample();
        let and_cell = nl.find_cell("u_and").unwrap().0;
        let ff_cell = nl.find_cell("u_ff").unwrap().0;
        let overlays: Vec<FaultOverlay> = (0..200)
            .map(|i| match i % 3 {
                0 => FaultOverlay {
                    lut_overrides: vec![(and_cell, i as u64 & 0xf)],
                    ..FaultOverlay::none()
                },
                1 => FaultOverlay {
                    ff_init_overrides: vec![(ff_cell, i % 2 == 0)],
                    ..FaultOverlay::none()
                },
                _ => FaultOverlay::none(),
            })
            .collect();
        let golden = GoldenRun::compute(&nl, 10, 3).unwrap();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let packed = compiled.pack_golden(&golden);
        let refs: Vec<&FaultOverlay> = overlays.iter().collect();
        let mut stats = SimStats::default();
        let wide = compiled.run_lanes(&packed, &refs, true, &mut stats);
        assert_eq!(stats.words_wide, 1);
        assert_eq!(stats.words_narrow, 0);
        assert_eq!(stats.max_lanes_per_word, 200);
        assert_eq!(stats.lanes_simulated, 200);
        let narrow: Vec<Option<usize>> = refs
            .chunks(64)
            .flat_map(|chunk| compiled.run_word(&packed, chunk))
            .collect();
        assert_eq!(wide, narrow, "wide and narrow words must agree");
        for (lane, overlay) in overlays.iter().enumerate() {
            let expected = interpreter_outcome(&nl, &golden, overlay);
            assert_eq!(wide[lane], expected, "lane {lane}");
        }
    }

    /// The event-driven scheduler actually skips clean levels (the counters
    /// prove it) while staying bit-identical to full-level evaluation.
    #[test]
    fn event_driven_mode_skips_levels_and_full_mode_does_not() {
        // A 4-deep buffer chain after the faulted LUT gives the scheduler
        // levels to skip once a masked fault's effect dies out.
        let mut nl = Netlist::new("deep");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_net("g");
        nl.add_cell("u_and", CellKind::Lut { k: 2, init: 0b1000 }, vec![a, b], g)
            .unwrap();
        let mut prev = g;
        for i in 0..4 {
            let next = nl.add_net(format!("n{i}"));
            nl.add_cell(format!("u_buf{i}"), CellKind::Buf, vec![prev], next)
                .unwrap();
            prev = next;
        }
        nl.add_output("y", prev);
        let ff_q = nl.add_net("q");
        nl.add_cell("u_ff", CellKind::Dff { init: false }, vec![prev], ff_q)
            .unwrap();
        nl.add_output("q", ff_q);

        let and_cell = nl.find_cell("u_and").unwrap().0;
        // A masked fault: the override reproduces the original truth table,
        // so the faulted level re-evaluates every cycle but never diverges —
        // the four buffer levels downstream stay clean and skippable.
        let overlays = [FaultOverlay {
            lut_overrides: vec![(and_cell, 0b1000)],
            ..FaultOverlay::none()
        }];
        let golden = GoldenRun::compute(&nl, 12, 9).unwrap();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let packed = compiled.pack_golden(&golden);
        let refs: Vec<&FaultOverlay> = overlays.iter().collect();
        let mut event = SimStats::default();
        let got = compiled.run_lanes(&packed, &refs, true, &mut event);
        let mut full = SimStats::default();
        let full_result = compiled.run_lanes(&packed, &refs, false, &mut full);
        assert_eq!(got, full_result);
        assert!(
            event.levels_skipped > 0,
            "a state-only fault must leave clean levels to skip: {event}"
        );
        assert_eq!(
            full.levels_skipped, 0,
            "full-level mode must never skip: {full}"
        );
        assert!(full.levels_evaluated >= event.levels_evaluated);
    }

    /// Overlays perturbing the same cells/nets share a cone fingerprint;
    /// unrelated overlays do not collide on this design.
    #[test]
    fn cone_keys_group_by_root_net_set() {
        let nl = sample();
        let and_cell = nl.find_cell("u_and").unwrap().0;
        let or_cell = nl.find_cell("u_or").unwrap().0;
        let ab_net = nl.find_cell("u_and").unwrap().1.output;
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let lut_a = FaultOverlay {
            lut_overrides: vec![(and_cell, 0b0111)],
            ..FaultOverlay::none()
        };
        let lut_b = FaultOverlay {
            lut_overrides: vec![(and_cell, 0b0001)],
            ..FaultOverlay::none()
        };
        let lut_other = FaultOverlay {
            lut_overrides: vec![(or_cell, 0b0001)],
            ..FaultOverlay::none()
        };
        let corrupt = FaultOverlay {
            corrupted_nets: vec![ab_net],
            ..FaultOverlay::none()
        };
        assert_eq!(
            compiled.cone_key(&lut_a),
            compiled.cone_key(&lut_b),
            "different truth tables on one cell share the cone"
        );
        assert_ne!(compiled.cone_key(&lut_a), compiled.cone_key(&lut_other));
        assert_ne!(
            compiled.cone_key(&lut_a),
            compiled.cone_key(&corrupt),
            "a cell seed and a net seed on the same net differ (readers-only cone)"
        );
        assert_eq!(compiled.cone_key(&FaultOverlay::none()), {
            let empty = FaultOverlay::none();
            compiled.cone_key(&empty)
        });
    }

    #[test]
    fn stimulus_replay_is_exact_on_random_designs() {
        // A depth-3 random-ish LUT network with feedback registers.
        let mut nl = Netlist::new("rnd");
        let mut nets = vec![
            nl.add_input("a_0"),
            nl.add_input("b_0"),
            nl.add_input("c_0"),
        ];
        for layer in 0..3 {
            let mut next = Vec::new();
            for gate in 0..3 {
                let out = nl.add_net(format!("n{layer}_{gate}"));
                let init = (layer as u64 * 7 + gate as u64 * 13 + 5) & 0xffff;
                nl.add_cell(
                    format!("u{layer}_{gate}"),
                    CellKind::Lut { k: 3, init },
                    vec![nets[0], nets[1], nets[2]],
                    out,
                )
                .unwrap();
                next.push(out);
            }
            nets = next;
        }
        let q = nl.add_net("q");
        nl.add_cell("u_ff", CellKind::Dff { init: true }, vec![nets[0]], q)
            .unwrap();
        nl.add_output("y_0", nets[1]);
        nl.add_output("q_0", q);

        let ff = nl.find_cell("u_ff").unwrap().0;
        let u00 = nl.find_cell("u0_0").unwrap().0;
        let overlays = vec![
            FaultOverlay {
                lut_overrides: vec![(u00, 0x9a)],
                ff_init_overrides: vec![(ff, false)],
                ..FaultOverlay::none()
            },
            FaultOverlay {
                opened_sinks: vec![SinkRef::CellPin { cell: u00, pin: 2 }],
                ..FaultOverlay::none()
            },
        ];
        check_word(&nl, 16, 23, overlays);
    }

    #[test]
    fn packed_stimulus_matches_golden_run_replay() {
        let nl = sample();
        let stimulus = Stimulus::random(&nl, 6, 2);
        let golden = GoldenRun::compute(&nl, 6, 2).unwrap();
        assert_eq!(stimulus.vectors(), golden.stimulus().vectors());
    }
}
