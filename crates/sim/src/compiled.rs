//! The compiled, levelized, bit-parallel fault simulator.
//!
//! The interpreting [`Simulator`](crate::Simulator) walks the netlist
//! cell-by-cell through id-indirected lookups and allocates per-cell input
//! vectors on every evaluation — fine as a semantics oracle, hopeless as the
//! inner loop of a fault-injection campaign. [`CompiledNetlist`] compiles a
//! netlist **once** into a flat, cache-friendly instruction stream
//! (topologically levelized combinational ops, flip-flop records, port
//! tables) and then evaluates **64 fault experiments at a time** over
//! two-plane packed trits ([`TritWord`]): every gate becomes a handful of
//! bitwise operations shared by all 64 lanes, with the exact
//! completion-enumeration `X` semantics of the interpreter preserved
//! (`maj(X, v, v) = v`).
//!
//! Fault simulation is *incremental* on top of that: each experiment word is
//! seeded from the cached fault-free run ([`PackedGolden`]), only the static
//! fan-out cone of the faulted cells/nets
//! ([`tmr_netlist::FanoutIndex`]) is re-evaluated, everything outside the
//! cone is read straight from the golden per-cycle frames, and a lane exits
//! early the cycle its outcome is decided — either because its voted outputs
//! diverged (first error cycle found) or because its state re-converged with
//! golden (a pure state fault can never diverge again).
//!
//! Faults that bridge two nets (`shorted_nets`) couple values *backwards*
//! against the topological order; for words containing such lanes the engine
//! falls back to a full-netlist evaluation that mirrors the interpreter's
//! multi-pass settling loop — including its per-run `changed` bookkeeping
//! and the oscillation poisoning after the fourth pass — so results stay
//! bit-identical there too. The interpreter remains available as a
//! differential oracle (`TMR_SIM=interp` in the campaign layer).

use crate::compare::majority;
use crate::packed::{majority_word, TritWord};
use crate::{FaultOverlay, GoldenRun, OutputGroups, SimError, SinkRef, Trit};
use std::collections::HashMap;
use tmr_netlist::{CellKind, FanoutIndex, Netlist};

/// Sentinel for "this cell has no op / flip-flop slot".
const NONE: u32 = u32::MAX;

/// One combinational instruction of the compiled stream.
#[derive(Debug, Clone)]
struct Op {
    /// Output net.
    out: u32,
    /// First operand slot in [`CompiledNetlist::operands`].
    operand_start: u32,
    /// Number of inputs (0..=6).
    k: u8,
    /// Pure pass-through (`Buf` / `Ibuf` / `Obuf`).
    copy: bool,
    /// The cell is a LUT, so campaign truth-table overrides apply to it.
    lut: bool,
    /// Truth table over the `k` inputs (one bit per input assignment).
    init: u64,
}

/// One flip-flop record of the compiled stream.
#[derive(Debug, Clone)]
struct CompiledFf {
    /// The `D` input net.
    d_net: u32,
    /// The `Q` output net.
    q_net: u32,
    /// Power-up value.
    init: bool,
}

/// A netlist compiled for levelized, 64-lane bit-parallel evaluation.
///
/// Built once per netlist with [`CompiledNetlist::compile`]; immutable and
/// self-contained afterwards (it borrows nothing from the netlist), so it
/// can be cached as a pipeline artifact and shared across campaign worker
/// threads behind an `Arc`.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    net_count: usize,
    /// Combinational instructions in topological (fanin-first) order — the
    /// same levelization order the interpreter uses, which full-evaluation
    /// mode relies on to reproduce its pass-by-pass settling exactly.
    ops: Vec<Op>,
    /// Flat operand net table (`Op::operand_start` indexes into it).
    operands: Vec<u32>,
    /// Cell index → op index (or [`NONE`]).
    op_of_cell: Vec<u32>,
    ffs: Vec<CompiledFf>,
    /// Cell index → flip-flop slot (or [`NONE`]).
    ff_of_cell: Vec<u32>,
    /// Input-port nets, in stimulus order.
    input_nets: Vec<u32>,
    /// Output-port nets, in trace order.
    outputs: Vec<u32>,
    /// Port index → output position (or [`NONE`]).
    output_of_port: Vec<u32>,
    /// Pad-voting groups: member positions into `outputs`.
    groups: Vec<Vec<usize>>,
    /// The static fan-out cone index used for incremental re-simulation.
    index: FanoutIndex,
}

/// The packed golden reference of a compiled campaign: the per-cycle settled
/// value of **every net** of the fault-free run (the incremental mode reads
/// out-of-cone nets from here) plus the pad-voted golden outputs the faulty
/// lanes are compared against.
///
/// Built by [`CompiledNetlist::pack_golden`], which re-runs the fault-free
/// design on the compiled engine and asserts the resulting trace is
/// bit-identical to the interpreter-produced [`GoldenRun`] — a permanent
/// differential canary on the compiled evaluation itself.
#[derive(Debug, Clone)]
pub struct PackedGolden {
    /// `frames[cycle][net]`: settled value of every net at the end of the
    /// cycle (flip-flop `Q` nets hold the state *driven* that cycle).
    frames: Vec<Vec<Trit>>,
    /// `voted[cycle][group]`: the pad-voted golden outputs.
    voted: Vec<Vec<Trit>>,
}

impl PackedGolden {
    /// Number of stimulus cycles.
    pub fn cycles(&self) -> usize {
        self.frames.len()
    }
}

impl CompiledNetlist {
    /// Compiles `netlist` into the flat instruction stream: one topological
    /// levelization, one fan-out index, no further per-run graph work.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] if the netlist cannot be
    /// levelized.
    pub fn compile(netlist: &Netlist) -> Result<Self, SimError> {
        let levelization = netlist
            .levelize()
            .map_err(|l| SimError::CombinationalLoop {
                cells: l.cells.len(),
            })?;
        let mut ops = Vec::with_capacity(levelization.order.len());
        let mut operands = Vec::new();
        let mut op_of_cell = vec![NONE; netlist.cell_count()];
        for &cell_id in &levelization.order {
            let cell = netlist.cell(cell_id);
            let copy = matches!(cell.kind, CellKind::Buf | CellKind::Ibuf | CellKind::Obuf);
            let init = if copy {
                0
            } else {
                cell.kind
                    .truth_table()
                    .expect("levelized cells are combinational")
            };
            op_of_cell[cell_id.index()] = ops.len() as u32;
            let operand_start = operands.len() as u32;
            operands.extend(cell.inputs.iter().map(|net| net.index() as u32));
            ops.push(Op {
                out: cell.output.index() as u32,
                operand_start,
                k: cell.kind.input_count() as u8,
                copy,
                lut: cell.kind.is_lut(),
                init,
            });
        }

        let mut ffs = Vec::new();
        let mut ff_of_cell = vec![NONE; netlist.cell_count()];
        for cell_id in netlist.sequential_cells() {
            let cell = netlist.cell(cell_id);
            let init = match cell.kind {
                CellKind::Dff { init } => init,
                _ => unreachable!("sequential cells are flip-flops"),
            };
            ff_of_cell[cell_id.index()] = ffs.len() as u32;
            ffs.push(CompiledFf {
                d_net: cell.inputs[0].index() as u32,
                q_net: cell.output.index() as u32,
                init,
            });
        }

        let input_nets = netlist
            .input_ports()
            .map(|(_, p)| p.net.index() as u32)
            .collect();
        let mut outputs = Vec::new();
        let mut output_of_port = vec![NONE; netlist.ports().count()];
        for (port_id, port) in netlist.output_ports() {
            output_of_port[port_id.index()] = outputs.len() as u32;
            outputs.push(port.net.index() as u32);
        }
        let groups = OutputGroups::new(netlist)
            .groups()
            .map(|(_, _, members)| members.to_vec())
            .collect();

        Ok(Self {
            net_count: netlist.net_count(),
            ops,
            operands,
            op_of_cell,
            ffs,
            ff_of_cell,
            input_nets,
            outputs,
            output_of_port,
            groups,
            index: FanoutIndex::new(netlist),
        })
    }

    /// Number of nets of the compiled netlist.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of combinational instructions in the stream.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of flip-flops.
    pub fn ff_count(&self) -> usize {
        self.ffs.len()
    }

    /// The operand nets of `op`.
    fn op_inputs(&self, op: &Op) -> &[u32] {
        let start = op.operand_start as usize;
        &self.operands[start..start + op.k as usize]
    }

    /// Runs the fault-free design on the compiled engine and packages the
    /// per-cycle net frames and voted outputs for incremental fault
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if the compiled trace diverges from the interpreter-produced
    /// trace inside `golden` — that would be a compiler bug, and this check
    /// keeps every campaign differentially guarded against it.
    pub fn pack_golden(&self, golden: &GoldenRun) -> PackedGolden {
        let vectors = golden.stimulus().vectors();
        let mut values = vec![TritWord::X; self.net_count];
        let mut state: Vec<TritWord> = self
            .ffs
            .iter()
            .map(|ff| TritWord::broadcast(Trit::from_bool(ff.init)))
            .collect();
        let mut frames = Vec::with_capacity(vectors.len());
        let mut voted = Vec::with_capacity(vectors.len());
        let mut inputs = [TritWord::ZERO; 6];
        for (cycle, vector) in vectors.iter().enumerate() {
            assert_eq!(
                vector.len(),
                self.input_nets.len(),
                "stimulus vector length must match the number of input ports"
            );
            for (&net, &value) in self.input_nets.iter().zip(vector.iter()) {
                values[net as usize] = TritWord::broadcast(value);
            }
            for (ff, st) in self.ffs.iter().zip(state.iter()) {
                values[ff.q_net as usize] = *st;
            }
            for op in &self.ops {
                for (pin, &net) in self.op_inputs(op).iter().enumerate() {
                    inputs[pin] = values[net as usize];
                }
                values[op.out as usize] = eval_op(op, &inputs, None);
            }
            let frame: Vec<Trit> = values.iter().map(|w| w.lane(0)).collect();
            let trace_row: Vec<Trit> = self
                .outputs
                .iter()
                .map(|&net| frame[net as usize])
                .collect();
            assert_eq!(
                trace_row,
                golden.trace().outputs[cycle],
                "compiled golden run diverged from the interpreter at cycle {cycle}"
            );
            voted.push(
                self.groups
                    .iter()
                    .map(|members| {
                        let member_values: Vec<Trit> =
                            members.iter().map(|&m| trace_row[m]).collect();
                        majority(&member_values)
                    })
                    .collect(),
            );
            for (ff, st) in self.ffs.iter().zip(state.iter_mut()) {
                *st = values[ff.d_net as usize];
            }
            frames.push(frame);
        }
        PackedGolden { frames, voted }
    }

    /// Simulates up to 64 fault experiments in one packed word and returns,
    /// per lane, the first cycle at which the pad-voted outputs diverged
    /// from golden (`None` = the fault never produced a wrong answer).
    ///
    /// The result is bit-identical to running the interpreting simulator on
    /// each overlay individually and comparing with
    /// [`OutputGroups::first_voted_mismatch`]. Words without bridged nets
    /// run in the incremental fan-out-cone mode; words containing
    /// `shorted_nets` fall back to the full-netlist multi-pass evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `overlays` is empty or holds more than 64 lanes, or if
    /// `golden` was packed for a different netlist.
    pub fn run_word(
        &self,
        golden: &PackedGolden,
        overlays: &[&FaultOverlay],
    ) -> Vec<Option<usize>> {
        assert!(
            !overlays.is_empty() && overlays.len() <= 64,
            "a packed word holds 1..=64 experiment lanes"
        );
        if let Some(frame) = golden.frames.first() {
            assert_eq!(
                frame.len(),
                self.net_count,
                "golden frames netlist mismatch"
            );
        }
        let word = WordOverlays::build(self, overlays);
        if word.has_shorts {
            self.run_word_full(golden, &word, overlays.len())
        } else {
            self.run_word_cone(golden, &word, overlays.len())
        }
    }

    /// Incremental mode: evaluate only the union fan-out cone of the word's
    /// fault sites, reading everything else from the golden frames.
    ///
    /// The per-word scratch (`values`, `in_cone_net`) is sized by the whole
    /// netlist, so setup is O(nets) even for a tiny cone — a deliberate
    /// trade: the per-*cycle* work (the dominant term, `cycles × passes`
    /// deep) is O(cone), and at the workspace's netlist sizes the flat
    /// zero-fill is cheaper than maintaining epoch-stamped sparse scratch.
    fn run_word_cone(
        &self,
        golden: &PackedGolden,
        word: &WordOverlays,
        lanes: usize,
    ) -> Vec<Option<usize>> {
        let all = lane_mask(lanes);
        let cone = self.index.cone(
            word.seed_cells.iter().copied(),
            word.seed_nets.iter().copied(),
        );
        let mut cone_ops: Vec<u32> = cone
            .cells
            .iter()
            .filter_map(|cell| match self.op_of_cell[cell.index()] {
                NONE => None,
                op => Some(op),
            })
            .collect();
        cone_ops.sort_unstable();
        let mut cone_ffs: Vec<u32> = cone
            .cells
            .iter()
            .filter_map(|cell| match self.ff_of_cell[cell.index()] {
                NONE => None,
                ff => Some(ff),
            })
            .collect();
        cone_ffs.sort_unstable();
        let mut affected_outputs: Vec<u32> = cone
            .ports
            .iter()
            .map(|port| self.output_of_port[port.index()])
            .chain(word.seed_ports.iter().copied())
            .collect();
        affected_outputs.sort_unstable();
        affected_outputs.dedup();
        let affected_groups: Vec<usize> = self
            .groups
            .iter()
            .enumerate()
            .filter(|(_, members)| {
                members
                    .iter()
                    .any(|&m| affected_outputs.binary_search(&(m as u32)).is_ok())
            })
            .map(|(g, _)| g)
            .collect();

        let mut in_cone_net = vec![false; self.net_count];
        for &op in &cone_ops {
            in_cone_net[self.ops[op as usize].out as usize] = true;
        }
        for &ff in &cone_ffs {
            in_cone_net[self.ffs[ff as usize].q_net as usize] = true;
        }

        let mut values = vec![TritWord::X; self.net_count];
        let mut state: Vec<TritWord> = cone_ffs
            .iter()
            .map(|&ff| word.initial_state(self, ff))
            .collect();
        let mut found = vec![None; lanes];
        let mut active = all;
        let mut inputs = [TritWord::ZERO; 6];
        let mut member_buf: Vec<TritWord> = Vec::new();

        for cycle in 0..golden.cycles() {
            let frame = &golden.frames[cycle];
            // Pure state faults whose flip-flop state re-converged with
            // golden can never diverge again: retire those lanes now.
            if word.state_only & active != 0 {
                let mut state_diff = 0u64;
                for (st, &ff) in state.iter().zip(cone_ffs.iter()) {
                    let q = self.ffs[ff as usize].q_net as usize;
                    state_diff |= st.diff(TritWord::broadcast(frame[q]));
                }
                active &= !(word.state_only & !state_diff);
                if active == 0 {
                    break;
                }
            }
            for (st, &ff) in state.iter().zip(cone_ffs.iter()) {
                values[self.ffs[ff as usize].q_net as usize] = *st;
            }
            let mut lut_cursor = 0;
            let mut open_cursor = 0;
            for &op_idx in &cone_ops {
                let op = &self.ops[op_idx as usize];
                for (pin, &net) in self.op_inputs(op).iter().enumerate() {
                    let net = net as usize;
                    let mut w = if in_cone_net[net] {
                        values[net]
                    } else {
                        TritWord::broadcast(frame[net])
                    };
                    w = word.apply_read_faults(w, net, op_idx, pin, &mut open_cursor);
                    inputs[pin] = w;
                }
                let masks = word.lut_masks(op_idx, &mut lut_cursor);
                values[op.out as usize] = eval_op(op, &inputs, masks);
            }
            let mut mismatch = 0u64;
            for &g in &affected_groups {
                member_buf.clear();
                for &m in &self.groups[g] {
                    let net = self.outputs[m] as usize;
                    let mut w = if in_cone_net[net] {
                        values[net]
                    } else {
                        TritWord::broadcast(frame[net])
                    };
                    w = w.poison(word.corrupt[net] | word.port_open[m]);
                    member_buf.push(w);
                }
                let dut = majority_word(&member_buf);
                mismatch |= dut.diff(TritWord::broadcast(golden.voted[cycle][g]));
            }
            let hits = mismatch & active;
            if hits != 0 {
                record_hits(&mut found, hits, cycle);
                active &= !hits;
                if active == 0 {
                    break;
                }
            }
            for (st, &ff) in state.iter_mut().zip(cone_ffs.iter()) {
                let record = &self.ffs[ff as usize];
                let net = record.d_net as usize;
                let mut w = if in_cone_net[net] {
                    values[net]
                } else {
                    TritWord::broadcast(frame[net])
                };
                w = w.poison(word.corrupt[net] | word.ff_open[ff as usize]);
                *st = w;
            }
        }
        found
    }

    /// Full-netlist mode for words with bridged nets: a faithful packed
    /// replica of the interpreter's multi-pass settling loop, including the
    /// per-lane `changed` bookkeeping and the oscillation poisoning on the
    /// final pass.
    fn run_word_full(
        &self,
        golden: &PackedGolden,
        word: &WordOverlays,
        lanes: usize,
    ) -> Vec<Option<usize>> {
        let all = lane_mask(lanes);
        let mut values = vec![TritWord::X; self.net_count];
        let mut state: Vec<TritWord> = (0..self.ffs.len() as u32)
            .map(|ff| word.initial_state(self, ff))
            .collect();
        let mut found = vec![None; lanes];
        let mut active = all;
        let mut inputs = [TritWord::ZERO; 6];
        let mut member_buf: Vec<TritWord> = Vec::new();
        let max_passes = if word.has_shorts { 4 } else { 1 };

        for cycle in 0..golden.cycles() {
            let frame = &golden.frames[cycle];
            for &net in &self.input_nets {
                values[net as usize] = TritWord::broadcast(frame[net as usize]);
            }
            for (ff, st) in self.ffs.iter().zip(state.iter()) {
                values[ff.q_net as usize] = *st;
            }
            for pass in 0..max_passes {
                let mut changed = 0u64;
                let mut lut_cursor = 0;
                let mut open_cursor = 0;
                for (op_idx, op) in self.ops.iter().enumerate() {
                    let op_idx = op_idx as u32;
                    for (pin, &net) in self.op_inputs(op).iter().enumerate() {
                        let net = net as usize;
                        let mut w = values[net];
                        w = word.apply_read_faults(w, net, op_idx, pin, &mut open_cursor);
                        w = word.apply_shorts(w, net, &values);
                        inputs[pin] = w;
                    }
                    let masks = word.lut_masks(op_idx, &mut lut_cursor);
                    let out = eval_op(op, &inputs, masks);
                    let slot = &mut values[op.out as usize];
                    let delta = out.diff(*slot);
                    if delta != 0 {
                        *slot = out;
                        changed |= delta;
                    }
                }
                if changed == 0 {
                    break;
                }
                if pass + 1 == max_passes {
                    // Oscillation through a short: poison the shorted nets
                    // of the lanes that were still changing.
                    for &(a, b, mask) in &word.short_pairs {
                        let poison = mask & changed;
                        if poison != 0 {
                            values[a as usize] = values[a as usize].poison(poison);
                            values[b as usize] = values[b as usize].poison(poison);
                        }
                    }
                }
            }
            let mut mismatch = 0u64;
            for (g, members) in self.groups.iter().enumerate() {
                member_buf.clear();
                for &m in members {
                    let net = self.outputs[m] as usize;
                    let mut w = values[net].poison(word.corrupt[net]);
                    w = word.apply_shorts(w, net, &values);
                    w = w.poison(word.port_open[m]);
                    member_buf.push(w);
                }
                let dut = majority_word(&member_buf);
                mismatch |= dut.diff(TritWord::broadcast(golden.voted[cycle][g]));
            }
            let hits = mismatch & active;
            if hits != 0 {
                record_hits(&mut found, hits, cycle);
                active &= !hits;
                if active == 0 {
                    break;
                }
            }
            for (ff_idx, (ff, st)) in self.ffs.iter().zip(state.iter_mut()).enumerate() {
                let net = ff.d_net as usize;
                let mut w = values[net].poison(word.corrupt[net]);
                w = word.apply_shorts(w, net, &values);
                w = w.poison(word.ff_open[ff_idx]);
                *st = w;
            }
        }
        found
    }
}

/// The lane mask covering `lanes` experiments.
fn lane_mask(lanes: usize) -> u64 {
    if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Records `cycle` as the first error cycle of every lane in `hits`.
fn record_hits(found: &mut [Option<usize>], hits: u64, cycle: usize) {
    let mut remaining = hits;
    while remaining != 0 {
        let lane = remaining.trailing_zeros() as usize;
        found[lane] = Some(cycle);
        remaining &= remaining - 1;
    }
}

/// Evaluates one compiled op over packed inputs with exact `X` semantics.
///
/// `masks`, when present, holds one lane mask per truth-table assignment
/// (lanes whose — possibly overridden — truth table has that bit set);
/// otherwise the op's shared `init` is used for every lane.
#[inline]
fn eval_op(op: &Op, inputs: &[TritWord; 6], masks: Option<&[u64]>) -> TritWord {
    if op.copy {
        return inputs[0];
    }
    let k = op.k as usize;
    let mut can_one = 0u64;
    let mut can_zero = 0u64;
    for assignment in 0..(1usize << k) {
        let mut matching = u64::MAX;
        for (i, input) in inputs.iter().enumerate().take(k) {
            matching &= if (assignment >> i) & 1 == 1 {
                input.can_be_one()
            } else {
                input.can_be_zero()
            };
            if matching == 0 {
                break;
            }
        }
        if matching == 0 {
            continue;
        }
        match masks {
            Some(masks) => {
                can_one |= matching & masks[assignment];
                can_zero |= matching & !masks[assignment];
            }
            None => {
                if (op.init >> assignment) & 1 == 1 {
                    can_one |= matching;
                } else {
                    can_zero |= matching;
                }
            }
        }
    }
    TritWord::from_possibilities(can_one, can_zero)
}

/// The per-word compilation of up to 64 fault overlays into lane masks.
struct WordOverlays {
    /// Truth-table overrides: `(op index, per-assignment lane masks)`,
    /// sorted by op index (consumed with a cursor during the ascending op
    /// walk).
    lut: Vec<(u32, Vec<u64>)>,
    /// Opened cell-input pins: `((op << 3) | pin, lane mask)`, sorted.
    pin_opens: Vec<(u64, u64)>,
    /// Opened flip-flop `D` pins, dense per flip-flop slot.
    ff_open: Vec<u64>,
    /// Opened output ports, dense per output position.
    port_open: Vec<u64>,
    /// Corrupted (antenna) nets, dense per net.
    corrupt: Vec<u64>,
    /// Bridged partners per net.
    shorts: HashMap<u32, Vec<(u32, u64)>>,
    /// Every bridged pair with its lane mask (for oscillation poisoning).
    short_pairs: Vec<(u32, u32, u64)>,
    /// Any lane bridges nets (selects the full-evaluation mode).
    has_shorts: bool,
    /// Flip-flop initialisation overrides, dense per flip-flop slot:
    /// lanes overridden, and their override value.
    ff_init_set: Vec<u64>,
    ff_init_val: Vec<u64>,
    /// Lanes whose overlay perturbs *only* flip-flop initial state.
    state_only: u64,
    /// Fan-out cone seeds of the word (union over lanes).
    seed_cells: Vec<tmr_netlist::CellId>,
    seed_nets: Vec<tmr_netlist::NetId>,
    seed_ports: Vec<u32>,
}

impl WordOverlays {
    fn build(compiled: &CompiledNetlist, overlays: &[&FaultOverlay]) -> Self {
        let mut lut_raw: HashMap<u32, Vec<(usize, u64)>> = HashMap::new();
        let mut pin_opens: HashMap<u64, u64> = HashMap::new();
        let mut word = Self {
            lut: Vec::new(),
            pin_opens: Vec::new(),
            ff_open: vec![0; compiled.ffs.len()],
            port_open: vec![0; compiled.outputs.len()],
            corrupt: vec![0; compiled.net_count],
            shorts: HashMap::new(),
            short_pairs: Vec::new(),
            has_shorts: false,
            ff_init_set: vec![0; compiled.ffs.len()],
            ff_init_val: vec![0; compiled.ffs.len()],
            state_only: 0,
            seed_cells: Vec::new(),
            seed_nets: Vec::new(),
            seed_ports: Vec::new(),
        };
        for (lane, overlay) in overlays.iter().enumerate() {
            let bit = 1u64 << lane;
            let combinational = !overlay.lut_overrides.is_empty()
                || !overlay.opened_sinks.is_empty()
                || !overlay.shorted_nets.is_empty()
                || !overlay.corrupted_nets.is_empty();
            if !combinational {
                word.state_only |= bit;
            }
            for &(cell, init) in &overlay.lut_overrides {
                let op = compiled.op_of_cell[cell.index()];
                if op == NONE || !compiled.ops[op as usize].lut {
                    continue; // the interpreter ignores overrides on non-LUTs
                }
                lut_raw.entry(op).or_default().push((lane, init));
                word.seed_cells.push(cell);
            }
            for &(cell, value) in &overlay.ff_init_overrides {
                let ff = compiled.ff_of_cell[cell.index()];
                if ff == NONE {
                    continue;
                }
                word.ff_init_set[ff as usize] |= bit;
                if value {
                    word.ff_init_val[ff as usize] |= bit;
                }
                word.seed_cells.push(cell);
            }
            for sink in &overlay.opened_sinks {
                match *sink {
                    SinkRef::CellPin { cell, pin } => {
                        let op = compiled.op_of_cell[cell.index()];
                        if op != NONE {
                            *pin_opens
                                .entry((u64::from(op) << 3) | pin as u64)
                                .or_default() |= bit;
                        } else {
                            let ff = compiled.ff_of_cell[cell.index()];
                            if ff != NONE {
                                word.ff_open[ff as usize] |= bit;
                            }
                        }
                        word.seed_cells.push(cell);
                    }
                    SinkRef::OutputPort(port) => {
                        let position = compiled.output_of_port[port.index()];
                        if position != NONE {
                            word.port_open[position as usize] |= bit;
                            word.seed_ports.push(position);
                        }
                    }
                }
            }
            for &net in &overlay.corrupted_nets {
                word.corrupt[net.index()] |= bit;
                word.seed_nets.push(net);
            }
            for &(a, b) in &overlay.shorted_nets {
                word.has_shorts = true;
                word.shorts
                    .entry(a.index() as u32)
                    .or_default()
                    .push((b.index() as u32, bit));
                word.shorts
                    .entry(b.index() as u32)
                    .or_default()
                    .push((a.index() as u32, bit));
                word.short_pairs
                    .push((a.index() as u32, b.index() as u32, bit));
            }
        }
        word.lut = lut_raw
            .into_iter()
            .map(|(op, lanes)| {
                let record = &compiled.ops[op as usize];
                let assignments = 1usize << record.k;
                let overridden = lanes
                    .iter()
                    .fold(0u64, |mask, &(lane, _)| mask | (1u64 << lane));
                let mut masks = vec![0u64; assignments];
                for (assignment, mask) in masks.iter_mut().enumerate() {
                    if (record.init >> assignment) & 1 == 1 {
                        *mask = !overridden;
                    }
                    for &(lane, init) in &lanes {
                        if (init >> assignment) & 1 == 1 {
                            *mask |= 1u64 << lane;
                        }
                    }
                }
                (op, masks)
            })
            .collect();
        word.lut.sort_unstable_by_key(|&(op, _)| op);
        word.pin_opens = pin_opens.into_iter().collect();
        word.pin_opens.sort_unstable_by_key(|&(key, _)| key);
        word
    }

    /// The initial packed state of flip-flop slot `ff`, overrides applied.
    fn initial_state(&self, compiled: &CompiledNetlist, ff: u32) -> TritWord {
        let record = &compiled.ffs[ff as usize];
        let mut state = TritWord::broadcast(Trit::from_bool(record.init));
        let set = self.ff_init_set[ff as usize];
        state.val = (state.val & !set) | (self.ff_init_val[ff as usize] & set);
        state
    }

    /// Applies corruption and pin opens to a value read by `(op, pin)`.
    /// `open_cursor` must advance monotonically with the `(op, pin)` walk.
    #[inline]
    fn apply_read_faults(
        &self,
        mut value: TritWord,
        net: usize,
        op: u32,
        pin: usize,
        open_cursor: &mut usize,
    ) -> TritWord {
        let corrupt = self.corrupt[net];
        if corrupt != 0 {
            value = value.poison(corrupt);
        }
        let key = (u64::from(op) << 3) | pin as u64;
        while *open_cursor < self.pin_opens.len() && self.pin_opens[*open_cursor].0 < key {
            *open_cursor += 1;
        }
        if *open_cursor < self.pin_opens.len() && self.pin_opens[*open_cursor].0 == key {
            value = value.poison(self.pin_opens[*open_cursor].1);
        }
        value
    }

    /// Applies bridged-net resolution against the raw stored partner values
    /// (mirrors the interpreter's sequential `Trit::resolve` fold).
    #[inline]
    fn apply_shorts(&self, mut value: TritWord, net: usize, values: &[TritWord]) -> TritWord {
        if !self.has_shorts {
            return value;
        }
        if let Some(partners) = self.shorts.get(&(net as u32)) {
            for &(partner, mask) in partners {
                value = value.resolve_masked(values[partner as usize], mask);
            }
        }
        value
    }

    /// Truth-table lane masks for `op`, if any lane overrides it.
    /// `cursor` must advance monotonically with the ascending op walk.
    #[inline]
    fn lut_masks(&self, op: u32, cursor: &mut usize) -> Option<&[u64]> {
        while *cursor < self.lut.len() && self.lut[*cursor].0 < op {
            *cursor += 1;
        }
        match self.lut.get(*cursor) {
            Some(&(candidate, ref masks)) if candidate == op => Some(masks),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, Stimulus};
    use tmr_netlist::{CellKind, Netlist};

    /// y = (a & b) | c, q = reg(y), with a second voted-style output.
    fn sample() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_cell(
            "u_and",
            CellKind::Lut { k: 2, init: 0b1000 },
            vec![a, b],
            ab,
        )
        .unwrap();
        nl.add_cell("u_or", CellKind::Lut { k: 2, init: 0b1110 }, vec![ab, c], y)
            .unwrap();
        nl.add_cell("u_ff", CellKind::Dff { init: false }, vec![y], q)
            .unwrap();
        nl.add_output("y", y);
        nl.add_output("q", q);
        nl
    }

    /// The oracle outcome of one overlay on one netlist.
    fn interpreter_outcome(
        netlist: &Netlist,
        golden: &GoldenRun,
        overlay: &FaultOverlay,
    ) -> Option<usize> {
        let simulator = Simulator::new(netlist).unwrap();
        let trace = simulator.run_stimulus(golden.stimulus(), overlay);
        golden.groups().first_voted_mismatch(golden.trace(), &trace)
    }

    /// Exhaustive per-overlay differential check of one word.
    fn check_word(netlist: &Netlist, cycles: usize, seed: u64, overlays: Vec<FaultOverlay>) {
        let golden = GoldenRun::compute(netlist, cycles, seed).unwrap();
        let compiled = CompiledNetlist::compile(netlist).unwrap();
        let packed = compiled.pack_golden(&golden);
        let refs: Vec<&FaultOverlay> = overlays.iter().collect();
        let got = compiled.run_word(&packed, &refs);
        for (lane, overlay) in overlays.iter().enumerate() {
            let expected = interpreter_outcome(netlist, &golden, overlay);
            assert_eq!(got[lane], expected, "lane {lane}: {overlay:?}");
        }
    }

    #[test]
    fn compiled_stream_shape() {
        let nl = sample();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        assert_eq!(compiled.op_count(), 2);
        assert_eq!(compiled.ff_count(), 1);
        assert_eq!(compiled.net_count(), nl.net_count());
    }

    #[test]
    fn combinational_loop_is_rejected() {
        let mut nl = Netlist::new("loop");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_cell("u1", CellKind::Not, vec![y], x).unwrap();
        nl.add_cell("u2", CellKind::Not, vec![x], y).unwrap();
        nl.add_output("y", y);
        assert!(matches!(
            CompiledNetlist::compile(&nl),
            Err(SimError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn golden_pack_matches_interpreter_trace() {
        let nl = sample();
        let golden = GoldenRun::compute(&nl, 12, 7).unwrap();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let packed = compiled.pack_golden(&golden);
        assert_eq!(packed.cycles(), 12);
    }

    #[test]
    fn lut_and_ff_and_open_overlays_match_interpreter() {
        let nl = sample();
        let and_cell = nl.find_cell("u_and").unwrap().0;
        let or_cell = nl.find_cell("u_or").unwrap().0;
        let ff_cell = nl.find_cell("u_ff").unwrap().0;
        let ab_net = nl.find_cell("u_and").unwrap().1.output;
        let overlays = vec![
            FaultOverlay {
                lut_overrides: vec![(and_cell, 0b0111)],
                ..FaultOverlay::none()
            },
            FaultOverlay {
                ff_init_overrides: vec![(ff_cell, true)],
                ..FaultOverlay::none()
            },
            FaultOverlay {
                opened_sinks: vec![SinkRef::CellPin {
                    cell: or_cell,
                    pin: 1,
                }],
                ..FaultOverlay::none()
            },
            FaultOverlay {
                corrupted_nets: vec![ab_net],
                ..FaultOverlay::none()
            },
            FaultOverlay::none(),
        ];
        check_word(&nl, 10, 3, overlays);
    }

    #[test]
    fn shorted_overlays_match_interpreter_in_full_mode() {
        let nl = sample();
        let a = nl
            .find_port("a", tmr_netlist::PortDir::Input)
            .unwrap()
            .1
            .net;
        let c = nl
            .find_port("c", tmr_netlist::PortDir::Input)
            .unwrap()
            .1
            .net;
        let y = nl.find_cell("u_or").unwrap().1.output;
        let overlays = vec![
            FaultOverlay {
                shorted_nets: vec![(a, c)],
                ..FaultOverlay::none()
            },
            // A feedback bridge (output shorted to an input) exercises the
            // multi-pass settling and poisoning path.
            FaultOverlay {
                shorted_nets: vec![(y, a)],
                ..FaultOverlay::none()
            },
            FaultOverlay::none(),
        ];
        check_word(&nl, 10, 3, overlays);
    }

    #[test]
    fn sixty_five_lane_words_are_rejected() {
        let nl = sample();
        let golden = GoldenRun::compute(&nl, 4, 1).unwrap();
        let compiled = CompiledNetlist::compile(&nl).unwrap();
        let packed = compiled.pack_golden(&golden);
        let overlay = FaultOverlay::none();
        let overlays: Vec<&FaultOverlay> = std::iter::repeat_n(&overlay, 65).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compiled.run_word(&packed, &overlays)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn full_word_of_64_lanes_runs() {
        let nl = sample();
        let and_cell = nl.find_cell("u_and").unwrap().0;
        let overlays: Vec<FaultOverlay> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    FaultOverlay {
                        lut_overrides: vec![(and_cell, i as u64 & 0xf)],
                        ..FaultOverlay::none()
                    }
                } else {
                    FaultOverlay::none()
                }
            })
            .collect();
        check_word(&nl, 8, 11, overlays);
    }

    #[test]
    fn stimulus_replay_is_exact_on_random_designs() {
        // A depth-3 random-ish LUT network with feedback registers.
        let mut nl = Netlist::new("rnd");
        let mut nets = vec![
            nl.add_input("a_0"),
            nl.add_input("b_0"),
            nl.add_input("c_0"),
        ];
        for layer in 0..3 {
            let mut next = Vec::new();
            for gate in 0..3 {
                let out = nl.add_net(format!("n{layer}_{gate}"));
                let init = (layer as u64 * 7 + gate as u64 * 13 + 5) & 0xffff;
                nl.add_cell(
                    format!("u{layer}_{gate}"),
                    CellKind::Lut { k: 3, init },
                    vec![nets[0], nets[1], nets[2]],
                    out,
                )
                .unwrap();
                next.push(out);
            }
            nets = next;
        }
        let q = nl.add_net("q");
        nl.add_cell("u_ff", CellKind::Dff { init: true }, vec![nets[0]], q)
            .unwrap();
        nl.add_output("y_0", nets[1]);
        nl.add_output("q_0", q);

        let ff = nl.find_cell("u_ff").unwrap().0;
        let u00 = nl.find_cell("u0_0").unwrap().0;
        let overlays = vec![
            FaultOverlay {
                lut_overrides: vec![(u00, 0x9a)],
                ff_init_overrides: vec![(ff, false)],
                ..FaultOverlay::none()
            },
            FaultOverlay {
                opened_sinks: vec![SinkRef::CellPin { cell: u00, pin: 2 }],
                ..FaultOverlay::none()
            },
        ];
        check_word(&nl, 16, 23, overlays);
    }

    #[test]
    fn packed_stimulus_matches_golden_run_replay() {
        let nl = sample();
        let stimulus = Stimulus::random(&nl, 6, 2);
        let golden = GoldenRun::compute(&nl, 6, 2).unwrap();
        assert_eq!(stimulus.vectors(), golden.stimulus().vectors());
    }
}
