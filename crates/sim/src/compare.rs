//! Output comparison with pad-level voting of triplicated outputs.
//!
//! TMR designs built with the paper's scheme leave the fabric on triplicated
//! output pins (`y_tr0`, `y_tr1`, `y_tr2`) that are voted "inside the output
//! logic block". [`OutputGroups`] reconstructs that vote: it groups the output
//! ports of a netlist by base signal name and bit, and reduces a raw
//! [`SimTrace`] to one majority-voted value per group and cycle. Unprotected
//! designs simply produce single-member groups.

use crate::stimulus::port_key;
use crate::{SimTrace, Trit};
use tmr_netlist::Netlist;

/// Majority vote over a small set of three-valued signals: a value wins if
/// strictly more than half of the members carry it; otherwise the result is
/// unknown. A single member is passed through unchanged.
pub fn majority(values: &[Trit]) -> Trit {
    if values.len() == 1 {
        return values[0];
    }
    let ones = values.iter().filter(|&&v| v == Trit::One).count();
    let zeros = values.iter().filter(|&&v| v == Trit::Zero).count();
    if ones * 2 > values.len() {
        Trit::One
    } else if zeros * 2 > values.len() {
        Trit::Zero
    } else {
        Trit::X
    }
}

/// The grouping of a netlist's output ports into pad-voted word-level bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputGroups {
    /// `(base name, bit, indices into the simulator's output order)`.
    groups: Vec<(String, u32, Vec<usize>)>,
}

impl OutputGroups {
    /// Builds the output grouping of a netlist. Port order follows
    /// [`Netlist::output_ports`], which is also the order used by
    /// [`crate::Simulator`] traces.
    pub fn new(netlist: &Netlist) -> Self {
        let mut groups: Vec<(String, u32, Vec<usize>)> = Vec::new();
        for (index, (_, port)) in netlist.output_ports().enumerate() {
            let (base, bit) = port_key(&port.name);
            match groups
                .iter_mut()
                .find(|(b, bt, _)| *b == base && *bt == bit)
            {
                Some((_, _, members)) => members.push(index),
                None => groups.push((base, bit, vec![index])),
            }
        }
        Self { groups }
    }

    /// Rebuilds a grouping from its raw `(base name, bit, member indices)`
    /// triples — the inverse of [`OutputGroups::groups`], used by the
    /// `tmr-store` codec.
    pub fn from_groups(groups: Vec<(String, u32, Vec<usize>)>) -> Self {
        Self { groups }
    }

    /// Number of voted output bits.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Returns `true` if the netlist has no outputs.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group descriptors: base name, bit index and member count.
    pub fn descriptors(&self) -> impl Iterator<Item = (&str, u32, usize)> {
        self.groups
            .iter()
            .map(|(base, bit, members)| (base.as_str(), *bit, members.len()))
    }

    /// The full groups: base name, bit index and the member indices into the
    /// netlist's output-port order. The static criticality analyzer uses this
    /// to check that every word-level output bit is a pad-voted triple before
    /// it trusts single-domain masking.
    pub fn groups(&self) -> impl Iterator<Item = (&str, u32, &[usize])> {
        self.groups
            .iter()
            .map(|(base, bit, members)| (base.as_str(), *bit, members.as_slice()))
    }

    /// Reduces a raw trace to one majority-voted value per group per cycle.
    pub fn vote(&self, trace: &SimTrace) -> Vec<Vec<Trit>> {
        trace
            .outputs
            .iter()
            .map(|cycle| {
                self.groups
                    .iter()
                    .map(|(_, _, members)| {
                        let values: Vec<Trit> = members.iter().map(|&i| cycle[i]).collect();
                        majority(&values)
                    })
                    .collect()
            })
            .collect()
    }

    /// Compares two traces after pad-level voting and returns the first cycle
    /// where the voted outputs differ.
    pub fn first_voted_mismatch(&self, golden: &SimTrace, dut: &SimTrace) -> Option<usize> {
        let golden_voted = self.vote(golden);
        let dut_voted = self.vote(dut);
        golden_voted
            .iter()
            .zip(dut_voted.iter())
            .position(|(a, b)| a != b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmr_netlist::{CellKind, Netlist};

    #[test]
    fn majority_of_three() {
        assert_eq!(majority(&[Trit::One, Trit::One, Trit::Zero]), Trit::One);
        assert_eq!(majority(&[Trit::Zero, Trit::X, Trit::Zero]), Trit::Zero);
        assert_eq!(majority(&[Trit::One, Trit::Zero, Trit::X]), Trit::X);
        assert_eq!(majority(&[Trit::X]), Trit::X);
        assert_eq!(majority(&[Trit::One]), Trit::One);
    }

    fn triplicated_netlist() -> Netlist {
        // Three buffers from three inputs to outputs y_tr0_0, y_tr1_0, y_tr2_0.
        let mut nl = Netlist::new("trip");
        for d in 0..3 {
            let a = nl.add_input(format!("x_tr{d}_0"));
            let y = nl.add_net(format!("y{d}"));
            nl.add_cell(format!("b{d}"), CellKind::Buf, vec![a], y)
                .unwrap();
            nl.add_output(format!("y_tr{d}_0"), y);
        }
        nl
    }

    #[test]
    fn groups_triplicated_outputs_into_one() {
        let nl = triplicated_netlist();
        let groups = OutputGroups::new(&nl);
        assert_eq!(groups.len(), 1);
        let (base, bit, members) = groups.descriptors().next().unwrap();
        assert_eq!(base, "y");
        assert_eq!(bit, 0);
        assert_eq!(members, 3);
    }

    #[test]
    fn voting_masks_a_single_bad_copy() {
        let nl = triplicated_netlist();
        let groups = OutputGroups::new(&nl);
        let golden = SimTrace {
            outputs: vec![vec![Trit::One, Trit::One, Trit::One]],
        };
        let faulty = SimTrace {
            outputs: vec![vec![Trit::One, Trit::X, Trit::One]],
        };
        assert_eq!(groups.vote(&faulty), vec![vec![Trit::One]]);
        assert_eq!(groups.first_voted_mismatch(&golden, &faulty), None);
        let broken = SimTrace {
            outputs: vec![vec![Trit::Zero, Trit::X, Trit::One]],
        };
        assert_eq!(groups.first_voted_mismatch(&golden, &broken), Some(0));
    }

    #[test]
    fn plain_outputs_form_single_member_groups() {
        let mut nl = Netlist::new("plain");
        let a = nl.add_input("a_0");
        let y = nl.add_net("y");
        nl.add_cell("b", CellKind::Buf, vec![a], y).unwrap();
        nl.add_output("y_0", y);
        let groups = OutputGroups::new(&nl);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups.descriptors().next().unwrap().2, 1);
    }
}
