//! # tmr-sim
//!
//! Three-valued (0 / 1 / X) functional simulation of technology-mapped
//! netlists, with support for the structural fault effects that a
//! configuration-memory upset produces in an SRAM-based FPGA:
//!
//! * LUT truth-table corruption,
//! * flip-flop initialisation changes,
//! * **opens** (a sink pin disconnected from its net floats to `X`),
//! * **bridges / conflicts** (two nets shorted together resolve to their
//!   common value, or `X` where they disagree), and
//! * **antennas** (a net corrupted by a floating aggressor).
//!
//! The same simulator runs the golden (fault-free) reference and the device
//! under test; `tmr-faultsim` compares the two output traces cycle by cycle,
//! exactly like the paper's output analyser, which compares the TMR design
//! under test against an unhardened golden copy on every clock cycle.
//!
//! ## Example
//!
//! ```
//! use tmr_netlist::{CellKind, Netlist};
//! use tmr_sim::{FaultOverlay, Simulator, Trit};
//!
//! // y = a AND b as a LUT2.
//! let mut nl = Netlist::new("and");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_net("y");
//! nl.add_cell("u", CellKind::Lut { k: 2, init: 0b1000 }, vec![a, b], y).unwrap();
//! nl.add_output("y", y);
//!
//! let sim = Simulator::new(&nl).unwrap();
//! let vectors = vec![vec![Trit::One, Trit::One], vec![Trit::One, Trit::Zero]];
//! let trace = sim.run(&vectors, &FaultOverlay::none());
//! assert_eq!(trace.outputs[0][0], Trit::One);
//! assert_eq!(trace.outputs[1][0], Trit::Zero);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compare;
mod compiled;
mod fault;
mod golden;
mod netsim;
mod packed;
mod stats;
mod stimulus;
mod value;

pub use compare::{majority, OutputGroups};
pub use compiled::{CompiledNetlist, PackedGolden, MAX_LANES};
pub use fault::{FaultOverlay, SinkRef};
pub use golden::GoldenRun;
pub use netsim::{SimError, SimTrace, Simulator};
pub use packed::{majority_word, LaneMask, TritVec, TritWord};
pub use stats::SimStats;
pub use stimulus::{random_vectors, word_vectors, Stimulus};
pub use value::Trit;
